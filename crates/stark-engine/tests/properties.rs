//! Property tests for the engine: algebraic laws of the dataset
//! operators under arbitrary data and partition counts.

use proptest::prelude::*;
use stark_engine::Context;

fn ctx() -> Context {
    Context::with_parallelism(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collect_preserves_order_and_content(
        data in proptest::collection::vec(any::<i32>(), 0..500),
        parts in 1usize..12,
    ) {
        let r = ctx().parallelize(data.clone(), parts);
        prop_assert_eq!(r.collect(), data);
    }

    #[test]
    fn map_then_collect_is_iterator_map(
        data in proptest::collection::vec(any::<i16>(), 0..300),
        parts in 1usize..8,
    ) {
        let r = ctx().parallelize(data.clone(), parts).map(|x| x as i64 * 3 - 1);
        let expect: Vec<i64> = data.iter().map(|&x| x as i64 * 3 - 1).collect();
        prop_assert_eq!(r.collect(), expect);
    }

    #[test]
    fn filter_count_matches(
        data in proptest::collection::vec(any::<u32>(), 0..300),
        parts in 1usize..8,
        modulus in 1u32..7,
    ) {
        let m = modulus;
        let r = ctx().parallelize(data.clone(), parts).filter(move |x| x % m == 0);
        prop_assert_eq!(r.count(), data.iter().filter(|&&x| x % m == 0).count());
    }

    #[test]
    fn partition_by_preserves_multiset(
        data in proptest::collection::vec(any::<i32>(), 0..300),
        src_parts in 1usize..6,
        dst_parts in 1usize..9,
    ) {
        let r = ctx()
            .parallelize(data.clone(), src_parts)
            .partition_by(dst_parts, |x| x.unsigned_abs() as usize);
        let mut got = r.collect();
        let mut expect = data;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(r.num_partitions(), dst_parts);
    }

    #[test]
    fn partition_by_routes_consistently(
        data in proptest::collection::vec(any::<i32>(), 1..200),
        dst in 1usize..7,
    ) {
        let r = ctx().parallelize(data, 3).partition_by(dst, |x| x.unsigned_abs() as usize);
        for (i, part) in r.glom().into_iter().enumerate() {
            for x in part {
                prop_assert_eq!(x.unsigned_abs() as usize % dst, i);
            }
        }
    }

    #[test]
    fn distinct_is_set_semantics(
        data in proptest::collection::vec(0i32..50, 0..300),
        parts in 1usize..6,
    ) {
        let r = ctx().parallelize(data.clone(), parts).distinct(4);
        let mut got = r.collect();
        got.sort_unstable();
        let mut expect: Vec<i32> = data;
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn union_is_concatenation(
        a in proptest::collection::vec(any::<i32>(), 0..150),
        b in proptest::collection::vec(any::<i32>(), 0..150),
    ) {
        let c = ctx();
        let u = c.parallelize(a.clone(), 2).union(&c.parallelize(b.clone(), 3));
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(u.collect(), expect);
    }

    #[test]
    fn reduce_matches_fold(
        data in proptest::collection::vec(-1000i64..1000, 0..300),
        parts in 1usize..8,
    ) {
        let r = ctx().parallelize(data.clone(), parts);
        let sum = r.reduce(|a, b| a + b).unwrap_or(0);
        prop_assert_eq!(sum, data.iter().sum::<i64>());
        let folded = r.fold(0i64, |a, b| a + b, |a, b| a + b);
        prop_assert_eq!(folded, sum);
    }

    #[test]
    fn zip_with_index_is_dense(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        parts in 1usize..9,
    ) {
        let r = ctx().parallelize(data.clone(), parts).zip_with_index();
        let collected = r.collect();
        prop_assert_eq!(collected.len(), data.len());
        for (expect_i, (i, v)) in collected.iter().enumerate() {
            prop_assert_eq!(*i, expect_i as u64);
            prop_assert_eq!(*v, data[expect_i]);
        }
    }

    #[test]
    fn sample_fraction_bounds(
        data in proptest::collection::vec(any::<u16>(), 100..400),
        seed in any::<u64>(),
    ) {
        let r = ctx().parallelize(data.clone(), 4);
        let s = r.sample(0.5, seed);
        let n = s.count();
        prop_assert!(n <= data.len());
        // loose lower bound: P(below 10%) is astronomically small
        prop_assert!(n >= data.len() / 10, "sample suspiciously small: {n}");
    }

    #[test]
    fn group_by_key_collects_all_values(
        pairs in proptest::collection::vec((0u8..10, any::<i32>()), 0..300),
    ) {
        let r = ctx().parallelize(pairs.clone(), 5).group_by_key(4);
        let mut got: Vec<(u8, Vec<i32>)> = r.collect();
        for (_, vs) in got.iter_mut() {
            vs.sort_unstable();
        }
        got.sort();
        let mut expect_map: std::collections::BTreeMap<u8, Vec<i32>> = Default::default();
        for (k, v) in pairs {
            expect_map.entry(k).or_default().push(v);
        }
        let mut expect: Vec<(u8, Vec<i32>)> = expect_map
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                (k, vs)
            })
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn take_is_prefix(
        data in proptest::collection::vec(any::<i32>(), 0..200),
        parts in 1usize..7,
        n in 0usize..250,
    ) {
        let r = ctx().parallelize(data.clone(), parts);
        let got = r.take(n);
        let expect: Vec<i32> = data.into_iter().take(n).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn caching_is_transparent(
        data in proptest::collection::vec(any::<i32>(), 0..200),
        parts in 1usize..7,
    ) {
        let r = ctx().parallelize(data, parts).map(|x| x as i64 + 1);
        let cached = r.cache();
        prop_assert_eq!(r.collect(), cached.collect());
        prop_assert_eq!(cached.count(), cached.count());
    }
}
