//! Multi-process execution tests: a [`WorkerPool`] forking real
//! `stark-engine-worker` processes over TCP, with transport chaos.
//!
//! Every chaos test pins the two supervision invariants: results are
//! byte-identical to a fault-free run, and `tasks_reassigned` equals the
//! number of injected faults (`fail_attempts = 1` means a reassigned
//! attempt is never struck again).

use stark_engine::plan::{
    decode_rows, encode_rows, int_arg, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput,
};
use stark_engine::supervisor::{bucket_keys_for_partition, DistTask};
use stark_engine::{
    FetchChaos, FetchPolicy, ShuffleMode, ShuffleSpec, TransportChaos, TransportPolicy, WorkerPool,
    WorkerPoolConfig,
};
use std::sync::Arc;
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_stark-engine-worker");

fn pool_config(workers: usize) -> WorkerPoolConfig {
    let mut cfg = WorkerPoolConfig::new(WORKER);
    cfg.workers = workers;
    cfg
}

/// `Collect` fragment: inline rows through `(x + k) keep-even`.
fn add_even_task(rows: &[i64], k: i64) -> DistTask {
    let fragment = PlanFragment {
        schema: "i64".into(),
        input: PlanInput::Inline,
        ops: vec![
            PlanOp::Map { op: "add".into(), arg: int_arg("k", k) },
            PlanOp::Filter { op: "even".into(), arg: serde_json::Value::Null },
        ],
        sink: PlanSink::Collect,
    };
    DistTask::with_rows(fragment, encode_rows(rows).unwrap())
}

fn collected_rows(result: &stark_engine::TaskResult) -> Vec<i64> {
    assert!(matches!(result.output, TaskOutput::Rows { .. }), "{:?}", result.output);
    decode_rows(result.payload.as_ref().expect("collect ships rows")).unwrap()
}

/// What `add_even_task` computes, single-process.
fn add_even_local(rows: &[i64], k: i64) -> Vec<i64> {
    rows.iter().map(|x| x + k).filter(|x| x % 2 == 0).collect()
}

#[test]
fn pool_executes_a_stage_of_collect_tasks() {
    let mut pool = WorkerPool::spawn(pool_config(4)).unwrap();
    let inputs: Vec<Vec<i64>> = (0..8).map(|t| (t * 10..t * 10 + 10).collect()).collect();
    let tasks: Vec<DistTask> = inputs.iter().map(|rows| add_even_task(rows, 3)).collect();
    let results = pool.execute(&tasks).unwrap();

    assert_eq!(results.len(), 8);
    for (input, result) in inputs.iter().zip(&results) {
        assert_eq!(collected_rows(result), add_even_local(input, 3));
    }
    let stats = pool.stats();
    assert_eq!(stats.workers_spawned, 4);
    assert_eq!(stats.tasks_completed, 8);
    assert_eq!(stats.tasks_reassigned, 0);
    // the heartbeat cadence (25ms) may be longer than the whole job
    std::thread::sleep(Duration::from_millis(80));
    assert!(pool.stats().heartbeats > 0, "workers should have heartbeated");
    pool.shutdown();
}

#[test]
fn two_stage_shuffle_matches_single_process_result() {
    let mut pool = WorkerPool::spawn(pool_config(3)).unwrap();
    let inputs: Vec<Vec<i64>> = (0..6).map(|t| (t * 100..t * 100 + 50).collect()).collect();
    let num_partitions = 4;

    // Map stage: bucket rows by x mod 4, spilling buckets to the store.
    let map_tasks: Vec<DistTask> = inputs
        .iter()
        .enumerate()
        .map(|(task, rows)| {
            let fragment = PlanFragment {
                schema: "i64".into(),
                input: PlanInput::Inline,
                ops: vec![PlanOp::Map { op: "add".into(), arg: int_arg("k", 1) }],
                sink: PlanSink::ShuffleWrite {
                    partitioner: "mod".into(),
                    arg: int_arg("parts", num_partitions as i64),
                    num_partitions,
                    prefix: "shuffle/s0".into(),
                    task,
                },
            };
            DistTask::with_rows(fragment, encode_rows(rows).unwrap())
        })
        .collect();
    let map_results = pool.execute(&map_tasks).unwrap();
    let counts: Vec<Vec<u64>> = map_results
        .iter()
        .map(|r| match &r.output {
            TaskOutput::BucketCounts(c) => c.clone(),
            other => panic!("expected bucket counts, got {other:?}"),
        })
        .collect();

    // Reduce stage: each partition reads its buckets and sorts.
    let reduce_tasks: Vec<DistTask> = (0..num_partitions)
        .map(|p| {
            DistTask::new(PlanFragment {
                schema: "i64".into(),
                input: PlanInput::Store {
                    keys: bucket_keys_for_partition("shuffle/s0", &counts, p),
                },
                ops: vec![PlanOp::MapPartitions {
                    op: "sort".into(),
                    arg: serde_json::Value::Null,
                }],
                sink: PlanSink::Collect,
            })
        })
        .collect();
    let reduce_results = pool.execute(&reduce_tasks).unwrap();

    // Single-process reference.
    let mut expected: Vec<Vec<i64>> = vec![Vec::new(); num_partitions];
    for rows in &inputs {
        for x in rows {
            let y = x + 1;
            expected[y.rem_euclid(num_partitions as i64) as usize].push(y);
        }
    }
    for part in &mut expected {
        part.sort_unstable();
    }
    for (p, result) in reduce_results.iter().enumerate() {
        assert_eq!(collected_rows(result), expected[p], "partition {p}");
    }
    pool.shutdown();
}

#[test]
fn checkpoint_sink_writes_recoverable_blobs_remotely() {
    let mut pool = WorkerPool::spawn(pool_config(2)).unwrap();
    let rows: Vec<i64> = (0..40).collect();
    let task = DistTask::with_rows(
        PlanFragment {
            schema: "i64".into(),
            input: PlanInput::Inline,
            ops: vec![PlanOp::Map { op: "mul".into(), arg: int_arg("k", 2) }],
            sink: PlanSink::Checkpoint { key: "ck/job7".into(), partition: 3 },
        },
        encode_rows(&rows).unwrap(),
    );
    let result = pool.execute(std::slice::from_ref(&task)).unwrap().remove(0);
    match result.output {
        TaskOutput::Checkpointed { ref key, rows: n, bytes } => {
            assert_eq!(key, "ck/job7/part-00003");
            assert_eq!(n, 40);
            assert!(bytes > 0);
        }
        other => panic!("expected checkpoint output, got {other:?}"),
    }
    // The blob a worker wrote is readable as a local checkpoint blob.
    let back: Vec<i64> = pool.store().get_json("ck/job7/part-00003").unwrap();
    assert_eq!(back, (0..40).map(|x| x * 2).collect::<Vec<i64>>());
    pool.shutdown();
}

/// Runs one job under an injected one-shot fault and asserts results are
/// byte-identical to the fault-free reference, with exactly one
/// reassignment.
fn assert_recovers_from(policy: TransportPolicy, task_timeout: Option<Duration>) {
    let inputs: Vec<Vec<i64>> = (0..10).map(|t| (t * 7..t * 7 + 30).collect()).collect();
    let tasks: Vec<DistTask> = inputs.iter().map(|rows| add_even_task(rows, 5)).collect();

    let chaos = Arc::new(TransportChaos::once(policy));
    let mut cfg = pool_config(4);
    cfg.chaos = Some(chaos.clone());
    if let Some(t) = task_timeout {
        cfg.task_timeout = t;
    }
    let mut pool = WorkerPool::spawn(cfg).unwrap();
    let results = pool.execute(&tasks).unwrap();

    for (input, result) in inputs.iter().zip(&results) {
        assert_eq!(collected_rows(result), add_even_local(input, 5));
    }
    let stats = pool.stats();
    assert_eq!(chaos.injected(), 1, "one-shot chaos must have struck");
    assert_eq!(
        stats.tasks_reassigned,
        chaos.injected(),
        "every injected transport fault costs exactly one reassignment"
    );
    assert_eq!(stats.workers_lost, 1);
    assert_eq!(stats.tasks_completed, tasks.len() as u64);
    pool.shutdown();
}

#[test]
fn worker_killed_mid_task_is_detected_and_reassigned() {
    assert_recovers_from(TransportPolicy::KillWorker, None);
}

#[test]
fn corrupt_task_frame_fail_stops_the_worker_and_recovers() {
    assert_recovers_from(TransportPolicy::CorruptFrame, None);
}

#[test]
fn dropped_task_frame_recovers_via_task_deadline() {
    assert_recovers_from(TransportPolicy::DropFrame, Some(Duration::from_millis(400)));
}

#[test]
fn truncated_task_frame_recovers_via_task_deadline() {
    assert_recovers_from(TransportPolicy::TruncateFrame, Some(Duration::from_millis(400)));
}

#[test]
fn delayed_task_frame_completes_without_loss() {
    let inputs: Vec<Vec<i64>> = (0..4).map(|t| vec![t, t + 1, t + 2]).collect();
    let tasks: Vec<DistTask> = inputs.iter().map(|rows| add_even_task(rows, 2)).collect();
    let chaos =
        Arc::new(TransportChaos::once(TransportPolicy::DelayFrame(Duration::from_millis(50))));
    let mut cfg = pool_config(2);
    cfg.chaos = Some(chaos.clone());
    let mut pool = WorkerPool::spawn(cfg).unwrap();
    let results = pool.execute(&tasks).unwrap();
    for (input, result) in inputs.iter().zip(&results) {
        assert_eq!(collected_rows(result), add_even_local(input, 2));
    }
    assert_eq!(chaos.injected(), 1);
    assert_eq!(pool.stats().tasks_reassigned, 0, "a delay is not a loss");
    pool.shutdown();
}

#[test]
fn respawned_seat_restores_capacity_for_the_next_job() {
    let inputs: Vec<Vec<i64>> = (0..8).map(|t| (t..t + 20).collect()).collect();
    let tasks: Vec<DistTask> = inputs.iter().map(|rows| add_even_task(rows, 1)).collect();

    let mut cfg = pool_config(3);
    cfg.chaos = Some(Arc::new(TransportChaos::once(TransportPolicy::KillWorker)));
    cfg.respawn_backoff = Duration::from_millis(10);
    let mut pool = WorkerPool::spawn(cfg).unwrap();

    // Job 1 loses a worker; healing restores the seat (the chaos policy
    // is exhausted after its single strike), and job 2 sees a full pool.
    let first = pool.execute(&tasks).unwrap();
    assert_eq!(pool.heal(Duration::from_secs(5)), 3, "heal must restore the dead seat");
    let second = pool.execute(&tasks).unwrap();
    for (input, result) in inputs.iter().zip(&second) {
        assert_eq!(collected_rows(result), add_even_local(input, 1));
    }
    assert_eq!(first.len(), second.len());

    let stats = pool.stats();
    assert_eq!(stats.workers_lost, 1);
    assert!(stats.workers_respawned >= 1, "the dead seat must come back");
    assert_eq!(pool.live_workers(), 3);
    pool.shutdown();
}

/// `(x + 1) mod 4` shuffle over six inline map tasks, reduce = sort.
fn shuffle_inputs() -> Vec<Vec<i64>> {
    (0..6).map(|t| (t * 100..t * 100 + 50).collect()).collect()
}

fn shuffle_map_tasks(inputs: &[Vec<i64>]) -> Vec<DistTask> {
    inputs
        .iter()
        .map(|rows| {
            DistTask::with_rows(
                PlanFragment {
                    schema: "i64".into(),
                    input: PlanInput::Inline,
                    ops: vec![PlanOp::Map { op: "add".into(), arg: int_arg("k", 1) }],
                    // replaced by run_shuffle
                    sink: PlanSink::Collect,
                },
                encode_rows(rows).unwrap(),
            )
        })
        .collect()
}

fn shuffle_spec(mode: ShuffleMode, prefix: &str) -> ShuffleSpec {
    ShuffleSpec {
        mode,
        partitioner: "mod".into(),
        partitioner_arg: int_arg("parts", 4),
        num_partitions: 4,
        prefix: prefix.into(),
        reduce_ops: vec![PlanOp::MapPartitions { op: "sort".into(), arg: serde_json::Value::Null }],
        reduce_sink: PlanSink::Collect,
    }
}

/// What the shuffle computes, single-process.
fn shuffle_expected(inputs: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let mut expected: Vec<Vec<i64>> = vec![Vec::new(); 4];
    for rows in inputs {
        for x in rows {
            let y = x + 1;
            expected[y.rem_euclid(4) as usize].push(y);
        }
    }
    for part in &mut expected {
        part.sort_unstable();
    }
    expected
}

#[test]
fn remote_shuffle_matches_shared_store_byte_for_byte() {
    let inputs = shuffle_inputs();
    let map_tasks = shuffle_map_tasks(&inputs);
    let expected = shuffle_expected(&inputs);

    let mut pool = WorkerPool::spawn(pool_config(3)).unwrap();
    let shared =
        pool.run_shuffle(&map_tasks, &shuffle_spec(ShuffleMode::SharedStore, "rs/shared")).unwrap();
    let remote =
        pool.run_shuffle(&map_tasks, &shuffle_spec(ShuffleMode::Remote, "rs/remote")).unwrap();

    for p in 0..4 {
        assert_eq!(collected_rows(&shared[p]), expected[p], "shared partition {p}");
        assert_eq!(
            shared[p].payload, remote[p].payload,
            "partition {p} must be byte-identical across shuffle modes"
        );
    }
    let stats = pool.stats();
    assert!(stats.shuffle_bytes_fetched_remote > 0, "remote mode must fetch peer-to-peer");
    assert_eq!(stats.fetch_retries, 0, "no chaos, no retries");
    assert_eq!(stats.fetch_failures, 0);
    assert_eq!(stats.map_outputs_lost, 0);
    assert_eq!(stats.map_outputs_regenerated, 0);
    assert_eq!(pool.shuffle_epoch("rs/remote"), Some(0), "clean run never bumps the epoch");
    pool.shutdown();
}

#[test]
fn torn_fetches_recover_with_one_retry_per_strike() {
    let inputs = shuffle_inputs();
    let map_tasks = shuffle_map_tasks(&inputs);
    let expected = shuffle_expected(&inputs);

    let mut cfg = pool_config(3);
    // strikes are counted per serving process, so scope the fault to the
    // one worker serving task-0 buckets to pin the total at 2
    cfg.fetch_chaos = Some(
        FetchChaos::once(FetchPolicy::DropBucket)
            .with_max_strikes(2)
            .with_key_filter("task-00000/"),
    );
    let mut pool = WorkerPool::spawn(cfg).unwrap();
    let results =
        pool.run_shuffle(&map_tasks, &shuffle_spec(ShuffleMode::Remote, "rs/torn")).unwrap();

    for p in 0..4 {
        assert_eq!(collected_rows(&results[p]), expected[p], "partition {p}");
    }
    let stats = pool.stats();
    assert_eq!(stats.fetch_retries, 2, "each torn transfer costs exactly one resume");
    assert_eq!(stats.fetch_failures, 0, "strikes stay under the retry budget");
    assert_eq!(stats.map_outputs_lost, 0);
    assert_eq!(stats.workers_lost, 0);
    pool.shutdown();
}

#[test]
fn killed_serving_worker_regenerates_its_outputs_via_lineage() {
    let inputs = shuffle_inputs();
    let map_tasks = shuffle_map_tasks(&inputs);
    let expected = shuffle_expected(&inputs);

    let mut cfg = pool_config(3);
    // Exactly one worker dies: the first fetch of a task-0 bucket kills
    // its server; regenerated outputs live at epoch 1, above max_epoch.
    cfg.fetch_chaos =
        Some(FetchChaos::once(FetchPolicy::KillServingWorker).with_key_filter("task-00000/"));
    cfg.respawn_backoff = Duration::from_millis(10);
    let mut pool = WorkerPool::spawn(cfg).unwrap();
    let results =
        pool.run_shuffle(&map_tasks, &shuffle_spec(ShuffleMode::Remote, "rs/kill")).unwrap();

    for p in 0..4 {
        assert_eq!(
            collected_rows(&results[p]),
            expected[p],
            "partition {p} must be byte-identical after lineage recovery"
        );
    }
    let stats = pool.stats();
    assert!(stats.workers_lost >= 1, "the serving worker must have died");
    assert!(stats.fetch_failures >= 1, "the kill must surface as a fetch failure");
    assert!(stats.map_outputs_lost >= 1, "the dead worker's outputs are lost");
    assert_eq!(
        stats.map_outputs_regenerated, stats.map_outputs_lost,
        "every lost output is regenerated exactly once"
    );
    assert!(
        pool.shuffle_epoch("rs/kill").unwrap() >= 1,
        "regeneration must bump the shuffle epoch"
    );
    pool.shutdown();
}

#[test]
fn unknown_op_fails_the_task_without_killing_the_worker() {
    let mut pool = WorkerPool::spawn(pool_config(2)).unwrap();
    let bad = DistTask::with_rows(
        PlanFragment {
            schema: "i64".into(),
            input: PlanInput::Inline,
            ops: vec![PlanOp::Map { op: "no-such-op".into(), arg: serde_json::Value::Null }],
            sink: PlanSink::Count,
        },
        encode_rows(&[1i64, 2]).unwrap(),
    );
    let err = pool.execute(std::slice::from_ref(&bad)).unwrap_err();
    assert!(err.to_string().contains("no-such-op"), "{err}");
    assert_eq!(pool.stats().workers_lost, 0, "a plan error is not a worker loss");

    // The pool is still serviceable after the failed job.
    let ok = pool.execute(&[add_even_task(&[1, 2, 3, 4], 0)]).unwrap();
    assert_eq!(collected_rows(&ok[0]), vec![2, 4]);
    pool.shutdown();
}
