//! Context-wide memory governance.
//!
//! Spark runs every executor under a unified memory manager: execution
//! and storage draw from one budget, storage gives pages back under
//! execution pressure, and tasks spill to disk instead of dying when the
//! budget is exhausted. This module is the reproduction's equivalent: a
//! [`MemoryManager`] attached to each [`Context`](crate::Context) tracks
//! *accounted* bytes (shallow partition payloads — see
//! [`Partition::shallow_bytes`](crate::Partition::shallow_bytes)) against
//! an optional byte budget
//! ([`EngineConfig::memory_budget`](crate::EngineConfig)).
//!
//! Three degradation paths keep jobs correct under pressure instead of
//! aborting them:
//!
//! * **Spill** — the shuffle write path asks for a [`MemoryReservation`]
//!   per map task; when it cannot be granted, the task's buckets are
//!   serialised to the context's spill [`ObjectStore`](crate::ObjectStore)
//!   as STK1-framed blobs and streamed back at merge time
//!   ([`MetricsSnapshot::bytes_spilled`](crate::MetricsSnapshot)).
//! * **Eviction** — cache and checkpoint cells register themselves as
//!   LRU *victims*; a reservation that does not fit evicts the
//!   least-recently-touched cells first
//!   ([`MetricsSnapshot::partitions_evicted_for_pressure`](crate::MetricsSnapshot)).
//!   Evicted cache entries recompute from lineage; evicted checkpoint
//!   cells re-read their blob — byte-identical either way.
//! * **Decline** — a cache populate whose reservation still does not fit
//!   after eviction simply does not cache (later accesses recompute);
//!   no task ever fails because of the budget.
//!
//! Accounting is *partition-granular*: reservations happen at task and
//! cell boundaries, never inside the fused per-record hot loop, so an
//! unbounded context pays two relaxed atomic ops per partition and takes
//! no locks on the fast path.

use crate::metrics::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Outcome of asking one registered victim to give its bytes back.
pub(crate) enum VictimState {
    /// The victim released this many accounted bytes (> 0).
    Evicted(u64),
    /// Nothing to release right now (cell empty, or its lock is held by
    /// a running task — skipped to stay deadlock-free).
    Empty,
    /// The owning dataset is gone; the registration can be dropped.
    Gone,
}

/// One evictable storage site (a cache or checkpoint cell).
struct Victim {
    /// LRU clock value of the last access, shared with the owning cell
    /// so touches are lock-free.
    last_touch: Arc<AtomicU64>,
    /// Asks the cell to drop its value, returning what happened.
    evict: Box<dyn Fn() -> VictimState + Send + Sync>,
}

/// Tracks accounted bytes against the context budget and drives
/// pressure eviction. Shared by every task of a context.
pub struct MemoryManager {
    /// Budget from [`EngineConfig::memory_budget`](crate::EngineConfig);
    /// `u64::MAX` means unbounded.
    configured: u64,
    /// Effective budget — starts at `configured`, shrunk (sticky) by
    /// [`FaultPolicy::MemoryPressure`](crate::FaultPolicy) strikes.
    effective: AtomicU64,
    /// Accounted bytes currently reserved.
    reserved: AtomicU64,
    /// LRU clock: bumped on every victim touch.
    clock: AtomicU64,
    victims: Mutex<Vec<Victim>>,
    metrics: Arc<Metrics>,
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryManager")
            .field("budget", &self.budget())
            .field("reserved", &self.reserved())
            .finish()
    }
}

/// RAII grant of accounted bytes; gives them back on drop. This is what
/// makes speculation-safe accounting possible: a losing duplicate's
/// discarded result drops its reservation with it.
pub struct MemoryReservation {
    manager: Arc<MemoryManager>,
    bytes: u64,
}

impl MemoryReservation {
    /// Accounted bytes held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.manager.release(self.bytes);
    }
}

impl std::fmt::Debug for MemoryReservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryReservation({} bytes)", self.bytes)
    }
}

impl MemoryManager {
    pub(crate) fn new(budget: Option<u64>, metrics: Arc<Metrics>) -> Arc<Self> {
        let configured = budget.unwrap_or(u64::MAX);
        Arc::new(MemoryManager {
            configured,
            effective: AtomicU64::new(configured),
            reserved: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            victims: Mutex::new(Vec::new()),
            metrics,
        })
    }

    /// The effective byte budget; `None` when unbounded.
    pub fn budget(&self) -> Option<u64> {
        match self.effective.load(Ordering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Accounted bytes currently reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Shrinks the effective budget to at most `bytes` (sticky for the
    /// manager's lifetime) and evicts victims until the ledger fits —
    /// the [`FaultPolicy::MemoryPressure`](crate::FaultPolicy) strike
    /// path, modelling an external actor (OOM killer, co-tenant)
    /// clawing memory back mid-job.
    pub fn restrict(&self, bytes: u64) {
        self.effective.fetch_min(bytes, Ordering::Relaxed);
        self.evict_to_fit(0);
    }

    /// Restores the effective budget to the configured value, undoing
    /// any [`MemoryManager::restrict`] strikes.
    pub fn lift_restriction(&self) {
        self.effective.store(self.configured, Ordering::Relaxed);
    }

    fn record_reservation(self: &Arc<Self>, bytes: u64) -> MemoryReservation {
        let now = self.reserved.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.metrics.record_bytes_reserved_peak(now);
        MemoryReservation { manager: Arc::clone(self), bytes }
    }

    /// Reserves `bytes` if the budget can absorb them, evicting LRU
    /// victims as needed. `None` means the caller must degrade (spill,
    /// or skip caching) — it never means the task should fail.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<MemoryReservation> {
        let budget = self.effective.load(Ordering::Relaxed);
        if budget == u64::MAX {
            return Some(self.record_reservation(bytes));
        }
        if self.evict_to_fit(bytes) {
            return Some(self.record_reservation(bytes));
        }
        None
    }

    /// Reserves `bytes` unconditionally, evicting what it can first.
    /// Used where dropping data is not an option (e.g. stream batches
    /// already pulled off the wire): the ledger may overshoot the budget
    /// and the overshoot shows up in the reserved-bytes peak.
    pub fn reserve(self: &Arc<Self>, bytes: u64) -> MemoryReservation {
        if self.effective.load(Ordering::Relaxed) != u64::MAX {
            self.evict_to_fit(bytes);
        }
        self.record_reservation(bytes)
    }

    fn release(&self, bytes: u64) {
        self.reserved.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Registers an evictable storage cell. Returns the shared LRU
    /// touch cell: the owner stores the current clock into it on every
    /// access ([`MemoryManager::touch`]), lock-free.
    pub(crate) fn register_victim(
        &self,
        evict: Box<dyn Fn() -> VictimState + Send + Sync>,
    ) -> Arc<AtomicU64> {
        let last_touch = Arc::new(AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)));
        let handle = Arc::clone(&last_touch);
        self.victims
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Victim { last_touch, evict });
        handle
    }

    /// Marks a victim as just-used for LRU ordering.
    pub(crate) fn touch(&self, last_touch: &AtomicU64) {
        last_touch.store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Evicts least-recently-touched victims until `reserved + incoming`
    /// fits the effective budget (or no evictable bytes remain). Returns
    /// whether it fits. Victim hooks use `try_lock` on their cells, so a
    /// cell whose lock is held by a running task is skipped — eviction
    /// never deadlocks against a populate in progress.
    fn evict_to_fit(&self, incoming: u64) -> bool {
        let fits = |m: &Self| {
            let budget = m.effective.load(Ordering::Relaxed);
            m.reserved.load(Ordering::Relaxed).saturating_add(incoming) <= budget
        };
        if fits(self) {
            return true;
        }
        let mut victims = self.victims.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Oldest-touch-first scan. The list is small (one entry per
        // cached/checkpointed partition cell constructed on the context),
        // and eviction is already the slow path.
        let mut order: Vec<usize> = (0..victims.len()).collect();
        order.sort_by_key(|&i| victims[i].last_touch.load(Ordering::Relaxed));
        let mut gone: Vec<usize> = Vec::new();
        for i in order {
            if fits(self) {
                break;
            }
            match (victims[i].evict)() {
                VictimState::Evicted(bytes) => {
                    debug_assert!(bytes > 0);
                    self.metrics.inc_partitions_evicted_for_pressure(1);
                }
                VictimState::Empty => {}
                VictimState::Gone => gone.push(i),
            }
        }
        // Lazily drop registrations whose owner died.
        gone.sort_unstable_by(|a, b| b.cmp(a));
        for i in gone {
            victims.swap_remove(i);
        }
        fits(self)
    }

    #[cfg(test)]
    pub(crate) fn victim_count(&self) -> usize {
        self.victims.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Creates a child budget capped at `cap` bytes (`None` = bounded
    /// only by this manager). Child reservations count against both the
    /// child's cap and this context-wide ledger, so a multi-tenant
    /// service can give each tenant a slice of the context budget while
    /// the sum still respects [`EngineConfig::memory_budget`](crate::EngineConfig).
    pub fn child(self: &Arc<Self>, cap: Option<u64>) -> Arc<ChildBudget> {
        Arc::new(ChildBudget {
            parent: Arc::clone(self),
            cap: cap.unwrap_or(u64::MAX),
            reserved: AtomicU64::new(0),
        })
    }
}

/// A hierarchical slice of a [`MemoryManager`] budget: reservations must
/// fit the child's own cap *and* are accounted against the parent (which
/// may evict LRU victims to make room). Tenants of a shared context each
/// get one, so one tenant exhausting its slice cannot starve the others.
pub struct ChildBudget {
    parent: Arc<MemoryManager>,
    /// `u64::MAX` means no child-local cap.
    cap: u64,
    reserved: AtomicU64,
}

impl std::fmt::Debug for ChildBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChildBudget")
            .field("cap", &self.cap())
            .field("reserved", &self.reserved())
            .finish()
    }
}

impl ChildBudget {
    /// The child-local cap; `None` when only the parent bounds it.
    pub fn cap(&self) -> Option<u64> {
        match self.cap {
            u64::MAX => None,
            c => Some(c),
        }
    }

    /// Bytes currently reserved through this child.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// The parent manager this child draws from.
    pub fn parent(&self) -> &Arc<MemoryManager> {
        &self.parent
    }

    /// Reserves `bytes` if they fit the child cap and the parent grants
    /// them (evicting parent-level LRU victims as needed). `None` means
    /// this child is out of budget — the caller degrades or reports a
    /// typed error; other children of the same parent are unaffected.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<ChildReservation> {
        // Claim against the child cap first with a CAS loop, so two
        // concurrent requests cannot jointly overshoot it.
        let mut held = self.reserved.load(Ordering::Relaxed);
        loop {
            if held.saturating_add(bytes) > self.cap {
                return None;
            }
            match self.reserved.compare_exchange_weak(
                held,
                held + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => held = now,
            }
        }
        match self.parent.try_reserve(bytes) {
            Some(parent) => {
                Some(ChildReservation { child: Arc::clone(self), bytes, _parent: parent })
            }
            None => {
                // Roll the child claim back: the context-wide budget, not
                // this child's cap, refused the bytes.
                self.reserved.fetch_sub(bytes, Ordering::Relaxed);
                None
            }
        }
    }
}

/// RAII grant from a [`ChildBudget`]; releases the child claim and the
/// nested parent reservation on drop.
pub struct ChildReservation {
    child: Arc<ChildBudget>,
    bytes: u64,
    _parent: MemoryReservation,
}

impl ChildReservation {
    /// Accounted bytes held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for ChildReservation {
    fn drop(&mut self) {
        self.child.reserved.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ChildReservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChildReservation({} bytes)", self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(budget: Option<u64>) -> Arc<MemoryManager> {
        MemoryManager::new(budget, Arc::new(Metrics::default()))
    }

    #[test]
    fn unbounded_reserves_and_tracks_peak() {
        let m = manager(None);
        assert_eq!(m.budget(), None);
        let a = m.try_reserve(1 << 30).expect("unbounded always grants");
        let b = m.try_reserve(1 << 30).expect("unbounded always grants");
        assert_eq!(m.reserved(), 2 << 30);
        assert_eq!(m.metrics.snapshot().bytes_reserved_peak, 2 << 30);
        drop(a);
        drop(b);
        assert_eq!(m.reserved(), 0);
        // the peak is a high-water mark, not a live gauge
        assert_eq!(m.metrics.snapshot().bytes_reserved_peak, 2 << 30);
    }

    #[test]
    fn bounded_refuses_past_budget_without_victims() {
        let m = manager(Some(100));
        let r = m.try_reserve(60).expect("fits");
        assert!(m.try_reserve(60).is_none(), "would exceed 100");
        drop(r);
        assert!(m.try_reserve(60).is_some(), "fits after release");
    }

    #[test]
    fn forced_reserve_overshoots_and_records_peak() {
        let m = manager(Some(100));
        let r = m.reserve(250);
        assert_eq!(m.reserved(), 250);
        assert_eq!(m.metrics.snapshot().bytes_reserved_peak, 250);
        drop(r);
        assert_eq!(m.reserved(), 0);
    }

    #[test]
    fn eviction_frees_lru_victims_first() {
        let m = manager(Some(100));
        // two evictable "cells" of 40 bytes each
        let cells: Vec<Arc<Mutex<Option<MemoryReservation>>>> =
            (0..2).map(|_| Arc::new(Mutex::new(None))).collect();
        let mut touches = Vec::new();
        for cell in &cells {
            let weak = Arc::downgrade(cell);
            touches.push(m.register_victim(Box::new(move || {
                let Some(cell) = weak.upgrade() else { return VictimState::Gone };
                let Ok(mut slot) = cell.try_lock() else { return VictimState::Empty };
                match slot.take() {
                    Some(r) => VictimState::Evicted(r.bytes()),
                    None => VictimState::Empty,
                }
            })));
        }
        *cells[0].lock().unwrap() = Some(m.try_reserve(40).unwrap());
        *cells[1].lock().unwrap() = Some(m.try_reserve(40).unwrap());
        // cell 1 is fresher than cell 0
        m.touch(&touches[0]);
        m.touch(&touches[1]);
        let r = m.try_reserve(50).expect("evicting one victim makes room");
        assert_eq!(r.bytes(), 50);
        assert!(cells[0].lock().unwrap().is_none(), "LRU cell evicted");
        assert!(cells[1].lock().unwrap().is_some(), "fresh cell kept");
        assert_eq!(m.metrics.snapshot().partitions_evicted_for_pressure, 1);
    }

    #[test]
    fn dead_victims_are_dropped_lazily() {
        let m = manager(Some(10));
        let cell = Arc::new(Mutex::new(Option::<MemoryReservation>::None));
        let weak = Arc::downgrade(&cell);
        m.register_victim(Box::new(move || match weak.upgrade() {
            Some(_) => VictimState::Empty,
            None => VictimState::Gone,
        }));
        assert_eq!(m.victim_count(), 1);
        drop(cell);
        assert!(m.try_reserve(20).is_none(), "nothing evictable");
        assert_eq!(m.victim_count(), 0, "dead registration removed");
    }

    #[test]
    fn restrict_is_sticky_and_lift_restores() {
        let m = manager(Some(1000));
        m.restrict(100);
        assert_eq!(m.budget(), Some(100));
        m.restrict(500); // cannot grow the restriction
        assert_eq!(m.budget(), Some(100));
        assert!(m.try_reserve(200).is_none());
        m.lift_restriction();
        assert_eq!(m.budget(), Some(1000));
        assert!(m.try_reserve(200).is_some());
    }

    #[test]
    fn restrict_applies_to_unbounded_managers() {
        let m = manager(None);
        m.restrict(64);
        assert_eq!(m.budget(), Some(64));
        assert!(m.try_reserve(100).is_none());
        m.lift_restriction();
        assert_eq!(m.budget(), None);
    }

    #[test]
    fn child_budget_enforces_its_own_cap() {
        let m = manager(None);
        let child = m.child(Some(100));
        let r = child.try_reserve(60).expect("fits the child cap");
        assert_eq!(child.reserved(), 60);
        assert_eq!(m.reserved(), 60, "child bytes count against the parent ledger");
        assert!(child.try_reserve(60).is_none(), "would exceed the child cap");
        drop(r);
        assert_eq!(child.reserved(), 0);
        assert_eq!(m.reserved(), 0);
        assert!(child.try_reserve(60).is_some(), "fits after release");
    }

    #[test]
    fn child_budget_rolls_back_when_parent_refuses() {
        let m = manager(Some(50));
        let child = m.child(Some(1000));
        assert!(child.try_reserve(80).is_none(), "parent budget refuses");
        assert_eq!(child.reserved(), 0, "failed claim must roll back");
        assert_eq!(m.reserved(), 0);
    }

    #[test]
    fn sibling_budgets_are_isolated() {
        let m = manager(None);
        let a = m.child(Some(100));
        let b = m.child(Some(100));
        let _hog = a.try_reserve(100).expect("a takes its whole slice");
        assert!(a.try_reserve(1).is_none(), "a is exhausted");
        assert!(b.try_reserve(100).is_some(), "b is unaffected by a's exhaustion");
    }

    #[test]
    fn uncapped_child_is_bounded_only_by_parent() {
        let m = manager(Some(100));
        let child = m.child(None);
        assert_eq!(child.cap(), None);
        let _held = child.try_reserve(80).expect("fits the parent budget");
        assert!(child.try_reserve(80).is_none(), "parent budget still applies");
    }

    #[test]
    fn contended_cells_are_skipped_not_deadlocked() {
        let m = manager(Some(100));
        let cell = Arc::new(Mutex::new(Option::<MemoryReservation>::None));
        let weak = Arc::downgrade(&cell);
        m.register_victim(Box::new(move || {
            let Some(cell) = weak.upgrade() else { return VictimState::Gone };
            let Ok(mut slot) = cell.try_lock() else { return VictimState::Empty };
            match slot.take() {
                Some(r) => VictimState::Evicted(r.bytes()),
                None => VictimState::Empty,
            }
        }));
        *cell.lock().unwrap() = Some(m.try_reserve(80).unwrap());
        let guard = cell.lock().unwrap(); // simulate a task holding the cell
        assert!(m.try_reserve(80).is_none(), "held cell must be skipped, not evicted");
        drop(guard);
        assert!(m.try_reserve(80).is_some(), "released cell is evictable again");
    }
}
