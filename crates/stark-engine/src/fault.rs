//! Deterministic fault injection for chaos testing.
//!
//! Spark's resilience story — lost tasks are retried and their
//! partitions recomputed from lineage — is untestable by inspection, so
//! the engine carries its own chaos harness: a seeded [`FaultInjector`]
//! installed via [`EngineConfig::fault_injector`](crate::EngineConfig)
//! that the executor consults at the start of every task attempt.
//! Whether a given `(stage, partition)` is struck is a pure function of
//! the seed, so a failing chaos run reproduces exactly from its seed
//! (CI exports it; locally `STARK_CHAOS_SEED=<n>` re-runs the same
//! schedule).
//!
//! Three policies model the failure modes a cluster actually shows:
//!
//! * [`FaultPolicy::Transient`] — the attempt panics, but a retry of the
//!   same task succeeds (a lost executor, a flaky fetch). Task retry
//!   must fully absorb these: results are identical to a fault-free run.
//! * [`FaultPolicy::Panic`] — every attempt panics (a poison record, a
//!   deterministic bug). The retry budget exhausts and the job surfaces
//!   a permanent [`TaskError`](crate::TaskError) naming the partition.
//! * [`FaultPolicy::Delay`] — the attempt is stalled before computing (a
//!   straggler); the task still succeeds and results must not change.
//! * [`FaultPolicy::MemoryPressure`] — the struck attempt shrinks the
//!   context's effective memory budget (an OOM-killer neighbour, a
//!   ballooning co-tenant); nothing panics, but downstream reservations
//!   start spilling and evicting. Results must not change.

use crate::memory::MemoryManager;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an injected fault does to the task attempt it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Panic on attempts below the injector's `fail_attempts` threshold;
    /// later attempts of the same task succeed. Recoverable by retry.
    Transient,
    /// Panic on every attempt; the task can never succeed.
    Panic,
    /// Sleep for the given duration before computing (cooperatively —
    /// the stall aborts early if the attempt is cancelled), then
    /// proceed. Like [`FaultPolicy::Transient`], only attempts below the
    /// injector's `fail_attempts` threshold are stalled, so a
    /// speculative duplicate running with fresh attempt numbers escapes
    /// the straggler.
    Delay(Duration),
    /// Shrink the context's effective memory budget to at most this many
    /// bytes (sticky until [`MemoryManager::lift_restriction`], and never
    /// above the configured budget). The struck attempt itself proceeds
    /// normally — the fault's blast radius is every *later* reservation,
    /// which now spills or evicts. Like [`FaultPolicy::Delay`], only
    /// attempts below the injector's `fail_attempts` threshold strike.
    MemoryPressure(u64),
}

/// Which task attempts a fault targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultScope {
    /// Seeded Bernoulli draw per `(stage, partition)` with this
    /// probability — the "p% of tasks fail" chaos configuration.
    Probability(f64),
    /// Every task computing this partition index, in every stage.
    Partition(usize),
    /// Every task of this stage ordinal (stages number job sweeps on a
    /// context, starting at 0).
    Stage(u64),
}

/// Typed panic payload raised by an injected fault, so the executor can
/// distinguish chaos from genuine task panics.
#[derive(Debug, Clone)]
pub(crate) struct InjectedFault {
    pub stage: u64,
    pub partition: usize,
    pub attempt: u32,
    pub transient: bool,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} fault (stage {}, partition {}, attempt {})",
            if self.transient { "transient" } else { "permanent" },
            self.stage,
            self.partition,
            self.attempt
        )
    }
}

/// Seeded, deterministic fault injector consulted on every task attempt.
///
/// ```
/// use stark_engine::{Context, EngineConfig, FaultInjector};
/// use std::sync::Arc;
///
/// let chaos = Arc::new(FaultInjector::transient(0xC4A05, 0.10));
/// let ctx = Context::with_config(EngineConfig {
///     parallelism: 4,
///     max_task_retries: 3,
///     fault_injector: Some(chaos.clone()),
///     ..EngineConfig::default()
/// });
/// // ~10% of tasks panic once and are retried; the result is identical
/// // to a fault-free run.
/// let sum = ctx.parallelize((1..=100).collect(), 16).reduce(|a, b| a + b);
/// assert_eq!(sum, Some(5050));
/// assert_eq!(ctx.metrics().tasks_retried, chaos.injected());
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    scope: FaultScope,
    policy: FaultPolicy,
    /// Attempts that fail before a [`FaultPolicy::Transient`] task
    /// succeeds (default 1: the first attempt fails, the retry passes).
    fail_attempts: u32,
    /// Faults actually raised (panics and delays).
    injected: AtomicU64,
}

impl FaultInjector {
    /// Injector with an explicit scope and policy.
    pub fn new(seed: u64, scope: FaultScope, policy: FaultPolicy) -> Self {
        if let FaultScope::Probability(p) = scope {
            assert!((0.0..=1.0).contains(&p), "fault probability must be in [0, 1]");
        }
        FaultInjector { seed, scope, policy, fail_attempts: 1, injected: AtomicU64::new(0) }
    }

    /// Transient faults striking each `(stage, partition)` independently
    /// with probability `rate` — the standard chaos configuration.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self::new(seed, FaultScope::Probability(rate), FaultPolicy::Transient)
    }

    /// Memory-pressure faults striking each `(stage, partition)`
    /// independently with probability `rate`: a struck attempt shrinks
    /// the context's effective budget to `budget` bytes mid-job.
    pub fn memory_pressure(seed: u64, rate: f64, budget: u64) -> Self {
        Self::new(seed, FaultScope::Probability(rate), FaultPolicy::MemoryPressure(budget))
    }

    /// Number of attempts that fail before a transiently faulted task
    /// succeeds. A value of `n` requires a retry budget of at least `n`
    /// for the job to recover.
    pub fn with_fail_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "fail_attempts must be at least 1");
        self.fail_attempts = n;
        self
    }

    /// The seed this injector's schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Faults raised so far (panics and delays, over all attempts).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the deterministic schedule targets this task at all
    /// (independent of attempt number).
    fn targets(&self, stage: u64, partition: usize) -> bool {
        match self.scope {
            FaultScope::Partition(p) => partition == p,
            FaultScope::Stage(s) => stage == s,
            FaultScope::Probability(p) => {
                let h = splitmix64(
                    self.seed
                        ^ stage.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (partition as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
                );
                // uniform draw in [0, 1)
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < p
            }
        }
    }

    /// Consulted by the executor at the start of every task attempt,
    /// inside the task's panic guard. May sleep ([`FaultPolicy::Delay`]),
    /// panic with a typed [`InjectedFault`] payload, or restrict the
    /// context's memory budget ([`FaultPolicy::MemoryPressure`]).
    pub(crate) fn on_attempt(
        &self,
        stage: u64,
        partition: usize,
        attempt: u32,
        memory: &MemoryManager,
    ) {
        if !self.targets(stage, partition) {
            return;
        }
        match self.policy {
            FaultPolicy::MemoryPressure(budget) => {
                // Gated like Delay: the schedule's early attempts apply
                // the squeeze, retries and speculative duplicates run
                // under whatever budget is already in force.
                if attempt < self.fail_attempts {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    memory.restrict(budget);
                }
            }
            FaultPolicy::Delay(d) => {
                // Like Transient, only early attempts are stalled: a
                // speculative duplicate (running with attempt numbers
                // past the retry budget) models a relaunch on a healthy
                // node and is not stalled again. The sleep is
                // cooperative, so a stalled attempt that loses the
                // speculation race (or hits a deadline) releases its
                // worker promptly instead of sleeping out the stall.
                if attempt < self.fail_attempts {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    crate::cancel::sleep_cooperative(d);
                }
            }
            FaultPolicy::Panic => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::panic::panic_any(InjectedFault {
                    stage,
                    partition,
                    attempt,
                    transient: false,
                });
            }
            FaultPolicy::Transient => {
                if attempt < self.fail_attempts {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    std::panic::panic_any(InjectedFault {
                        stage,
                        partition,
                        attempt,
                        transient: true,
                    });
                }
            }
        }
    }
}

/// splitmix64 finaliser — decorrelates the fault draw from raw indices.
/// Crate-visible: the executor's retry-backoff jitter and the worker
/// pool's respawn jitter reuse it for deterministic draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Transport chaos
// ---------------------------------------------------------------------------

/// What an injected transport fault does to a task dispatch. These
/// extend the task-level [`FaultPolicy`] set to the process boundary:
/// instead of a task attempt panicking in-process, the *transport or the
/// worker itself* fails, and recovery must come from the supervisor's
/// worker-loss path (reassignment + respawn), not from the in-task retry
/// loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPolicy {
    /// SIGKILL the worker process right after the task frame is sent —
    /// a fail-stop crash mid-task. Detected by connection EOF.
    KillWorker,
    /// Drop the task frame on the floor: the worker never sees it and
    /// idles, heartbeating healthily. Only the driver's per-task
    /// deadline catches this.
    DropFrame,
    /// Send a torn frame (correct length prefix, half the payload) and
    /// hang up nothing: the worker blocks mid-read, wedged but alive.
    /// Like `DropFrame`, caught by the task deadline.
    TruncateFrame,
    /// Flip a payload byte after the checksum is computed: the worker's
    /// frame decoder rejects it and the worker fail-stops (exit 1),
    /// surfacing as a connection loss.
    CorruptFrame,
    /// Stall the dispatch this long before sending (slow network). The
    /// task still completes; results must not change.
    DelayFrame(Duration),
}

/// Seeded, deterministic transport-fault injector consulted by the
/// worker pool on every task dispatch. The draw is a pure function of
/// `(seed, job, task, attempt)`, so a chaos run reproduces exactly from
/// its seed, and reassigned attempts (attempt ≥ `fail_attempts`) are
/// never struck again — the invariant that lets tests pin
/// `reassigned == injected`.
#[derive(Debug)]
pub struct TransportChaos {
    seed: u64,
    rate: f64,
    policy: TransportPolicy,
    /// Attempts below this threshold are eligible (default 1: only the
    /// first dispatch of a task can be struck).
    fail_attempts: u32,
    /// When set, strike at most this many dispatches in total.
    max_strikes: Option<u64>,
    injected: AtomicU64,
}

impl TransportChaos {
    /// Injector striking each `(job, task)` first dispatch independently
    /// with probability `rate`.
    pub fn new(seed: u64, rate: f64, policy: TransportPolicy) -> Self {
        assert!((0.0..=1.0).contains(&rate), "transport fault rate must be in [0, 1]");
        TransportChaos {
            seed,
            rate,
            policy,
            fail_attempts: 1,
            max_strikes: None,
            injected: AtomicU64::new(0),
        }
    }

    /// Injector that strikes exactly the first dispatch it sees and
    /// nothing else — "kill one worker mid-job", deterministically.
    pub fn once(policy: TransportPolicy) -> Self {
        let mut c = Self::new(0, 1.0, policy);
        c.max_strikes = Some(1);
        c
    }

    /// Caps the total number of strikes.
    pub fn with_max_strikes(mut self, n: u64) -> Self {
        self.max_strikes = Some(n);
        self
    }

    /// Number of attempts of a task that are eligible to be struck.
    pub fn with_fail_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "fail_attempts must be at least 1");
        self.fail_attempts = n;
        self
    }

    /// Transport faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consulted by the pool before sending a task: returns the policy
    /// to apply to this dispatch, or `None` to send normally. Counts
    /// every strike.
    pub fn draw(&self, job: u64, task: u64, attempt: u32) -> Option<TransportPolicy> {
        if attempt >= self.fail_attempts {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ task.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        if let Some(cap) = self.max_strikes {
            // claim a strike slot atomically so concurrent dispatches
            // cannot overshoot the cap
            let mut cur = self.injected.load(Ordering::Relaxed);
            loop {
                if cur >= cap {
                    return None;
                }
                match self.injected.compare_exchange(
                    cur,
                    cur + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(self.policy),
                    Err(now) => cur = now,
                }
            }
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(self.policy)
    }
}

// ---------------------------------------------------------------------------
// Fetch chaos (remote shuffle)
// ---------------------------------------------------------------------------

/// What an injected fetch fault does to a shuffle bucket request. These
/// extend [`TransportPolicy`] to the *data plane*: instead of a task
/// dispatch failing driver→worker, a reducer's peer-to-peer bucket fetch
/// fails worker→worker, and recovery must come from the supervisor's
/// lost-map-output path (invalidate + regenerate via lineage), not just
/// from the fetch retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchPolicy {
    /// The serving worker answers the request with an explicit refusal
    /// (models connection refused / a server shedding load). The client
    /// retries with backoff.
    RefuseFetch,
    /// The server sends a valid response header, half of the remaining
    /// payload bytes, then hangs up — a torn transfer. The client's
    /// partial-fetch resume continues from the received offset.
    DropBucket,
    /// The server sends the full payload with one byte flipped after the
    /// checksum was computed; the client's whole-payload CRC check
    /// rejects it and the fetch restarts from offset 0.
    CorruptBucket,
    /// The server stalls this long before serving (a slow peer). The
    /// fetch still succeeds; results must not change and no retry is
    /// consumed.
    DelayFetch(Duration),
    /// The serving worker process exits immediately — the victim's map
    /// outputs are lost and the supervisor must regenerate them via
    /// lineage on survivors.
    KillServingWorker,
}

/// Declarative fetch-fault spec, passed from the driver to workers via
/// the `STARK_FETCH_CHAOS` environment variable (workers are separate
/// processes, so the injector state cannot be shared — each worker
/// tracks its own strike budget with a [`FetchChaosState`]).
///
/// The `max_epoch` guard is what makes kill-chaos runs converge:
/// regenerated map outputs register at a bumped shuffle epoch, and a
/// request for an epoch above `max_epoch` is never struck — so recovery
/// traffic cannot re-trigger the fault that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchChaos {
    pub policy: FetchPolicy,
    /// Strike at most this many matching requests (per worker process).
    pub max_strikes: u64,
    /// Only requests for shuffle epochs `<= max_epoch` are eligible.
    pub max_epoch: u64,
    /// Only bucket keys containing this substring are eligible; `None`
    /// matches every key. Kill-chaos tests scope the fault to one map
    /// task's outputs (e.g. `"task-00000/"`) so exactly one worker dies.
    pub key_filter: Option<String>,
}

impl FetchChaos {
    /// A spec striking exactly one matching epoch-0 request.
    pub fn once(policy: FetchPolicy) -> Self {
        FetchChaos { policy, max_strikes: 1, max_epoch: 0, key_filter: None }
    }

    pub fn with_max_strikes(mut self, n: u64) -> Self {
        self.max_strikes = n;
        self
    }

    pub fn with_key_filter(mut self, filter: impl Into<String>) -> Self {
        self.key_filter = Some(filter.into());
        self
    }

    /// Encodes the spec for the `STARK_FETCH_CHAOS` environment variable:
    /// `policy[:delay_ms]|max_strikes|max_epoch|key_filter` (the filter
    /// field may be empty).
    pub fn to_env(&self) -> String {
        let policy = match self.policy {
            FetchPolicy::RefuseFetch => "refuse".to_string(),
            FetchPolicy::DropBucket => "drop".to_string(),
            FetchPolicy::CorruptBucket => "corrupt".to_string(),
            FetchPolicy::DelayFetch(d) => format!("delay:{}", d.as_millis()),
            FetchPolicy::KillServingWorker => "kill".to_string(),
        };
        format!(
            "{policy}|{}|{}|{}",
            self.max_strikes,
            self.max_epoch,
            self.key_filter.as_deref().unwrap_or("")
        )
    }

    /// Decodes [`FetchChaos::to_env`]'s format; `None` on any mismatch
    /// (a malformed spec disables chaos rather than guessing).
    pub fn from_env(s: &str) -> Option<FetchChaos> {
        let mut parts = s.splitn(4, '|');
        let policy = match parts.next()? {
            "refuse" => FetchPolicy::RefuseFetch,
            "drop" => FetchPolicy::DropBucket,
            "corrupt" => FetchPolicy::CorruptBucket,
            "kill" => FetchPolicy::KillServingWorker,
            p => {
                let ms: u64 = p.strip_prefix("delay:")?.parse().ok()?;
                FetchPolicy::DelayFetch(Duration::from_millis(ms))
            }
        };
        let max_strikes = parts.next()?.parse().ok()?;
        let max_epoch = parts.next()?.parse().ok()?;
        let filter = parts.next()?;
        Some(FetchChaos {
            policy,
            max_strikes,
            max_epoch,
            key_filter: if filter.is_empty() { None } else { Some(filter.to_string()) },
        })
    }
}

/// Worker-side strike counter wrapping a [`FetchChaos`] spec. Consulted
/// by the shuffle server on every bucket request.
#[derive(Debug)]
pub struct FetchChaosState {
    spec: FetchChaos,
    struck: AtomicU64,
}

impl FetchChaosState {
    pub fn new(spec: FetchChaos) -> Self {
        FetchChaosState { spec, struck: AtomicU64::new(0) }
    }

    /// Builds the state from `STARK_FETCH_CHAOS` if set and well-formed.
    pub fn from_env_var() -> Option<Self> {
        let spec = std::env::var("STARK_FETCH_CHAOS").ok()?;
        FetchChaos::from_env(&spec).map(Self::new)
    }

    /// Fetch faults injected so far by this worker.
    pub fn injected(&self) -> u64 {
        self.struck.load(Ordering::Relaxed)
    }

    /// Returns the policy to apply to a request for `key` at `epoch`, or
    /// `None` to serve normally. Claims a strike slot atomically so
    /// concurrent request handlers cannot overshoot the cap.
    pub fn draw(&self, key: &str, epoch: u64) -> Option<FetchPolicy> {
        if epoch > self.spec.max_epoch {
            return None; // regenerated outputs must serve cleanly
        }
        if let Some(filter) = &self.spec.key_filter {
            if !key.contains(filter.as_str()) {
                return None;
            }
        }
        let mut cur = self.struck.load(Ordering::Relaxed);
        loop {
            if cur >= self.spec.max_strikes {
                return None;
            }
            match self.struck.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Some(self.spec.policy),
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_draws_are_deterministic_and_proportional() {
        let a = FaultInjector::transient(42, 0.25);
        let b = FaultInjector::transient(42, 0.25);
        let hits: usize = (0..40u64)
            .flat_map(|s| (0..100usize).map(move |p| (s, p)))
            .filter(|&(s, p)| a.targets(s, p))
            .count();
        for s in 0..40u64 {
            for p in 0..100usize {
                assert_eq!(a.targets(s, p), b.targets(s, p), "same seed must draw identically");
            }
        }
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "got hit rate {rate}, expected ~0.25");
        // a different seed produces a different schedule
        let c = FaultInjector::transient(43, 0.25);
        let differs = (0..40u64)
            .flat_map(|s| (0..100usize).map(move |p| (s, p)))
            .any(|(s, p)| a.targets(s, p) != c.targets(s, p));
        assert!(differs, "different seeds must differ somewhere");
    }

    #[test]
    fn scope_targets_partition_and_stage() {
        let p = FaultInjector::new(1, FaultScope::Partition(3), FaultPolicy::Transient);
        assert!(p.targets(0, 3) && p.targets(9, 3));
        assert!(!p.targets(0, 2));
        let s = FaultInjector::new(1, FaultScope::Stage(2), FaultPolicy::Transient);
        assert!(s.targets(2, 0) && s.targets(2, 7));
        assert!(!s.targets(3, 0));
    }

    #[test]
    fn transient_faults_stop_after_fail_attempts() {
        let mm = MemoryManager::new(None, std::sync::Arc::new(crate::metrics::Metrics::default()));
        let inj = FaultInjector::new(7, FaultScope::Partition(0), FaultPolicy::Transient)
            .with_fail_attempts(2);
        for attempt in 0..2 {
            let err = std::panic::catch_unwind(|| inj.on_attempt(0, 0, attempt, &mm));
            assert!(err.is_err(), "attempt {attempt} must fail");
        }
        let ok = std::panic::catch_unwind(|| inj.on_attempt(0, 0, 2, &mm));
        assert!(ok.is_ok(), "attempt past the threshold must pass");
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn memory_pressure_restricts_without_panicking() {
        let mm = MemoryManager::new(
            Some(1_000_000),
            std::sync::Arc::new(crate::metrics::Metrics::default()),
        );
        let inj = FaultInjector::new(9, FaultScope::Partition(1), FaultPolicy::MemoryPressure(64));
        inj.on_attempt(0, 1, 0, &mm); // strikes: no panic, budget shrinks
        assert_eq!(inj.injected(), 1);
        assert_eq!(mm.budget(), Some(64));
        inj.on_attempt(0, 1, 1, &mm); // past fail_attempts: no-op
        assert_eq!(inj.injected(), 1);
        inj.on_attempt(0, 0, 0, &mm); // untargeted partition: no-op
        assert_eq!(inj.injected(), 1);
        mm.lift_restriction();
        assert_eq!(mm.budget(), Some(1_000_000));
    }

    #[test]
    fn rate_bounds_validated() {
        let r = std::panic::catch_unwind(|| FaultInjector::transient(0, 1.5));
        assert!(r.is_err());
    }

    #[test]
    fn transport_draws_are_deterministic_and_skip_retries() {
        let a = TransportChaos::new(99, 0.3, TransportPolicy::KillWorker);
        let b = TransportChaos::new(99, 0.3, TransportPolicy::KillWorker);
        let mut hits = 0usize;
        for job in 0..10u64 {
            for task in 0..100u64 {
                let da = a.draw(job, task, 0);
                assert_eq!(da, b.draw(job, task, 0), "same seed must draw identically");
                if da.is_some() {
                    hits += 1;
                }
                // reassigned attempts are never struck again
                assert_eq!(a.draw(job, task, 1), None);
            }
        }
        let rate = hits as f64 / 1000.0;
        assert!((rate - 0.3).abs() < 0.08, "got strike rate {rate}, expected ~0.3");
        assert_eq!(a.injected() as usize, hits);
    }

    #[test]
    fn once_strikes_exactly_one_dispatch() {
        let c = TransportChaos::once(TransportPolicy::CorruptFrame);
        assert_eq!(c.draw(0, 0, 0), Some(TransportPolicy::CorruptFrame));
        for task in 1..50 {
            assert_eq!(c.draw(0, task, 0), None);
        }
        assert_eq!(c.injected(), 1);
    }

    #[test]
    fn fetch_chaos_env_roundtrip() {
        for spec in [
            FetchChaos::once(FetchPolicy::KillServingWorker).with_key_filter("task-00000/"),
            FetchChaos::once(FetchPolicy::RefuseFetch),
            FetchChaos::once(FetchPolicy::DropBucket).with_max_strikes(3),
            FetchChaos::once(FetchPolicy::CorruptBucket),
            FetchChaos {
                policy: FetchPolicy::DelayFetch(Duration::from_millis(75)),
                max_strikes: 2,
                max_epoch: 1,
                key_filter: None,
            },
        ] {
            let env = spec.to_env();
            assert_eq!(FetchChaos::from_env(&env), Some(spec), "spec {env:?} must roundtrip");
        }
        assert_eq!(FetchChaos::from_env("garbage|x|y|z"), None);
        assert_eq!(FetchChaos::from_env(""), None);
    }

    #[test]
    fn fetch_chaos_respects_epoch_filter_and_cap() {
        let state = FetchChaosState::new(
            FetchChaos::once(FetchPolicy::RefuseFetch)
                .with_max_strikes(2)
                .with_key_filter("task-00001/"),
        );
        // wrong key: never struck
        assert_eq!(state.draw("sh/task-00000/bucket-00000", 0), None);
        // regenerated epoch: never struck, even on a matching key
        assert_eq!(state.draw("sh/task-00001/bucket-00000", 1), None);
        // matching key at epoch 0: struck until the cap
        assert_eq!(state.draw("sh/task-00001/bucket-00000", 0), Some(FetchPolicy::RefuseFetch));
        assert_eq!(state.draw("sh/task-00001/bucket-00001", 0), Some(FetchPolicy::RefuseFetch));
        assert_eq!(state.draw("sh/task-00001/bucket-00002", 0), None, "cap exhausted");
        assert_eq!(state.injected(), 2);
    }

    #[test]
    fn max_strikes_caps_under_concurrency() {
        let c = std::sync::Arc::new(
            TransportChaos::new(5, 1.0, TransportPolicy::DropFrame).with_max_strikes(3),
        );
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = c.clone();
                s.spawn(move || {
                    for task in 0..100u64 {
                        let _ = c.draw(t, task, 0);
                    }
                });
            }
        });
        assert_eq!(c.injected(), 3);
    }
}
