//! A directory-backed object store — the reproduction's stand-in for
//! HDFS (paper Figure 2: raw data and persisted indexes live in HDFS and
//! are re-loaded by later programs).
//!
//! Objects are framed with a small header carrying a CRC32 of the
//! payload and the payload's declared length, both verified on every
//! read: a bit-flipped checkpoint or persisted index surfaces as a typed
//! [`StorageError::Corrupt`] instead of serde garbage, and a corrupt
//! length header is rejected against [`MAX_BLOB_LEN`] before any reader
//! could size a buffer from it. Writes stage into a per-write unique
//! temp file and rename into place, so concurrent writers (and keys
//! sharing a stem) never trample each other's staging file.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from object-store operations.
#[derive(Debug)]
pub enum StorageError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    InvalidKey(String),
    NotFound(String),
    /// The object's stored checksum (or frame header) does not match its
    /// payload — the bytes rotted on disk or were truncated mid-write.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Serde(e) => write!(f, "storage (de)serialisation error: {e}"),
            StorageError::InvalidKey(k) => write!(f, "invalid object key: {k:?}"),
            StorageError::NotFound(k) => write!(f, "object not found: {k:?}"),
            StorageError::Corrupt(k) => {
                write!(f, "object {k:?} is corrupt (checksum mismatch or bad frame)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::Serde(e)
    }
}

/// A flat namespace of named binary objects rooted at a directory.
///
/// Keys may contain `/` to form logical sub-paths (`index/part-0007`),
/// but never `..` or absolute components.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    root: PathBuf,
}

impl ObjectStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StorageError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ObjectStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, key: &str) -> Result<PathBuf, StorageError> {
        if key.is_empty()
            || key.starts_with('/')
            || key.split('/').any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(StorageError::InvalidKey(key.to_string()));
        }
        Ok(self.root.join(key))
    }

    /// Writes `data` under `key`, replacing any previous object. The
    /// payload is framed with a [`FRAME_MAGIC`] + CRC32 + length header
    /// and staged through a unique temp file (key-preserving name,
    /// suffixed with pid and a process-wide counter —
    /// `path.with_extension` would make `part.bin` and `part.json` race
    /// on the same staging file).
    pub fn put_bytes(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        if data.len() > MAX_BLOB_LEN {
            return Err(StorageError::Corrupt(format!(
                "{key}: payload {} exceeds blob cap {MAX_BLOB_LEN}",
                data.len()
            )));
        }
        let path = self.resolve(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let name = path.file_name().expect("resolved key has a file name").to_string_lossy();
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_file_name(format!("{name}.tmp-{}-{seq}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(FRAME_MAGIC)?;
            f.write_all(&crc32(data).to_le_bytes())?;
            f.write_all(&(data.len() as u32).to_le_bytes())?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Reads the object stored under `key`, verifying its declared
    /// length (capped at [`MAX_BLOB_LEN`] — a corrupt length field must
    /// never be trusted to size an allocation) and its checksum.
    pub fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        let path = self.resolve(key)?;
        let framed = match fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        let Some((header, payload)) = framed.split_at_checked(BLOB_HEADER_LEN) else {
            return Err(StorageError::Corrupt(key.to_string()));
        };
        let (magic, rest) = header.split_at(FRAME_MAGIC.len());
        if magic != FRAME_MAGIC {
            return Err(StorageError::Corrupt(key.to_string()));
        }
        let (crc_bytes, len_bytes) = rest.split_at(4);
        let declared = u32::from_le_bytes(len_bytes.try_into().expect("4-byte len field")) as usize;
        if declared > MAX_BLOB_LEN || declared != payload.len() {
            return Err(StorageError::Corrupt(key.to_string()));
        }
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte crc field"));
        if crc32(payload) != stored {
            return Err(StorageError::Corrupt(key.to_string()));
        }
        Ok(payload.to_vec())
    }

    /// Serialises `value` as JSON under `key`.
    pub fn put_json<T: Serialize>(&self, key: &str, value: &T) -> Result<(), StorageError> {
        let data = serde_json::to_vec(value)?;
        self.put_bytes(key, &data)
    }

    /// [`ObjectStore::put_json`] that also reports the serialised size
    /// in bytes — used by checkpointing to account persisted volume.
    /// Accepts unsized values (e.g. a `[T]` partition slice).
    pub fn put_json_sized<T: Serialize + ?Sized>(
        &self,
        key: &str,
        value: &T,
    ) -> Result<u64, StorageError> {
        let data = serde_json::to_vec(value)?;
        self.put_bytes(key, &data)?;
        Ok(data.len() as u64)
    }

    /// Deserialises the JSON object stored under `key`.
    pub fn get_json<T: DeserializeOwned>(&self, key: &str) -> Result<T, StorageError> {
        let data = self.get_bytes(key)?;
        Ok(serde_json::from_slice(&data)?)
    }

    /// Whether an object exists under `key`.
    pub fn exists(&self, key: &str) -> bool {
        self.resolve(key).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Removes the object under `key` (idempotent).
    pub fn delete(&self, key: &str) -> Result<(), StorageError> {
        let path = self.resolve(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists all object keys under the optional `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, StorageError> {
        let mut keys = Vec::new();
        let base = if prefix.is_empty() { self.root.clone() } else { self.resolve(prefix)? };
        if !base.exists() {
            return Ok(keys);
        }
        collect_keys(&self.root, &base, &mut keys)?;
        keys.sort();
        Ok(keys)
    }
}

/// Magic prefix identifying a framed store object. Shared with the
/// query-service and worker wire protocols, which frame payloads the
/// same way.
pub const FRAME_MAGIC: &[u8; 4] = b"STK1";
/// Wire-frame header: magic + little-endian CRC32 of the payload (the
/// length travels ahead of the magic on the wire, see `transport`).
pub const FRAME_HEADER_LEN: usize = FRAME_MAGIC.len() + 4;
/// On-disk blob header: magic + CRC32 + little-endian payload length.
pub const BLOB_HEADER_LEN: usize = FRAME_HEADER_LEN + 4;
/// Hard cap on a stored blob's payload. A corrupt length header is
/// rejected against this bound instead of being trusted for allocation
/// sizing; the wire protocols enforce their own (smaller) frame cap.
pub const MAX_BLOB_LEN: usize = 256 << 20;

/// Process-wide staging-file counter: combined with the pid it makes
/// every [`ObjectStore::put_bytes`] staging name unique.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// CRC32 (IEEE 802.3 polynomial, reflected) of `data` — the checksum
/// gzip/zip use, implemented locally over a lazily built table to avoid
/// a dependency. Public so the query-service wire protocol checksums
/// frames identically to the object store.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Removes sibling directories under `base` named `{prefix}{pid}-{seq}`
/// whose owning process is dead — the blob dirs (spill stores, worker
/// shuffle stores) a crashed prior run left behind. Returns how many
/// directories were removed.
///
/// Liveness is decided by `/proc/<pid>` existence; on platforms without
/// `/proc`, every foreign pid is assumed live and nothing is removed
/// (leaking is safer than deleting a running process's blobs). The
/// current process's own directories are never touched.
pub fn sweep_orphan_dirs(base: &Path, prefix: &str) -> usize {
    let own_pid = std::process::id();
    let have_proc = Path::new("/proc").is_dir();
    let Ok(entries) = fs::read_dir(base) else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else { continue };
        // the naming convention is `{prefix}{pid}-{seq}`
        let Some((pid_part, seq_part)) = rest.split_once('-') else { continue };
        if seq_part.is_empty() || !seq_part.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(pid) = pid_part.parse::<u32>() else { continue };
        if pid == own_pid || !entry.path().is_dir() {
            continue;
        }
        let alive = !have_proc || Path::new(&format!("/proc/{pid}")).exists();
        if !alive && fs::remove_dir_all(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

fn collect_keys(root: &Path, dir: &Path, keys: &mut Vec<String>) -> Result<(), StorageError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_keys(root, &path, keys)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel.to_string_lossy().replace('\\', "/");
            // an orphaned staging file (crashed writer) is not an object
            if !rel.contains(".tmp-") {
                keys.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ObjectStore {
        let dir =
            std::env::temp_dir().join(format!("stark-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ObjectStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = temp_store("roundtrip");
        s.put_bytes("a/b/c.bin", b"hello").unwrap();
        assert_eq!(&s.get_bytes("a/b/c.bin").unwrap()[..], b"hello");
        assert!(s.exists("a/b/c.bin"));
        assert!(!s.exists("a/b/missing"));
    }

    #[test]
    fn json_roundtrip() {
        let s = temp_store("json");
        let value = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        s.put_json("meta", &value).unwrap();
        let back: Vec<(u32, String)> = s.get_json("meta").unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn overwrite_replaces() {
        let s = temp_store("overwrite");
        s.put_bytes("k", b"one").unwrap();
        s.put_bytes("k", b"two").unwrap();
        assert_eq!(&s.get_bytes("k").unwrap()[..], b"two");
    }

    #[test]
    fn missing_object_is_not_found() {
        let s = temp_store("missing");
        match s.get_bytes("nope") {
            Err(StorageError::NotFound(k)) => assert_eq!(k, "nope"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn orphan_sweep_removes_dead_runs_but_keeps_live_and_foreign_dirs() {
        let base = std::env::temp_dir().join(format!("stark-sweep-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        fs::create_dir_all(&base).unwrap();
        // an orphan from a crashed run: pid u32::MAX never exists
        let orphan = base.join("stark-spill-4294967295-0");
        fs::create_dir_all(orphan.join("nested")).unwrap();
        fs::write(orphan.join("nested/blob"), b"stale").unwrap();
        // this run's own blobs, and a dir that doesn't match the scheme
        let live = base.join(format!("stark-spill-{}-7", std::process::id()));
        fs::create_dir_all(&live).unwrap();
        fs::write(live.join("blob"), b"fresh").unwrap();
        let foreign = base.join("stark-spill-not-a-pid");
        fs::create_dir_all(&foreign).unwrap();

        if Path::new("/proc").is_dir() {
            assert_eq!(sweep_orphan_dirs(&base, "stark-spill-"), 1);
            assert!(!orphan.exists(), "dead run's blobs must be removed");
        } else {
            // without /proc liveness is unknowable: nothing is removed
            assert_eq!(sweep_orphan_dirs(&base, "stark-spill-"), 0);
        }
        assert!(live.join("blob").exists(), "live run's blobs must survive");
        assert!(foreign.exists(), "non-matching names are never touched");
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn invalid_keys_rejected() {
        let s = temp_store("invalid");
        for key in ["", "/abs", "a/../b", "a//b", "."] {
            assert!(
                matches!(s.put_bytes(key, b"x"), Err(StorageError::InvalidKey(_))),
                "key {key:?} should be invalid"
            );
        }
    }

    #[test]
    fn delete_is_idempotent() {
        let s = temp_store("delete");
        s.put_bytes("k", b"v").unwrap();
        s.delete("k").unwrap();
        s.delete("k").unwrap();
        assert!(!s.exists("k"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // reference values from the IEEE 802.3 / zlib crc32
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn keys_sharing_a_stem_do_not_collide_on_staging() {
        // regression: `path.with_extension("tmp-write")` staged both
        // `part.bin` and `part.json` at `part.tmp-write`, so concurrent
        // writers could rename each other's half-written payloads
        let s = temp_store("stem");
        let bin = vec![0xABu8; 4096];
        let json = vec![0xCDu8; 4096];
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| s.put_bytes("part.bin", &bin).unwrap());
                scope.spawn(|| s.put_bytes("part.json", &json).unwrap());
            }
        });
        assert_eq!(s.get_bytes("part.bin").unwrap(), bin);
        assert_eq!(s.get_bytes("part.json").unwrap(), json);
        assert_eq!(s.list("").unwrap(), vec!["part.bin", "part.json"], "no staging leftovers");
    }

    #[test]
    fn concurrent_writers_to_one_key_leave_a_complete_object() {
        let s = temp_store("race");
        std::thread::scope(|scope| {
            for w in 0u8..8 {
                let s = &s;
                scope.spawn(move || {
                    let payload = vec![w; 8192];
                    for _ in 0..8 {
                        s.put_bytes("shared", &payload).unwrap();
                    }
                });
            }
        });
        // whoever renamed last wins, but the object must be one writer's
        // intact payload — never interleaved bytes
        let data = s.get_bytes("shared").unwrap();
        assert_eq!(data.len(), 8192);
        assert!(data.windows(2).all(|w| w[0] == w[1]), "payload mixed from two writers");
    }

    #[test]
    fn bit_flip_surfaces_typed_corruption() {
        let s = temp_store("bitflip");
        let value: Vec<u64> = (0..256).collect();
        s.put_json("checkpoint/part-0", &value).unwrap();
        let path = s.root().join("checkpoint/part-0");
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40; // flip one payload bit
        fs::write(&path, &raw).unwrap();
        match s.get_json::<Vec<u64>>("checkpoint/part-0") {
            Err(StorageError::Corrupt(k)) => assert_eq!(k, "checkpoint/part-0"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_foreign_files_are_corrupt() {
        let s = temp_store("truncated");
        s.put_bytes("k", b"payload").unwrap();
        fs::write(s.root().join("k"), b"STK").unwrap(); // shorter than a header
        assert!(matches!(s.get_bytes("k"), Err(StorageError::Corrupt(_))));
        // a pre-framing (or foreign) file has no magic
        fs::write(s.root().join("legacy"), b"raw bytes from an old store").unwrap();
        assert!(matches!(s.get_bytes("legacy"), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn corrupt_length_header_is_rejected_not_trusted() {
        let s = temp_store("badlen");
        s.put_bytes("k", b"payload").unwrap();
        let path = s.root().join("k");
        let mut raw = fs::read(&path).unwrap();
        // overwrite the declared length with an absurd value — a reader
        // sizing a buffer from it would attempt a multi-GiB allocation
        raw[FRAME_HEADER_LEN..BLOB_HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &raw).unwrap();
        match s.get_bytes("k") {
            Err(StorageError::Corrupt(k)) => assert_eq!(k, "k"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn length_payload_mismatch_is_corrupt() {
        let s = temp_store("lenmismatch");
        s.put_bytes("k", b"payload").unwrap();
        let path = s.root().join("k");
        let mut raw = fs::read(&path).unwrap();
        // a torn write that lost trailing payload bytes but kept a valid
        // header shape must not surface as a short read
        raw.truncate(raw.len() - 2);
        fs::write(&path, &raw).unwrap();
        assert!(matches!(s.get_bytes("k"), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn oversized_writes_are_refused() {
        // the cap itself is too large to exercise with a real buffer in a
        // unit test; the zero-copy declared-length check is what matters
        let s = temp_store("cap");
        let framed_len = |n: usize| n <= MAX_BLOB_LEN;
        assert!(framed_len(1024));
        assert!(!framed_len(MAX_BLOB_LEN + 1));
        // a declared length over the cap with matching tiny payload is
        // still corrupt (declared != actual is checked first)
        let mut raw = Vec::new();
        raw.extend_from_slice(FRAME_MAGIC);
        raw.extend_from_slice(&crc32(b"x").to_le_bytes());
        raw.extend_from_slice(&(MAX_BLOB_LEN as u32 + 1).to_le_bytes());
        raw.push(b'x');
        fs::write(s.root().join("forged"), &raw).unwrap();
        assert!(matches!(s.get_bytes("forged"), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn list_with_prefix() {
        let s = temp_store("list");
        s.put_bytes("idx/part-0", b"a").unwrap();
        s.put_bytes("idx/part-1", b"b").unwrap();
        s.put_bytes("other/x", b"c").unwrap();
        assert_eq!(s.list("idx").unwrap(), vec!["idx/part-0", "idx/part-1"]);
        assert_eq!(s.list("").unwrap().len(), 3);
        assert!(s.list("nothing").unwrap().is_empty());
    }
}
