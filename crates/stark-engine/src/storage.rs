//! A directory-backed object store — the reproduction's stand-in for
//! HDFS (paper Figure 2: raw data and persisted indexes live in HDFS and
//! are re-loaded by later programs).

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors from object-store operations.
#[derive(Debug)]
pub enum StorageError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    InvalidKey(String),
    NotFound(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Serde(e) => write!(f, "storage (de)serialisation error: {e}"),
            StorageError::InvalidKey(k) => write!(f, "invalid object key: {k:?}"),
            StorageError::NotFound(k) => write!(f, "object not found: {k:?}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::Serde(e)
    }
}

/// A flat namespace of named binary objects rooted at a directory.
///
/// Keys may contain `/` to form logical sub-paths (`index/part-0007`),
/// but never `..` or absolute components.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    root: PathBuf,
}

impl ObjectStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StorageError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(ObjectStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, key: &str) -> Result<PathBuf, StorageError> {
        if key.is_empty()
            || key.starts_with('/')
            || key.split('/').any(|c| c.is_empty() || c == "." || c == "..")
        {
            return Err(StorageError::InvalidKey(key.to_string()));
        }
        Ok(self.root.join(key))
    }

    /// Writes `data` under `key`, replacing any previous object.
    pub fn put_bytes(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let path = self.resolve(key)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("tmp-write");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Reads the object stored under `key`.
    pub fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        let path = self.resolve(key)?;
        match fs::read(&path) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Serialises `value` as JSON under `key`.
    pub fn put_json<T: Serialize>(&self, key: &str, value: &T) -> Result<(), StorageError> {
        let data = serde_json::to_vec(value)?;
        self.put_bytes(key, &data)
    }

    /// [`ObjectStore::put_json`] that also reports the serialised size
    /// in bytes — used by checkpointing to account persisted volume.
    /// Accepts unsized values (e.g. a `[T]` partition slice).
    pub fn put_json_sized<T: Serialize + ?Sized>(
        &self,
        key: &str,
        value: &T,
    ) -> Result<u64, StorageError> {
        let data = serde_json::to_vec(value)?;
        self.put_bytes(key, &data)?;
        Ok(data.len() as u64)
    }

    /// Deserialises the JSON object stored under `key`.
    pub fn get_json<T: DeserializeOwned>(&self, key: &str) -> Result<T, StorageError> {
        let data = self.get_bytes(key)?;
        Ok(serde_json::from_slice(&data)?)
    }

    /// Whether an object exists under `key`.
    pub fn exists(&self, key: &str) -> bool {
        self.resolve(key).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Removes the object under `key` (idempotent).
    pub fn delete(&self, key: &str) -> Result<(), StorageError> {
        let path = self.resolve(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists all object keys under the optional `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, StorageError> {
        let mut keys = Vec::new();
        let base = if prefix.is_empty() { self.root.clone() } else { self.resolve(prefix)? };
        if !base.exists() {
            return Ok(keys);
        }
        collect_keys(&self.root, &base, &mut keys)?;
        keys.sort();
        Ok(keys)
    }
}

fn collect_keys(root: &Path, dir: &Path, keys: &mut Vec<String>) -> Result<(), StorageError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_keys(root, &path, keys)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            keys.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ObjectStore {
        let dir =
            std::env::temp_dir().join(format!("stark-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ObjectStore::open(dir).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let s = temp_store("roundtrip");
        s.put_bytes("a/b/c.bin", b"hello").unwrap();
        assert_eq!(&s.get_bytes("a/b/c.bin").unwrap()[..], b"hello");
        assert!(s.exists("a/b/c.bin"));
        assert!(!s.exists("a/b/missing"));
    }

    #[test]
    fn json_roundtrip() {
        let s = temp_store("json");
        let value = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        s.put_json("meta", &value).unwrap();
        let back: Vec<(u32, String)> = s.get_json("meta").unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn overwrite_replaces() {
        let s = temp_store("overwrite");
        s.put_bytes("k", b"one").unwrap();
        s.put_bytes("k", b"two").unwrap();
        assert_eq!(&s.get_bytes("k").unwrap()[..], b"two");
    }

    #[test]
    fn missing_object_is_not_found() {
        let s = temp_store("missing");
        match s.get_bytes("nope") {
            Err(StorageError::NotFound(k)) => assert_eq!(k, "nope"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn invalid_keys_rejected() {
        let s = temp_store("invalid");
        for key in ["", "/abs", "a/../b", "a//b", "."] {
            assert!(
                matches!(s.put_bytes(key, b"x"), Err(StorageError::InvalidKey(_))),
                "key {key:?} should be invalid"
            );
        }
    }

    #[test]
    fn delete_is_idempotent() {
        let s = temp_store("delete");
        s.put_bytes("k", b"v").unwrap();
        s.delete("k").unwrap();
        s.delete("k").unwrap();
        assert!(!s.exists("k"));
    }

    #[test]
    fn list_with_prefix() {
        let s = temp_store("list");
        s.put_bytes("idx/part-0", b"a").unwrap();
        s.put_bytes("idx/part-1", b"b").unwrap();
        s.put_bytes("other/x", b"c").unwrap();
        assert_eq!(s.list("idx").unwrap(), vec!["idx/part-0", "idx/part-1"]);
        assert_eq!(s.list("").unwrap().len(), 3);
        assert!(s.list("nothing").unwrap().is_empty());
    }
}
