//! # stark-engine — in-process partitioned dataflow engine
//!
//! The reproduction's substitute for Apache Spark. STARK's contributions
//! are partition-level algorithmics — spatial partitioning, partition
//! pruning via bounds, per-partition indexing, partition-aligned joins —
//! so this engine reproduces exactly the Spark machinery those rely on:
//!
//! * a lazy DAG of partitioned datasets ([`Rdd`]) with narrow
//!   transformations, hash/custom shuffles ([`Rdd::partition_by`]),
//!   caching and `zipPartitions`;
//! * a zero-copy partition data path: tasks exchange shared
//!   [`Partition`] handles instead of cloned `Vec`s, and chains of
//!   narrow operators fuse into a single per-partition pass (rendered
//!   as `Fused[Map→Filter]` by [`Rdd::explain`]);
//! * a bounded thread-pool executor where worker threads stand in for
//!   cluster nodes (skewed partitions serialise on a worker, just as on
//!   a real cluster);
//! * task metrics ([`MetricsSnapshot`]) including a pruned-partition
//!   counter driven by [`Rdd::with_partition_mask`] and wall-clock
//!   task/job timing;
//! * lineage-based fault tolerance: failed tasks retry with cache
//!   eviction up to [`EngineConfig::max_task_retries`], a seeded
//!   [`FaultInjector`] makes chaos runs deterministic, and
//!   [`Rdd::checkpoint`] truncates lineage to the object store;
//! * straggler defence: cooperative cancellation via a
//!   [`CancellationToken`] chain, job deadlines
//!   ([`EngineConfig::job_deadline`], [`Rdd::collect_with_deadline`])
//!   surfacing typed [`TaskErrorKind::DeadlineExceeded`] errors, and
//!   optional speculative execution ([`EngineConfig::speculation`])
//!   that relaunches straggling tasks and lets the first result win;
//! * memory governance: an optional context-wide byte budget
//!   ([`EngineConfig::memory_budget`]) tracked by a [`MemoryManager`];
//!   under pressure, shuffles spill buckets to the object store, cache
//!   and checkpoint cells evict LRU-first (recomputing from lineage or
//!   re-reading their blob), and output stays byte-identical;
//! * a directory-backed [`ObjectStore`] standing in for HDFS;
//! * a bounded backpressure [`channel`] used by the streaming layer to
//!   feed micro-batches into the engine without unbounded buffering;
//! * supervised multi-process execution: serializable [`plan`]
//!   fragments ship to forked worker processes over an STK1-framed TCP
//!   [`transport`]; a [`WorkerPool`] heartbeats, detects worker loss
//!   (crash, silence, torn frames), reassigns in-flight work to
//!   survivors and respawns seats with jittered backoff, while
//!   [`TransportChaos`] injects deterministic transport faults for
//!   crash-recovery tests;
//! * fault-tolerant remote shuffle: each worker serves its map outputs
//!   over a per-worker [`shuffle`] port (CRC-checked transfers with
//!   bounded timeouts, capped jittered retries and partial-fetch
//!   resume); the driver keeps a map-output registry and, when a
//!   producer dies mid-shuffle, regenerates the lost outputs via
//!   lineage on the survivors at a bumped shuffle epoch
//!   (`WorkerPool::run_shuffle`), with [`FetchChaos`] injecting
//!   deterministic fetch-side faults; `ShuffleMode::SharedStore` keeps
//!   the shared-directory path as a byte-identical fallback.
//!
//! ```
//! use stark_engine::Context;
//!
//! let ctx = Context::with_parallelism(4);
//! let sum = ctx.parallelize((1..=100).collect(), 8)
//!     .filter(|x| x % 2 == 0)
//!     .map(|x| x as i64)
//!     .reduce(|a, b| a + b);
//! assert_eq!(sum, Some(2550));
//! ```

pub mod cancel;
pub mod channel;
pub mod context;
mod executor;
pub mod fault;
pub mod memory;
pub mod metrics;
pub mod partition;
pub mod plan;
pub mod rdd;
pub mod shuffle;
pub mod storage;
pub mod supervisor;
pub mod transport;
pub mod worker;

pub use cancel::{CancelReason, CancelScope, CancellationToken};
pub use context::{Context, EngineConfig};
pub use fault::{
    FaultInjector, FaultPolicy, FaultScope, FetchChaos, FetchChaosState, FetchPolicy,
    TransportChaos, TransportPolicy,
};
pub use memory::{ChildBudget, ChildReservation, MemoryManager, MemoryReservation};
pub use metrics::{Metrics, MetricsSnapshot};
pub use partition::{Partition, PartitionIntoIter};
pub use plan::{
    ExecEnv, OpRegistry, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput, TaskResult,
};
pub use rdd::{abort_invalid_record, Data, Lineage, Rdd, StoreData, TaskError, TaskErrorKind};
pub use shuffle::{FetchConfig, FetchFailure, FetchSource, ShuffleEnv};
pub use storage::{ObjectStore, StorageError};
pub use supervisor::{
    DistTask, PoolError, PoolStats, ShuffleMode, ShuffleSpec, WorkerPool, WorkerPoolConfig,
};
pub use worker::WorkerRuntime;
