//! Resilient-distributed-dataset lookalike: a lazy, partitioned,
//! immutable dataset with narrow transformations, shuffles and actions.
//!
//! The DAG is built from `Arc<dyn RddImpl>` nodes; nothing executes until
//! an action runs partition tasks on the context's thread pool. This is
//! the minimal subset of Spark's RDD model that STARK's operators need:
//! `map`/`filter`/`flatMap`/`mapPartitions`, `partitionBy` (shuffle),
//! `union`, `zipPartitions` for partition-aligned joins, caching, and a
//! partition-mask operator used for spatial partition pruning.
//!
//! Two data-path properties keep the hot loop lean:
//!
//! * **Zero-copy partitions** — `compute` returns a shared
//!   [`Partition<T>`] handle, so sources that retain partition data
//!   across jobs (parallelized collections, caches, shuffle buckets)
//!   serve the same allocation instead of deep-cloning it per access.
//! * **Narrow-operator fusion** — consecutive `map`/`filter`/
//!   `flat_map`/`map_partitions` calls compose into one per-partition
//!   iterator pipeline, so a `load → map → filter → map` lineage makes
//!   one pass with one output allocation instead of one `Vec` per
//!   operator. Fused chains render as `Fused[Map→Filter]` in
//!   [`Rdd::explain`]; set
//!   [`EngineConfig::fusion_enabled`](crate::EngineConfig) to `false`
//!   to fall back to the materialise-per-operator path.

use crate::context::Context;
use crate::executor;
use crate::executor::TaskAbort;
pub use crate::executor::{TaskError, TaskErrorKind};
use crate::memory::{MemoryReservation, VictimState};
use crate::partition::Partition;
use crate::storage::{ObjectStore, StorageError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Bound alias for everything that can live in a dataset.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Bound alias for dataset elements that can also round-trip through the
/// [`ObjectStore`]: shuffled data (which may spill under memory
/// pressure) and checkpointed data. Blanket-implemented, like [`Data`].
pub trait StoreData: Data + Serialize + DeserializeOwned {}
impl<T: Data + Serialize + DeserializeOwned> StoreData for T {}

/// A node in the dataset DAG: how many partitions, and how to compute one.
pub(crate) trait RddImpl<T: Data>: Send + Sync {
    fn num_partitions(&self) -> usize;
    fn compute(&self, partition: usize) -> Partition<T>;
    /// Drops any memoised value for `partition` along the lineage, so
    /// the next [`RddImpl::compute`] recomputes it from scratch. The
    /// executor calls this before retrying a failed task — Spark's
    /// lost-partition recovery, where a poisoned cache entry must not be
    /// served back. Nodes without storage propagate to their parents;
    /// the default is a no-op for true sources.
    fn evict(&self, _partition: usize) {}
}

/// By-value iterator stage inside a fused narrow chain.
type BoxIter<T> = Box<dyn Iterator<Item = T> + Send>;
/// Produces the fused iterator pipeline for one partition.
type IterFn<T> = Arc<dyn Fn(usize) -> BoxIter<T> + Send + Sync>;

/// The fusable suffix of a lineage: a typed per-partition iterator
/// pipeline rooted at the last non-narrow ancestor. Kept alongside the
/// type-erased `inner` node so the next narrow operator can extend the
/// pipeline instead of stacking another materialising node on top.
pub(crate) struct FusedChain<T: Data> {
    num_partitions: usize,
    /// Operator names in application order, e.g. `["Map", "Filter"]`.
    ops: Vec<String>,
    iter_fn: IterFn<T>,
    /// Forwards cache eviction to the (type-erased) base node so a
    /// retried task recomputes through the whole chain.
    evict_fn: EvictFn,
    /// Lineage of the chain's base (the node below the fused suffix).
    base_lineage: Arc<Lineage>,
}

/// Type-erased eviction hook capturing a fused chain's base node.
type EvictFn = Arc<dyn Fn(usize) + Send + Sync>;

impl<T: Data> Clone for FusedChain<T> {
    fn clone(&self) -> Self {
        FusedChain {
            num_partitions: self.num_partitions,
            ops: self.ops.clone(),
            iter_fn: self.iter_fn.clone(),
            evict_fn: self.evict_fn.clone(),
            base_lineage: self.base_lineage.clone(),
        }
    }
}

/// A lazy partitioned dataset. Cheap to clone (clones share the DAG).
#[derive(Clone)]
pub struct Rdd<T: Data> {
    pub(crate) ctx: Context,
    pub(crate) inner: Arc<dyn RddImpl<T>>,
    lineage: Arc<Lineage>,
    /// Present when this node is a chain of fused narrow operators;
    /// `inner` is then the corresponding `FusedRdd`.
    fused: Option<FusedChain<T>>,
}

/// Lineage node describing how a dataset was derived — the engine's
/// equivalent of Spark's `RDD.toDebugString`.
#[derive(Debug)]
pub struct Lineage {
    /// Operator description, e.g. `Shuffle(16)`.
    pub op: String,
    /// Lineage of the input datasets.
    pub parents: Vec<Arc<Lineage>>,
}

impl Lineage {
    fn leaf(op: impl Into<String>) -> Arc<Lineage> {
        Arc::new(Lineage { op: op.into(), parents: Vec::new() })
    }

    fn derived(op: impl Into<String>, parents: Vec<Arc<Lineage>>) -> Arc<Lineage> {
        Arc::new(Lineage { op: op.into(), parents })
    }

    fn render(&self, indent: usize, out: &mut String) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.op);
        out.push('\n');
        for p in &self.parents {
            p.render(indent + 1, out);
        }
    }
}

// ---------------------------------------------------------------------------
// sources
// ---------------------------------------------------------------------------

struct ParallelCollection<T: Data> {
    ctx: Context,
    partitions: Vec<Partition<T>>,
}

impl<T: Data> RddImpl<T> for ParallelCollection<T> {
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        let p = self.partitions[partition].clone();
        self.ctx.raw_metrics().add_clone_bytes_avoided(p.shallow_bytes());
        p
    }
}

// ---------------------------------------------------------------------------
// narrow transformations
// ---------------------------------------------------------------------------

/// A fused chain of narrow operators: one per-partition pass, one
/// output allocation, regardless of how many operators are in the chain.
struct FusedRdd<T: Data> {
    num_partitions: usize,
    iter_fn: IterFn<T>,
    evict_fn: EvictFn,
}

impl<T: Data> RddImpl<T> for FusedRdd<T> {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        Partition::from_vec((self.iter_fn)(partition).collect())
    }
    fn evict(&self, partition: usize) {
        (self.evict_fn)(partition)
    }
}

/// Aborts the current task with a typed, non-retryable
/// [`TaskErrorKind::InvalidRecord`] error: the record is deterministic
/// bad input (e.g. a non-finite centroid reaching a spatial
/// partitioner), so retrying the task would fail identically. The abort
/// unwinds like a panic but is classified by the executor without
/// string matching, and [`Rdd::try_collect`] surfaces it as a typed
/// [`TaskError`].
pub fn abort_invalid_record(message: impl Into<String>) -> ! {
    std::panic::panic_any(TaskAbort { kind: TaskErrorKind::InvalidRecord, message: message.into() })
}

/// Unfused narrow node (one materialised `Vec` per operator), used when
/// fusion is disabled.
struct MapPartitionsRdd<T: Data, U: Data> {
    parent: Arc<dyn RddImpl<T>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, Partition<T>) -> Partition<U> + Send + Sync>,
}

impl<T: Data, U: Data> RddImpl<U> for MapPartitionsRdd<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> Partition<U> {
        (self.f)(partition, self.parent.compute(partition))
    }
    fn evict(&self, partition: usize) {
        self.parent.evict(partition)
    }
}

struct UnionRdd<T: Data> {
    parents: Vec<Arc<dyn RddImpl<T>>>,
}

impl<T: Data> UnionRdd<T> {
    /// Resolves a union partition index to `(parent, local index)`.
    fn resolve(&self, partition: usize) -> Option<(&Arc<dyn RddImpl<T>>, usize)> {
        let mut idx = partition;
        for p in &self.parents {
            if idx < p.num_partitions() {
                return Some((p, idx));
            }
            idx -= p.num_partitions();
        }
        None
    }
}

impl<T: Data> RddImpl<T> for UnionRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        match self.resolve(partition) {
            Some((p, idx)) => p.compute(idx),
            // Typed abort instead of a bare panic: surfaced by
            // `try_run_partitions` as a structural (non-retryable)
            // TaskError rather than unwinding through the caller.
            None => std::panic::panic_any(TaskAbort {
                kind: TaskErrorKind::PartitionOutOfRange,
                message: format!(
                    "partition {partition} out of range for union of {}",
                    self.num_partitions()
                ),
            }),
        }
    }
    fn evict(&self, partition: usize) {
        if let Some((p, idx)) = self.resolve(partition) {
            p.evict(idx);
        }
    }
}

/// Skips computing masked-out partitions entirely; the engine-level hook
/// behind STARK's partition pruning.
struct MaskRdd<T: Data> {
    ctx: Context,
    parent: Arc<dyn RddImpl<T>>,
    mask: Vec<bool>,
}

impl<T: Data> RddImpl<T> for MaskRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        if self.mask[partition] {
            self.parent.compute(partition)
        } else {
            self.ctx.raw_metrics().inc_pruned(1);
            Partition::empty()
        }
    }
    fn evict(&self, partition: usize) {
        self.parent.evict(partition)
    }
}

struct ZipPartitionsRdd<A: Data, B: Data, R: Data> {
    left: Arc<dyn RddImpl<A>>,
    right: Arc<dyn RddImpl<B>>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, Partition<A>, Partition<B>) -> Vec<R> + Send + Sync>,
}

impl<A: Data, B: Data, R: Data> RddImpl<R> for ZipPartitionsRdd<A, B, R> {
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn compute(&self, partition: usize) -> Partition<R> {
        Partition::from_vec((self.f)(
            partition,
            self.left.compute(partition),
            self.right.compute(partition),
        ))
    }
    fn evict(&self, partition: usize) {
        self.left.evict(partition);
        self.right.evict(partition);
    }
}

struct PartitionPairJoinRdd<A: Data, B: Data, R: Data> {
    left: Arc<dyn RddImpl<A>>,
    right: Arc<dyn RddImpl<B>>,
    pairs: Vec<(usize, usize)>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(Partition<A>, Partition<B>) -> Vec<R> + Send + Sync>,
}

impl<A: Data, B: Data, R: Data> RddImpl<R> for PartitionPairJoinRdd<A, B, R> {
    fn num_partitions(&self) -> usize {
        self.pairs.len()
    }
    fn compute(&self, partition: usize) -> Partition<R> {
        let (i, j) = self.pairs[partition];
        Partition::from_vec((self.f)(self.left.compute(i), self.right.compute(j)))
    }
    fn evict(&self, partition: usize) {
        let (i, j) = self.pairs[partition];
        self.left.evict(i);
        self.right.evict(j);
    }
}

// ---------------------------------------------------------------------------
// shuffle and cache
// ---------------------------------------------------------------------------

/// Distinguishes concurrent shuffle materialisations in one process so
/// their spill blobs never collide in the context's spill store.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Spill-store key of one map task's bucket blob.
fn spill_bucket_key(shuffle: u64, task: usize, bucket: usize) -> String {
    format!("spill/shuffle-{shuffle}/task-{task:05}/bucket-{bucket:05}")
}

/// One map task's shuffle output: its buckets, either held in memory
/// under a granted budget reservation or spilled to the spill store.
enum TaskBuckets<T> {
    Mem {
        buckets: Vec<Vec<T>>,
        /// Accounts the buckets until the merge consumes them.
        _reservation: MemoryReservation,
    },
    /// The reservation was refused: the buckets live in the spill store
    /// under [`spill_bucket_key`]`(shuffle, task, b)` for each listed
    /// non-empty bucket index, and are streamed back at merge time.
    Spilled { task: usize, written: Vec<usize> },
}

struct ShuffledRdd<T: Data> {
    ctx: Context,
    parent: Arc<dyn RddImpl<T>>,
    #[allow(clippy::type_complexity)]
    partition_fn: Arc<dyn Fn(&T) -> usize + Send + Sync>,
    num_partitions: usize,
    /// Materialised shuffle output, plus the budget reservation
    /// accounting for it (held for the dataset's lifetime — shuffle
    /// output is served from memory, so under pressure it is the cache
    /// victims that give their bytes back, not the shuffle).
    buckets: OnceLock<(Vec<Partition<T>>, MemoryReservation)>,
}

impl<T: StoreData> ShuffledRdd<T> {
    fn materialize(&self) -> &Vec<Partition<T>> {
        &self
            .buckets
            .get_or_init(|| {
                self.ctx.raw_metrics().inc_shuffles();
                let shuffle = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
                let memory = Arc::clone(self.ctx.memory());
                let per_task: Vec<TaskBuckets<T>> = executor::run_partitions(
                    &self.ctx,
                    &self.parent,
                    |task, data: Partition<T>| {
                        // The buckets hold exactly the input's elements,
                        // so the input's shallow size is their size.
                        let bytes = data.shallow_bytes();
                        let mut buckets: Vec<Vec<T>> =
                            (0..self.num_partitions).map(|_| Vec::new()).collect();
                        for item in data.into_iter_counted(self.ctx.raw_metrics()) {
                            let b = (self.partition_fn)(&item) % self.num_partitions;
                            buckets[b].push(item);
                        }
                        match memory.try_reserve(bytes) {
                            Some(r) => TaskBuckets::Mem { buckets, _reservation: r },
                            None => self.spill_task(shuffle, task, buckets),
                        }
                    },
                );
                let mut merged: Vec<Vec<T>> =
                    (0..self.num_partitions).map(|_| Vec::new()).collect();
                // Merging in task order, bucket order — whether a task's
                // buckets come from memory or the spill store — keeps the
                // output byte-identical to an unbounded run.
                for task_buckets in per_task {
                    match task_buckets {
                        TaskBuckets::Mem { mut buckets, _reservation } => {
                            for (i, b) in buckets.drain(..).enumerate() {
                                merged[i].extend(b);
                            }
                        }
                        TaskBuckets::Spilled { task, written } => {
                            let store = self.ctx.spill_store();
                            for b in written {
                                let key = spill_bucket_key(shuffle, task, b);
                                let data: Vec<T> = store.get_json(&key).unwrap_or_else(|e| {
                                    panic!("spilled shuffle bucket {key:?} unreadable: {e}")
                                });
                                merged[b].extend(data);
                                let _ = store.delete(&key);
                            }
                        }
                    }
                }
                let out: Vec<Partition<T>> = merged.into_iter().map(Partition::from_vec).collect();
                let out_bytes = out.iter().map(Partition::shallow_bytes).sum();
                // Forced: reduce-side output must reside in memory, so
                // under pressure the eviction sweep inside reserve()
                // reclaims cache/checkpoint bytes to make room instead.
                let reservation = memory.reserve(out_bytes);
                (out, reservation)
            })
            .0
    }

    /// Spills one map task's non-empty buckets to the spill store as
    /// STK1-framed blobs, recording the spilled volume.
    fn spill_task(&self, shuffle: u64, task: usize, buckets: Vec<Vec<T>>) -> TaskBuckets<T> {
        let store = self.ctx.spill_store();
        let metrics = self.ctx.raw_metrics();
        let mut written = Vec::new();
        let mut spilled = 0u64;
        for (b, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let key = spill_bucket_key(shuffle, task, b);
            spilled += store
                .put_json_sized(&key, bucket.as_slice())
                .unwrap_or_else(|e| panic!("spilling shuffle bucket {key:?} failed: {e}"));
            written.push(b);
        }
        metrics.add_bytes_spilled(spilled);
        metrics.inc_spill_blobs_written(written.len() as u64);
        TaskBuckets::Spilled { task, written }
    }
}

impl<T: StoreData> RddImpl<T> for ShuffledRdd<T> {
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        let p = self.materialize()[partition].clone();
        self.ctx.raw_metrics().add_clone_bytes_avoided(p.shallow_bytes());
        p
    }
    // evict: intentionally a no-op. Shuffle buckets materialise as a
    // whole stage: the OnceLock either holds a fully successful shuffle
    // output or stays empty (a panicking materialisation leaves it
    // uninitialised), so a poisoned per-partition bucket cannot exist.
}

/// Locks a memo cell, recovering from mutex poisoning: a panic while
/// the lock was held (a failing parent compute) leaves the plain
/// `Option` state consistent — either still empty or holding a fully
/// constructed value — and the retry path evicts/overwrites it.
fn lock_cell<V>(cell: &Mutex<Option<V>>) -> std::sync::MutexGuard<'_, Option<V>> {
    cell.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cache/checkpoint storage cell: the memoised partition together
/// with the budget reservation accounting for it, so *every* path that
/// drops the value — failure eviction, pressure eviction, or the owner
/// being dropped — gives the bytes back exactly once. `Arc` so the
/// memory manager's victim registration can hold a `Weak` reference that
/// outlives nothing.
type StoreCell<T> = Arc<Mutex<Option<(Partition<T>, MemoryReservation)>>>;

/// Registers every cell of a cache/checkpoint dataset as a pressure-
/// eviction victim, returning the shared LRU touch handles. Called once
/// at dataset construction; the hooks use `try_lock`, so a cell whose
/// lock is held by a running task is skipped rather than waited on.
fn register_store_cells<T: Data>(ctx: &Context, cells: &[StoreCell<T>]) -> Vec<Arc<AtomicU64>> {
    cells
        .iter()
        .map(|cell| {
            let weak = Arc::downgrade(cell);
            ctx.memory().register_victim(Box::new(move || {
                let Some(cell) = weak.upgrade() else { return VictimState::Gone };
                let Ok(mut slot) = cell.try_lock() else { return VictimState::Empty };
                match slot.as_ref() {
                    Some((_, r)) if r.bytes() > 0 => {
                        let (_, r) = slot.take().expect("checked Some");
                        VictimState::Evicted(r.bytes()) // dropping `r` releases
                    }
                    _ => VictimState::Empty, // empty, or nothing to reclaim
                }
            }))
        })
        .collect()
}

struct CachedRdd<T: Data> {
    ctx: Context,
    parent: Arc<dyn RddImpl<T>>,
    /// `Mutex<Option<…>>` rather than `OnceLock` so a partition can be
    /// *evicted* — by the executor when a task computing above it fails,
    /// or by the memory manager under pressure: the next access then
    /// recomputes from the parent instead of replaying a possibly
    /// poisoned (or reclaimed) cached value.
    cells: Vec<StoreCell<T>>,
    /// LRU touch handles, one per cell (see [`register_store_cells`]).
    touches: Vec<Arc<AtomicU64>>,
}

impl<T: Data> RddImpl<T> for CachedRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        let mut cell = lock_cell(&self.cells[partition]);
        let p = match cell.as_ref() {
            Some((p, _)) => p.clone(),
            None => {
                let p = self.parent.compute(partition);
                // Cache only under a granted reservation: when the
                // budget cannot absorb the partition even after LRU
                // eviction, serve it uncached — later accesses
                // recompute from the parent, trading time for memory.
                if let Some(r) = self.ctx.memory().try_reserve(p.shallow_bytes()) {
                    *cell = Some((p.clone(), r));
                }
                p
            }
        };
        drop(cell);
        self.ctx.memory().touch(&self.touches[partition]);
        self.ctx.raw_metrics().add_clone_bytes_avoided(p.shallow_bytes());
        p
    }
    fn evict(&self, partition: usize) {
        *lock_cell(&self.cells[partition]) = None;
        self.parent.evict(partition);
    }
}

// ---------------------------------------------------------------------------
// checkpointing
// ---------------------------------------------------------------------------

/// Object-store key of one checkpointed partition blob. Public so the
/// distributed checkpoint sink (`plan::PlanSink::Checkpoint`, executed
/// on a worker) writes blobs at exactly the keys a local
/// [`Rdd::checkpoint`] reader recovers from.
pub fn checkpoint_blob_key(key: &str, partition: usize) -> String {
    format!("{key}/part-{partition:05}")
}

/// A dataset whose partitions were persisted to the object store by
/// [`Rdd::checkpoint`]. Serves partitions from memory; after an eviction
/// (task failure) the partition is *re-read from the store* — lineage
/// was truncated, so recovery goes to stable storage, exactly Spark's
/// `RDD.checkpoint` semantics.
struct CheckpointRdd<T: Data> {
    ctx: Context,
    store: ObjectStore,
    key: String,
    cells: Vec<StoreCell<T>>,
    /// LRU touch handles, one per cell (see [`register_store_cells`]).
    touches: Vec<Arc<AtomicU64>>,
}

impl<T: StoreData> RddImpl<T> for CheckpointRdd<T> {
    fn num_partitions(&self) -> usize {
        self.cells.len()
    }
    fn compute(&self, partition: usize) -> Partition<T> {
        let mut cell = lock_cell(&self.cells[partition]);
        if let Some((p, _)) = cell.as_ref() {
            let p = p.clone();
            drop(cell);
            self.ctx.memory().touch(&self.touches[partition]);
            self.ctx.raw_metrics().add_clone_bytes_avoided(p.shallow_bytes());
            return p;
        }
        // Recovery path: the in-memory copy was evicted (task failure,
        // or memory pressure), so read the persisted blob back.
        let blob = checkpoint_blob_key(&self.key, partition);
        match self.store.get_json::<Vec<T>>(&blob) {
            Ok(data) => {
                let p = Partition::from_vec(data);
                // Re-admit to memory only if the budget allows; an
                // unadmitted partition is simply re-read next time.
                if let Some(r) = self.ctx.memory().try_reserve(p.shallow_bytes()) {
                    *cell = Some((p.clone(), r));
                }
                drop(cell);
                self.ctx.memory().touch(&self.touches[partition]);
                p
            }
            // The lineage was truncated at this checkpoint: with the
            // blob unreadable (deleted, or corrupt per its STK1 CRC)
            // there is nothing to recompute from and a retry would
            // re-read the same bad bytes. Abort with a typed,
            // non-retryable kind instead of a bare panic.
            Err(e) => std::panic::panic_any(TaskAbort {
                kind: TaskErrorKind::CheckpointLost,
                message: format!("checkpoint partition {blob:?} unreadable: {e}"),
            }),
        }
    }
    fn evict(&self, partition: usize) {
        *lock_cell(&self.cells[partition]) = None;
    }
}

// ---------------------------------------------------------------------------
// the public API
// ---------------------------------------------------------------------------

impl<T: Data> Rdd<T> {
    pub(crate) fn from_collection(ctx: Context, data: Vec<T>, num_partitions: usize) -> Self {
        let total = data.len();
        let num_partitions = num_partitions.max(1);
        let chunk = total.div_ceil(num_partitions).max(1);
        let mut partitions: Vec<Partition<T>> = Vec::with_capacity(num_partitions);
        let mut iter = data.into_iter();
        for _ in 0..num_partitions {
            partitions.push(Partition::from_vec(iter.by_ref().take(chunk).collect()));
        }
        let lineage = Lineage::leaf(format!(
            "ParallelCollection[{total} records, {num_partitions} partitions]"
        ));
        Rdd {
            ctx: ctx.clone(),
            inner: Arc::new(ParallelCollection { ctx, partitions }),
            lineage,
            fused: None,
        }
    }

    fn derive<U: Data>(&self, op: impl Into<String>, inner: Arc<dyn RddImpl<U>>) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            inner,
            lineage: Lineage::derived(op, vec![self.lineage.clone()]),
            fused: None,
        }
    }

    /// Appends a narrow per-partition iterator stage. With fusion on,
    /// the stage composes into the current [`FusedChain`] (or starts
    /// one), producing a single `FusedRdd` node that makes one pass per
    /// partition; with fusion off, the stage becomes its own
    /// materialising `MapPartitionsRdd` node.
    fn fuse_stage<U: Data>(
        &self,
        op: &str,
        stage: impl Fn(usize, BoxIter<T>) -> BoxIter<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        if !self.ctx.fusion_enabled() {
            let ctx = self.ctx.clone();
            return self.derive(
                op.to_string(),
                Arc::new(MapPartitionsRdd {
                    parent: self.inner.clone(),
                    f: Arc::new(move |i, data: Partition<T>| {
                        let it = Box::new(crate::cancel::checked(
                            data.into_iter_counted(ctx.raw_metrics()),
                        ));
                        Partition::from_vec(stage(i, it).collect())
                    }),
                }),
            );
        }
        let stage = Arc::new(stage);
        let chain = match &self.fused {
            // extend the existing pipeline — no intermediate Vec
            Some(prev) => {
                let prev_fn = prev.iter_fn.clone();
                let s = stage.clone();
                let mut ops = prev.ops.clone();
                ops.push(op.to_string());
                FusedChain {
                    num_partitions: prev.num_partitions,
                    ops,
                    iter_fn: Arc::new(move |i| s(i, prev_fn(i))),
                    evict_fn: prev.evict_fn.clone(),
                    base_lineage: prev.base_lineage.clone(),
                }
            }
            // start a pipeline rooted at the current node
            None => {
                let base = self.inner.clone();
                let evict_base = self.inner.clone();
                let ctx = self.ctx.clone();
                let s = stage.clone();
                FusedChain {
                    num_partitions: base.num_partitions(),
                    ops: vec![op.to_string()],
                    iter_fn: Arc::new(move |i| {
                        s(
                            i,
                            Box::new(crate::cancel::checked(
                                base.compute(i).into_iter_counted(ctx.raw_metrics()),
                            )),
                        )
                    }),
                    evict_fn: Arc::new(move |i| evict_base.evict(i)),
                    base_lineage: self.lineage.clone(),
                }
            }
        };
        let label = if chain.ops.len() == 1 {
            chain.ops[0].clone()
        } else {
            format!("Fused[{}]", chain.ops.join("→"))
        };
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(FusedRdd {
                num_partitions: chain.num_partitions,
                iter_fn: chain.iter_fn.clone(),
                evict_fn: chain.evict_fn.clone(),
            }),
            lineage: Lineage::derived(label, vec![chain.base_lineage.clone()]),
            fused: Some(chain),
        }
    }

    /// Renders the operator lineage of this dataset, root-first — the
    /// engine's answer to Spark's `toDebugString`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.lineage.render(0, &mut out);
        out
    }

    /// The lineage root of this dataset.
    pub fn lineage(&self) -> &Arc<Lineage> {
        &self.lineage
    }

    /// The context that owns this dataset.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    // -- narrow transformations ------------------------------------------

    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        let f = Arc::new(f);
        self.fuse_stage("Map", move |_, it| {
            let f = f.clone();
            Box::new(it.map(move |t| f(t))) as BoxIter<U>
        })
    }

    /// Keeps elements satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let f = Arc::new(f);
        self.fuse_stage("Filter", move |_, it| {
            let f = f.clone();
            Box::new(it.filter(move |t| f(t))) as BoxIter<T>
        })
    }

    /// Element-wise one-to-many transformation.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(T) -> I + Send + Sync + 'static) -> Rdd<U>
    where
        I: IntoIterator<Item = U> + 'static,
        I::IntoIter: Send,
    {
        let f = Arc::new(f);
        self.fuse_stage("FlatMap", move |_, it| {
            let f = f.clone();
            Box::new(it.flat_map(move |t| f(t))) as BoxIter<U>
        })
    }

    /// Whole-partition transformation. Unlike the element-wise
    /// operators this materialises its input, so it acts as a pipeline
    /// barrier inside a fused chain (the chain itself stays one node).
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.fuse_stage("MapPartitions", move |_, it| {
            Box::new(f(it.collect()).into_iter()) as BoxIter<U>
        })
    }

    /// Whole-partition transformation that also receives the partition id.
    pub fn map_partitions_with_index<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.fuse_stage("MapPartitions", move |i, it| {
            Box::new(f(i, it.collect()).into_iter()) as BoxIter<U>
        })
    }

    /// Whole-partition transformation over shared [`Partition`] handles.
    ///
    /// Unlike [`Rdd::map_partitions`], the closure receives the parent's
    /// `Partition<T>` handle directly — including any columnar sidecar
    /// already cached on it via [`Partition::to_columns`] — and returns
    /// a new handle, so zero-copy consumers (borrow, bitmap-select,
    /// gather) never materialise an intermediate `Vec`. Like
    /// `map_partitions` it acts as a pipeline barrier: it forms its own
    /// node rather than joining a fused chain. `op` becomes the lineage
    /// label.
    pub fn map_partition_handles<U: Data>(
        &self,
        op: impl Into<String>,
        f: impl Fn(usize, Partition<T>) -> Partition<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        self.derive(op, Arc::new(MapPartitionsRdd { parent: self.inner.clone(), f: Arc::new(f) }))
    }

    /// Concatenation of the two datasets' partition lists.
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(UnionRdd { parents: vec![self.inner.clone(), other.inner.clone()] }),
            lineage: Lineage::derived("Union", vec![self.lineage.clone(), other.lineage.clone()]),
            fused: None,
        }
    }

    /// Masks out partitions: a `false` entry makes the corresponding
    /// partition compute to empty *without* touching its parent. The
    /// engine counts each skip in
    /// [`MetricsSnapshot::partitions_pruned`](crate::metrics::MetricsSnapshot).
    pub fn with_partition_mask(&self, mask: Vec<bool>) -> Rdd<T> {
        assert_eq!(mask.len(), self.num_partitions(), "mask length must equal partition count");
        let skipped = mask.iter().filter(|m| !**m).count();
        self.derive(
            format!("PartitionMask[{skipped} of {} pruned]", mask.len()),
            Arc::new(MaskRdd { ctx: self.ctx.clone(), parent: self.inner.clone(), mask }),
        )
    }

    /// Pairs up equal-numbered partitions of two datasets. Panics at
    /// action time if the partition counts differ. The closure receives
    /// shared [`Partition`] handles; borrow (`&data`, `data.iter()`) to
    /// stay zero-copy, or iterate by value to take owned elements.
    pub fn zip_partitions<B: Data, R: Data>(
        &self,
        other: &Rdd<B>,
        f: impl Fn(usize, Partition<T>, Partition<B>) -> Vec<R> + Send + Sync + 'static,
    ) -> Rdd<R> {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions requires equal partition counts"
        );
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(ZipPartitionsRdd {
                left: self.inner.clone(),
                right: other.inner.clone(),
                f: Arc::new(f),
            }),
            lineage: Lineage::derived(
                "ZipPartitions",
                vec![self.lineage.clone(), other.lineage.clone()],
            ),
            fused: None,
        }
    }

    /// Joins selected partition pairs of two datasets: output partition
    /// `p` computes `f(left[pairs[p].0], right[pairs[p].1])`.
    ///
    /// This is the partition-pair join scheme STARK uses for spatial
    /// joins: only pairs whose partition extents can satisfy the join
    /// predicate are listed, and each pair is evaluated exactly once, so
    /// no duplicate elimination is needed. Callers should [`Rdd::cache`]
    /// inputs whose partitions appear in several pairs.
    pub fn join_partition_pairs<B: Data, R: Data>(
        &self,
        other: &Rdd<B>,
        pairs: Vec<(usize, usize)>,
        f: impl Fn(Partition<T>, Partition<B>) -> Vec<R> + Send + Sync + 'static,
    ) -> Rdd<R> {
        let ln = self.num_partitions();
        let rn = other.num_partitions();
        for &(i, j) in &pairs {
            assert!(i < ln && j < rn, "partition pair ({i}, {j}) out of range");
        }
        let n_pairs = pairs.len();
        Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(PartitionPairJoinRdd {
                left: self.inner.clone(),
                right: other.inner.clone(),
                pairs,
                f: Arc::new(f),
            }),
            lineage: Lineage::derived(
                format!("PartitionPairJoin[{n_pairs} pairs of {ln}x{rn}]"),
                vec![self.lineage.clone(), other.lineage.clone()],
            ),
            fused: None,
        }
    }

    // -- shuffle / cache ---------------------------------------------------

    /// Re-distributes every element to the partition chosen by `f`
    /// (modulo `num_partitions`). This is the engine's shuffle; STARK's
    /// spatial partitioners plug in here, mirroring `RDD.partitionBy`.
    ///
    /// Requires [`StoreData`] (serialisable elements) because shuffle
    /// buckets spill to the spill store when the context's
    /// [`EngineConfig::memory_budget`](crate::EngineConfig) cannot hold
    /// them — the same reason Spark shuffle data must be serialisable.
    pub fn partition_by(
        &self,
        num_partitions: usize,
        f: impl Fn(&T) -> usize + Send + Sync + 'static,
    ) -> Rdd<T>
    where
        T: StoreData,
    {
        let num_partitions = num_partitions.max(1);
        self.derive(
            format!("Shuffle[{num_partitions} partitions]"),
            Arc::new(ShuffledRdd {
                ctx: self.ctx.clone(),
                parent: self.inner.clone(),
                partition_fn: Arc::new(f),
                num_partitions,
                buckets: OnceLock::new(),
            }),
        )
    }

    /// Memoises each partition after its first computation. Later
    /// accesses share the cached allocation (an `Arc` bump counted in
    /// [`MetricsSnapshot::clone_bytes_avoided`](crate::MetricsSnapshot))
    /// instead of deep-cloning the partition.
    ///
    /// Under a configured
    /// [`EngineConfig::memory_budget`](crate::EngineConfig), each cached
    /// partition is admitted only if its bytes fit the budget (evicting
    /// least-recently-used cache/checkpoint cells first); a partition
    /// that does not fit is served uncached and recomputed on later
    /// accesses. Pressure evictions are counted in
    /// [`MetricsSnapshot::partitions_evicted_for_pressure`](crate::MetricsSnapshot).
    pub fn cache(&self) -> Rdd<T> {
        let cells: Vec<StoreCell<T>> =
            (0..self.num_partitions()).map(|_| Arc::new(Mutex::new(None))).collect();
        let touches = register_store_cells(&self.ctx, &cells);
        self.derive(
            "Cache",
            Arc::new(CachedRdd {
                ctx: self.ctx.clone(),
                parent: self.inner.clone(),
                cells,
                touches,
            }),
        )
    }

    // -- actions ------------------------------------------------------------

    /// Eagerly computes this dataset and persists every partition to the
    /// object store under `key` (one JSON blob per partition plus a
    /// `manifest`), returning a dataset whose lineage is *truncated* to
    /// the checkpoint. Reads serve from memory; if a later task failure
    /// evicts a partition, recovery re-reads the blob from the store
    /// instead of recomputing the (discarded) upstream lineage —
    /// Spark's `RDD.checkpoint`.
    ///
    /// The serialised volume is recorded in
    /// [`MetricsSnapshot::checkpoint_bytes`](crate::MetricsSnapshot).
    /// Panics if a partition task fails permanently (like
    /// [`Rdd::collect`]); returns `Err` on storage or serialisation
    /// failures.
    pub fn checkpoint(&self, store: &ObjectStore, key: &str) -> Result<Rdd<T>, StorageError>
    where
        T: StoreData,
    {
        let parts = self.run_partitions(|_, data| data);
        let mut total_bytes = 0u64;
        for (i, p) in parts.iter().enumerate() {
            total_bytes += store.put_json_sized(&checkpoint_blob_key(key, i), p.as_slice())?;
        }
        store.put_json(&format!("{key}/manifest"), &(parts.len() as u64))?;
        self.ctx.raw_metrics().add_checkpoint_bytes(total_bytes);
        // Keep each partition in memory only under a granted budget
        // reservation; a declined cell starts empty and is re-read from
        // its (just written) blob on first access — byte-identical.
        let memory = self.ctx.memory();
        let cells: Vec<StoreCell<T>> = parts
            .into_iter()
            .map(|p| {
                let admitted = memory.try_reserve(p.shallow_bytes()).map(|r| (p, r));
                Arc::new(Mutex::new(admitted))
            })
            .collect();
        let touches = register_store_cells(&self.ctx, &cells);
        let lineage = Lineage::leaf(format!(
            "Checkpoint[{key:?}, {} partitions, {total_bytes} bytes]",
            self.num_partitions()
        ));
        Ok(Rdd {
            ctx: self.ctx.clone(),
            inner: Arc::new(CheckpointRdd {
                ctx: self.ctx.clone(),
                store: store.clone(),
                key: key.to_string(),
                cells,
                touches,
            }),
            lineage,
            fused: None,
        })
    }

    /// Runs `f` over every partition in parallel and returns the results
    /// in partition order. The building block for all other actions.
    /// `f` receives a shared [`Partition`] handle: borrow it to stay
    /// zero-copy, or convert with [`Partition::into_vec`] / by-value
    /// iteration when owned elements are needed.
    pub fn run_partitions<R: Send>(
        &self,
        f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
    ) -> Vec<R> {
        self.ctx.raw_metrics().inc_jobs();
        executor::run_partitions(&self.ctx, &self.inner, f)
    }

    /// Fallible variant of [`Rdd::run_partitions`]: a panicking task is
    /// caught and surfaced as a [`TaskError`] naming the failing
    /// partition, instead of unwinding through the caller.
    pub fn try_run_partitions<R: Send>(
        &self,
        f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
    ) -> Result<Vec<R>, TaskError> {
        self.ctx.raw_metrics().inc_jobs();
        executor::try_run_partitions(&self.ctx, &self.inner, f)
    }

    /// Materialises the whole dataset in partition order.
    pub fn collect(&self) -> Vec<T> {
        self.flatten_partitions(self.run_partitions(|_, data| data))
    }

    /// Fallible [`Rdd::collect`]: returns the first [`TaskError`] instead
    /// of panicking when a partition task fails.
    pub fn try_collect(&self) -> Result<Vec<T>, TaskError> {
        Ok(self.flatten_partitions(self.try_run_partitions(|_, data| data)?))
    }

    /// [`Rdd::try_collect`] under an ambient deadline: the job (and any
    /// nested shuffle jobs it spawns) fails with a typed
    /// [`TaskErrorKind::DeadlineExceeded`] error once `deadline` elapses,
    /// observed cooperatively at partition boundaries and between fused
    /// record chunks. No cache entry is poisoned — a later run without a
    /// deadline recomputes whatever the aborted run did not finish.
    pub fn collect_with_deadline(&self, deadline: Duration) -> Result<Vec<T>, TaskError> {
        let _scope = self.ctx.deadline_scope(deadline);
        self.try_collect()
    }

    /// Fallible [`Rdd::count`] under an ambient deadline; see
    /// [`Rdd::collect_with_deadline`].
    pub fn count_with_deadline(&self, deadline: Duration) -> Result<usize, TaskError> {
        let _scope = self.ctx.deadline_scope(deadline);
        Ok(self.try_run_partitions(|_, data| data.len())?.into_iter().sum())
    }

    fn flatten_partitions(&self, mut parts: Vec<Partition<T>>) -> Vec<T> {
        if parts.len() == 1 {
            // single partition: steal the vec outright when unshared
            return parts.pop().expect("len checked").into_vec_counted(self.ctx.raw_metrics());
        }
        let total = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p.into_iter_counted(self.ctx.raw_metrics()));
        }
        out
    }

    /// Materialises the dataset keeping partition boundaries, returning
    /// shared [`Partition`] handles (no per-partition copy).
    pub fn glom(&self) -> Vec<Partition<T>> {
        self.run_partitions(|_, data| data)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.run_partitions(|_, data| data.len()).into_iter().sum()
    }

    /// Number of elements in each partition.
    pub fn count_per_partition(&self) -> Vec<usize> {
        self.run_partitions(|_, data| data.len())
    }

    /// Combines all elements with an associative function; `None` when
    /// the dataset is empty.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync) -> Option<T> {
        self.run_partitions(|_, data| data.into_iter().reduce(&f)).into_iter().flatten().reduce(&f)
    }

    /// Folds each partition from `zero`, then folds the partials.
    pub fn fold<A: Send + Sync + Clone>(
        &self,
        zero: A,
        f: impl Fn(A, T) -> A + Send + Sync,
        combine: impl Fn(A, A) -> A,
    ) -> A {
        self.run_partitions(|_, data| data.into_iter().fold(zero.clone(), &f))
            .into_iter()
            .fold(zero, combine)
    }

    /// At most `n` elements, taken in partition order.
    pub fn take(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        for part in self.glom() {
            for item in part {
                if out.len() == n {
                    return out;
                }
                out.push(item);
            }
        }
        out
    }

    /// The first element, if any.
    pub fn first(&self) -> Option<T> {
        self.take(1).into_iter().next()
    }

    /// Distributed sample-sort: range-partitions the data on a sampled
    /// key distribution, then sorts each partition locally — Spark's
    /// `sortBy` scheme. The result is globally sorted across partition
    /// boundaries (partition *i* ≤ partition *i+1*).
    pub fn sort_by<K: Data + Ord>(
        &self,
        num_partitions: usize,
        key: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Rdd<T>
    where
        T: StoreData,
    {
        let num_partitions = num_partitions.max(1);
        let key = Arc::new(key);

        // 1. Sample keys and derive range splitters.
        let k1 = key.clone();
        let mut sampled: Vec<K> = self.sample(0.1, 0x5eed).map(move |t| k1(&t)).collect();
        if sampled.len() < num_partitions * 4 {
            // tiny inputs: sample everything
            let k2 = key.clone();
            sampled = self.map(move |t| k2(&t)).collect();
        }
        sampled.sort();
        let mut splitters: Vec<K> = Vec::with_capacity(num_partitions.saturating_sub(1));
        for i in 1..num_partitions {
            if sampled.is_empty() {
                break;
            }
            let idx = (i * sampled.len() / num_partitions).min(sampled.len() - 1);
            splitters.push(sampled[idx].clone());
        }
        splitters.dedup();

        // 2. Range shuffle + local sort.
        let k3 = key.clone();
        let shuffled = self.partition_by(splitters.len() + 1, move |t| {
            let k = k3(t);
            splitters.partition_point(|s| *s <= k)
        });
        let k4 = key.clone();
        shuffled.map_partitions(move |mut data| {
            data.sort_by_key(|t| k4(t));
            data
        })
    }

    /// Bernoulli sample: keeps each element independently with
    /// probability `fraction`. Deterministic for a given seed and
    /// partitioning (a splitmix64 stream per partition).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.map_partitions_with_index(move |part, data| {
            let mut state = seed ^ (part as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            data.into_iter()
                .filter(|_| {
                    state = splitmix64(state);
                    // uniform draw in [0, 1)
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                    u < fraction
                })
                .collect()
        })
    }

    /// Pairs every element with a dataset-wide sequential index.
    pub fn zip_with_index(&self) -> Rdd<(u64, T)> {
        let counts = self.count_per_partition();
        let mut offsets = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for c in counts {
            offsets.push(acc);
            acc += c as u64;
        }
        self.map_partitions_with_index(move |i, data| {
            let base = offsets[i];
            data.into_iter().enumerate().map(|(j, t)| (base + j as u64, t)).collect()
        })
    }
}

/// splitmix64 step — a tiny, high-quality PRNG for sampling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<T: StoreData + Hash + Eq> Rdd<T> {
    /// Removes duplicates via a hash shuffle into `num_partitions` buckets.
    pub fn distinct(&self, num_partitions: usize) -> Rdd<T> {
        self.partition_by(num_partitions, |t| {
            use std::hash::Hasher;
            let mut h = std::collections::hash_map::DefaultHasher::new();
            t.hash(&mut h);
            h.finish() as usize
        })
        .map_partitions(|data| {
            let mut seen = std::collections::HashSet::with_capacity(data.len());
            data.into_iter().filter(|t| seen.insert(t.clone())).collect()
        })
    }
}

impl<K: Data + Hash + Eq, V: Data> Rdd<(K, V)> {
    fn hash_of(k: &K) -> usize {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        h.finish() as usize
    }

    /// Hash-partitions by key, mirroring Spark's `HashPartitioner`.
    pub fn partition_by_key(&self, num_partitions: usize) -> Rdd<(K, V)>
    where
        K: StoreData,
        V: StoreData,
    {
        self.partition_by(num_partitions, |(k, _)| Self::hash_of(k))
    }

    /// Groups values by key after a hash shuffle.
    pub fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)>
    where
        K: StoreData,
        V: StoreData,
    {
        self.partition_by_key(num_partitions).map_partitions(|data| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in data {
                groups.entry(k).or_default().push(v);
            }
            groups.into_iter().collect()
        })
    }

    /// Transforms values, keeping keys (and partitioning) intact.
    pub fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> Rdd<(K, U)> {
        self.map(move |(k, v)| (k, f(v)))
    }

    /// Projects the keys.
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    /// Projects the values.
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }

    /// Number of records per key, gathered on the driver.
    pub fn count_by_key(&self) -> HashMap<K, u64>
    where
        K: StoreData,
    {
        self.map_values(|_| 1u64)
            .reduce_by_key(self.num_partitions().max(1), |a, b| a + b)
            .collect()
            .into_iter()
            .collect()
    }

    /// Per-key reduction after a hash shuffle.
    pub fn reduce_by_key(
        &self,
        num_partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)>
    where
        K: StoreData,
        V: StoreData,
    {
        self.partition_by_key(num_partitions).map_partitions(move |data| {
            let mut acc: HashMap<K, V> = HashMap::new();
            for (k, v) in data {
                match acc.remove(&k) {
                    Some(prev) => {
                        acc.insert(k, f(prev, v));
                    }
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            acc.into_iter().collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{Context, EngineConfig};

    fn ctx() -> Context {
        Context::with_parallelism(4)
    }

    fn unfused_ctx() -> Context {
        Context::with_config(EngineConfig {
            parallelism: 4,
            default_partitions: 4,
            fusion_enabled: false,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn map_filter_flatmap() {
        let c = ctx();
        let r = c.parallelize((0..100).collect(), 7);
        assert_eq!(r.map(|x| x * 2).collect(), (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(r.filter(|x| x % 2 == 0).count(), 50);
        assert_eq!(r.flat_map(|x| vec![x, x]).count(), 200);
    }

    #[test]
    fn collect_preserves_partition_order() {
        let c = ctx();
        let data: Vec<i64> = (0..1000).collect();
        let r = c.parallelize(data.clone(), 13);
        assert_eq!(r.collect(), data);
    }

    #[test]
    fn empty_dataset() {
        let c = ctx();
        let r = c.parallelize(Vec::<i32>::new(), 4);
        assert_eq!(r.count(), 0);
        assert_eq!(r.collect(), Vec::<i32>::new());
        assert_eq!(r.reduce(|a, b| a + b), None);
        assert_eq!(r.first(), None);
    }

    #[test]
    fn more_partitions_than_elements() {
        let c = ctx();
        let r = c.parallelize(vec![1, 2, 3], 10);
        assert_eq!(r.num_partitions(), 10);
        assert_eq!(r.count(), 3);
        assert_eq!(r.collect(), vec![1, 2, 3]);
    }

    #[test]
    fn reduce_and_fold() {
        let c = ctx();
        let r = c.parallelize((1..=100).collect(), 9);
        assert_eq!(r.reduce(|a, b| a + b), Some(5050));
        assert_eq!(r.fold(0i64, |a, b| a + b as i64, |a, b| a + b), 5050);
    }

    #[test]
    fn take_and_first() {
        let c = ctx();
        let r = c.parallelize((0..50).collect(), 6);
        assert_eq!(r.take(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.take(0), Vec::<i32>::new());
        assert_eq!(r.take(500).len(), 50);
        assert_eq!(r.first(), Some(0));
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 2);
        let b = c.parallelize(vec![3, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        assert_eq!(u.collect(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn partition_by_routes_elements() {
        let c = ctx();
        let r = c.parallelize((0..100).collect(), 5).partition_by(4, |x| (*x % 4) as usize);
        assert_eq!(r.num_partitions(), 4);
        let parts = r.glom();
        for (i, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), 25);
            assert!(part.iter().all(|x| (*x % 4) as usize == i));
        }
        // shuffle was counted
        assert!(c.metrics().shuffles >= 1);
    }

    #[test]
    fn partition_mask_skips_and_counts() {
        let c = ctx();
        let r = c.parallelize((0..100).collect(), 4);
        let masked = r.with_partition_mask(vec![true, false, true, false]);
        let before = c.metrics();
        let n = masked.count();
        assert_eq!(n, 50);
        let delta = c.metrics().diff(&before);
        assert_eq!(delta.partitions_pruned, 2);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn partition_mask_length_checked() {
        let c = ctx();
        c.parallelize(vec![1], 2).with_partition_mask(vec![true]);
    }

    #[test]
    fn zip_partitions_pairs_up() {
        let c = ctx();
        let a = c.parallelize((0..10).collect(), 2);
        let b = c.parallelize((100..110).collect(), 2);
        let z =
            a.zip_partitions(&b, |_, xs, ys| xs.into_iter().zip(ys).map(|(x, y)| x + y).collect());
        assert_eq!(z.collect(), (0..10).map(|i| 100 + 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn cache_computes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let c = ctx();
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = hits.clone();
        let r = c
            .parallelize((0..10).collect(), 2)
            .map(move |x| {
                hits2.fetch_add(1, Ordering::Relaxed);
                x
            })
            .cache();
        assert_eq!(r.count(), 10);
        assert_eq!(r.count(), 10);
        assert_eq!(r.collect().len(), 10);
        assert_eq!(hits.load(Ordering::Relaxed), 10, "map ran once per element");
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = ctx();
        let r = c.parallelize(vec![1, 2, 2, 3, 3, 3, 4], 3).distinct(4);
        let mut got = r.collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn group_by_key_and_reduce_by_key() {
        let c = ctx();
        let pairs: Vec<(u32, u32)> = (0..30).map(|i| (i % 3, i)).collect();
        let r = c.parallelize(pairs, 5);
        let grouped = r.group_by_key(4);
        let mut sizes: Vec<(u32, usize)> =
            grouped.collect().into_iter().map(|(k, vs)| (k, vs.len())).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![(0, 10), (1, 10), (2, 10)]);

        let mut sums = r.reduce_by_key(4, |a, b| a + b).collect();
        sums.sort_unstable();
        let expect: Vec<(u32, u32)> = vec![
            (0, (0..30).filter(|i| i % 3 == 0).sum()),
            (1, (0..30).filter(|i| i % 3 == 1).sum()),
            (2, (0..30).filter(|i| i % 3 == 2).sum()),
        ];
        assert_eq!(sums, expect);
    }

    #[test]
    fn sort_by_produces_global_order() {
        let c = ctx();
        let data: Vec<i64> = (0..2000).map(|i| (i * 7919) % 4093).collect();
        let sorted = c.parallelize(data.clone(), 7).sort_by(5, |x| *x);
        let collected = sorted.collect();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(collected, expect, "globally sorted across partitions");
        // partitions form non-overlapping ranges
        let glommed = sorted.glom();
        let mut prev_max = i64::MIN;
        for part in glommed.iter().filter(|p| !p.is_empty()) {
            assert!(part.first().unwrap() >= &prev_max);
            prev_max = *part.last().unwrap();
        }
    }

    #[test]
    fn sort_by_handles_duplicates_and_tiny_inputs() {
        let c = ctx();
        let sorted = c.parallelize(vec![5, 5, 5, 1, 1], 3).sort_by(4, |x| *x);
        assert_eq!(sorted.collect(), vec![1, 1, 5, 5, 5]);
        let empty: Vec<i32> = Vec::new();
        assert_eq!(c.parallelize(empty, 2).sort_by(3, |x| *x).count(), 0);
    }

    #[test]
    fn sort_by_key_projection() {
        let c = ctx();
        let pairs: Vec<(String, u32)> =
            vec![("b".into(), 2), ("a".into(), 1), ("c".into(), 3), ("a".into(), 0)];
        let sorted = c.parallelize(pairs, 2).sort_by(2, |(k, _)| k.clone());
        let keys: Vec<String> = sorted.collect().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "a", "b", "c"]);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let c = ctx();
        let r = c.parallelize((0..10_000).collect(), 8);
        let a = r.sample(0.3, 42).collect();
        let b = r.sample(0.3, 42).collect();
        assert_eq!(a, b, "same seed, same sample");
        let n = a.len() as f64;
        assert!((n - 3000.0).abs() < 300.0, "got {n} of ~3000");
        let other = r.sample(0.3, 43).collect();
        assert_ne!(a, other, "different seed, different sample");
        assert_eq!(r.sample(0.0, 1).count(), 0);
        assert_eq!(r.sample(1.0, 1).count(), 10_000);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn sample_validates_fraction() {
        let c = ctx();
        c.parallelize(vec![1], 1).sample(1.5, 0);
    }

    #[test]
    fn explain_renders_lineage() {
        let c = ctx();
        let r = c
            .parallelize((0..100).collect(), 4)
            .filter(|x| x % 2 == 0)
            .map(|x| x * 2)
            .partition_by(3, |x| *x as usize)
            .cache();
        let plan = r.explain();
        let lines: Vec<&str> = plan.lines().collect();
        assert_eq!(lines[0], "Cache");
        assert!(lines[1].trim_start().starts_with("Shuffle[3"));
        assert_eq!(lines[2].trim_start(), "Fused[Filter→Map]");
        assert!(lines[3].trim_start().starts_with("ParallelCollection[100"));
    }

    #[test]
    fn fused_chain_renders_single_node() {
        let c = ctx();
        // a single narrow op keeps its plain name
        let single = c.parallelize((0..10).collect(), 2).map(|x| x + 1);
        assert!(single.explain().starts_with("Map\n"), "{}", single.explain());
        // two or more fuse into one node
        let fused = single.filter(|x| x % 2 == 0).flat_map(|x| vec![x]);
        assert!(fused.explain().starts_with("Fused[Map→Filter→FlatMap]\n"), "{}", fused.explain());
        assert_eq!(fused.collect(), vec![2, 4, 6, 8, 10]);
        // a shuffle breaks the chain; later narrow ops start a new one
        let after = fused.partition_by(2, |x| *x as usize).map(|x| x).filter(|_| true);
        assert!(after.explain().starts_with("Fused[Map→Filter]\n"), "{}", after.explain());
    }

    #[test]
    fn fused_chain_with_partition_barrier() {
        let c = ctx();
        let r = c
            .parallelize((0..100).collect(), 5)
            .map(|x| x + 1)
            .map_partitions(|mut v| {
                v.sort_unstable();
                v
            })
            .filter(|x| x % 2 == 0);
        assert!(r.explain().starts_with("Fused[Map→MapPartitions→Filter]"), "{}", r.explain());
        assert_eq!(r.count(), 50);
    }

    #[test]
    fn fusion_on_and_off_agree() {
        let expect: Vec<i32> =
            (0..500).map(|x| x + 1).filter(|x| x % 3 == 0).flat_map(|x| [x, -x]).collect();
        for c in [ctx(), unfused_ctx()] {
            let r = c
                .parallelize((0..500).collect(), 7)
                .map(|x| x + 1)
                .filter(|x| x % 3 == 0)
                .flat_map(|x| [x, -x]);
            assert_eq!(r.collect(), expect, "fusion_enabled={}", c.fusion_enabled());
            assert_eq!(r.num_partitions(), 7);
        }
    }

    #[test]
    fn fusion_disabled_materialises_each_operator() {
        let c = unfused_ctx();
        let r = c.parallelize((0..100).collect(), 4).filter(|x| x % 2 == 0).map(|x| x * 3);
        let plan = r.explain();
        let lines: Vec<&str> = plan.lines().collect();
        assert_eq!(lines[0], "Map");
        assert_eq!(lines[1].trim_start(), "Filter");
        assert!(lines[2].trim_start().starts_with("ParallelCollection[100"));
        let expect: Vec<i32> = (0..100).filter(|x| x % 2 == 0).map(|x| x * 3).collect();
        assert_eq!(r.collect(), expect);
    }

    #[test]
    fn cache_rereads_share_instead_of_cloning() {
        let c = ctx();
        let r = c.parallelize((0..1000).collect::<Vec<i64>>(), 4).map(|x| x * 2).cache();
        assert_eq!(r.count(), 1000); // populate the cache
        let before = c.metrics();
        assert_eq!(r.count(), 1000);
        assert_eq!(r.count(), 1000);
        let delta = c.metrics().diff(&before);
        assert_eq!(delta.records_cloned, 0, "cache re-reads must not deep-clone");
        let shallow = 1000 * std::mem::size_of::<i64>() as u64;
        assert!(
            delta.clone_bytes_avoided >= 2 * shallow,
            "two re-reads should share ≥ {} bytes, shared {}",
            2 * shallow,
            delta.clone_bytes_avoided
        );
    }

    #[test]
    fn collect_counts_forced_clones_from_shared_storage() {
        let c = ctx();
        let r = c.parallelize((0..100).collect::<Vec<i32>>(), 4).cache();
        r.count(); // populate
        let before = c.metrics();
        assert_eq!(r.collect().len(), 100);
        let delta = c.metrics().diff(&before);
        // collect must hand out owned elements while the cache retains
        // the partitions, so the deep clone is real — and counted.
        assert_eq!(delta.records_cloned, 100);
    }

    #[test]
    fn explain_shows_both_join_parents() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3], 1);
        let u = a.union(&b);
        let plan = u.explain();
        assert!(plan.starts_with("Union"));
        assert_eq!(plan.matches("ParallelCollection").count(), 2);

        let j = a.join_partition_pairs(&b, vec![(0, 0)], |x, _y: crate::Partition<i32>| x.to_vec());
        assert!(j.explain().starts_with("PartitionPairJoin[1 pairs"));
    }

    #[test]
    fn explain_reports_pruned_mask() {
        let c = ctx();
        let r =
            c.parallelize((0..8).collect(), 4).with_partition_mask(vec![true, false, false, true]);
        assert!(r.explain().starts_with("PartitionMask[2 of 4 pruned]"), "{}", r.explain());
    }

    #[test]
    fn pair_conveniences() {
        let c = ctx();
        let pairs: Vec<(u32, u32)> = (0..20).map(|i| (i % 4, i)).collect();
        let r = c.parallelize(pairs, 3);
        assert_eq!(r.keys().count(), 20);
        assert_eq!(r.values().collect(), (0..20).collect::<Vec<u32>>());
        let doubled = r.map_values(|v| v * 2);
        assert_eq!(doubled.collect()[3], (3, 6));
        let counts = r.count_by_key();
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|&c| c == 5));
    }

    #[test]
    fn zip_with_index_is_sequential() {
        let c = ctx();
        let r = c.parallelize((100..200).collect(), 7).zip_with_index();
        let collected = r.collect();
        for (expected_idx, (idx, val)) in collected.iter().enumerate() {
            assert_eq!(*idx, expected_idx as u64);
            assert_eq!(*val, 100 + expected_idx as i32);
        }
    }

    #[test]
    fn chained_pipeline() {
        let c = ctx();
        let result = c
            .parallelize((0..1000).collect(), 8)
            .filter(|x| x % 3 == 0)
            .map(|x| x * 2)
            .partition_by(4, |x| (*x as usize) / 500)
            .map(|x| x + 1)
            .count();
        assert_eq!(result, 334);
    }

    #[test]
    fn join_partition_pairs_evaluates_selected_pairs() {
        let c = ctx();
        let left = c.parallelize(vec![1, 2, 3, 4], 2).cache(); // [1,2] [3,4]
        let right = c.parallelize(vec![10, 20], 2).cache(); // [10] [20]
        let joined = left.join_partition_pairs(&right, vec![(0, 0), (1, 1)], |xs, ys| {
            xs.into_iter().flat_map(|x| ys.iter().map(move |y| x + y)).collect()
        });
        assert_eq!(joined.num_partitions(), 2);
        assert_eq!(joined.collect(), vec![11, 12, 23, 24]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn join_partition_pairs_validates_ranges() {
        let c = ctx();
        let left = c.parallelize(vec![1], 1);
        let right = c.parallelize(vec![2], 1);
        left.join_partition_pairs(&right, vec![(0, 5)], |a, _b: crate::Partition<i32>| a.to_vec());
    }

    #[test]
    fn metrics_count_tasks_and_records() {
        let c = ctx();
        let before = c.metrics();
        let r = c.parallelize((0..100).collect(), 4);
        r.count();
        let delta = c.metrics().diff(&before);
        assert_eq!(delta.tasks_launched, 4);
        assert_eq!(delta.records_read, 100);
        assert_eq!(delta.jobs, 1);
    }

    // -- fault tolerance ---------------------------------------------------

    use super::{Data, Partition, Rdd, RddImpl, TaskErrorKind};
    use crate::storage::ObjectStore;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn temp_store(tag: &str) -> ObjectStore {
        let dir = std::env::temp_dir().join(format!("stark-rdd-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ObjectStore::open(dir).unwrap()
    }

    #[test]
    fn union_out_of_range_is_typed_task_error() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 2);
        let b = c.parallelize(vec![3], 1);
        let u = a.union(&b);

        // A wrapper that over-reports the partition count drives the
        // union's compute past its range — before the fix this was a
        // bare `panic!` with no classification.
        struct Oversized<T: Data>(Arc<dyn RddImpl<T>>);
        impl<T: Data> RddImpl<T> for Oversized<T> {
            fn num_partitions(&self) -> usize {
                self.0.num_partitions() + 1
            }
            fn compute(&self, partition: usize) -> Partition<T> {
                self.0.compute(partition)
            }
        }
        let bad = Rdd {
            ctx: c.clone(),
            inner: Arc::new(Oversized(u.inner.clone())),
            lineage: u.lineage().clone(),
            fused: None,
        };
        let before = c.metrics();
        let err = bad.try_run_partitions(|_, d| d.len()).unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::PartitionOutOfRange);
        assert_eq!(err.partition, 3);
        assert_eq!(err.attempts, 1, "structural errors must not be retried");
        assert!(err.message.contains("out of range"), "{}", err.message);
        let delta = c.metrics().diff(&before);
        assert_eq!(delta.tasks_retried, 0);
        assert_eq!(delta.tasks_failed_permanently, 1);
    }

    #[test]
    fn retry_evicts_cache_and_recomputes_from_lineage() {
        let c = ctx();
        let parent_runs = Arc::new(AtomicUsize::new(0));
        let pr = parent_runs.clone();
        let cached = c
            .parallelize((0..8).collect::<Vec<i32>>(), 4)
            .map(move |x| {
                pr.fetch_add(1, Ordering::SeqCst);
                x
            })
            .cache();
        assert_eq!(cached.count(), 8);
        assert_eq!(parent_runs.load(Ordering::SeqCst), 8);

        // a downstream task fails once; its retry must not replay the
        // cached value but recompute partition 0 (2 records) upstream
        let fails = Arc::new(AtomicUsize::new(0));
        let f2 = fails.clone();
        let downstream = cached.map(move |x| {
            if x == 0 && f2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient poison");
            }
            x
        });
        let before = c.metrics();
        assert_eq!(downstream.collect(), (0..8).collect::<Vec<_>>());
        assert_eq!(parent_runs.load(Ordering::SeqCst), 10, "cache cell 0 was evicted");
        let delta = c.metrics().diff(&before);
        assert_eq!(delta.tasks_retried, 1);
        assert_eq!(delta.partitions_recomputed, 1);
    }

    #[test]
    fn checkpoint_roundtrips_and_truncates_lineage() {
        let c = ctx();
        let store = temp_store("roundtrip");
        let r = c.parallelize((0..100).collect::<Vec<i64>>(), 4).map(|x| x * 2);
        let cp = r.checkpoint(&store, "ck/double").unwrap();
        assert_eq!(cp.num_partitions(), 4);
        assert_eq!(cp.collect(), r.collect());
        // lineage is truncated to the checkpoint leaf
        let plan = cp.explain();
        assert!(plan.starts_with("Checkpoint["), "{plan}");
        assert_eq!(plan.lines().count(), 1, "{plan}");
        // partitions persisted as addressable blobs
        assert!(store.exists("ck/double/part-00000"));
        assert!(store.exists("ck/double/part-00003"));
        assert!(store.exists("ck/double/manifest"));
        assert!(c.metrics().checkpoint_bytes > 0);
    }

    #[test]
    fn checkpoint_recovery_rereads_blob_after_failure() {
        use crate::fault::{FaultInjector, FaultPolicy, FaultScope};
        let chaos =
            Arc::new(FaultInjector::new(3, FaultScope::Partition(1), FaultPolicy::Transient));
        let c = Context::with_config(EngineConfig {
            parallelism: 2,
            default_partitions: 2,
            fault_injector: Some(chaos.clone()),
            ..EngineConfig::default()
        });
        let store = temp_store("recover");
        // the checkpoint job itself absorbs a fault on partition 1
        let cp =
            c.parallelize((0..40).collect::<Vec<i32>>(), 4).checkpoint(&store, "ck/rec").unwrap();
        // every later sweep faults partition 1 again: the failed attempt
        // evicts the in-memory cell, so the retry re-reads the blob
        assert_eq!(cp.collect(), (0..40).collect::<Vec<_>>());
        assert!(chaos.injected() >= 2);

        // proof the recovery path really goes to the store: destroy the
        // blob and the post-failure attempt becomes a permanent, typed,
        // non-retryable CheckpointLost error
        store.delete("ck/rec/part-00001").unwrap();
        cp.inner.evict(1);
        let err = cp.try_run_partitions(|_, d| d.len()).unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.kind, TaskErrorKind::CheckpointLost);
        // the transient injector burns one attempt first; the lost
        // checkpoint itself must not be retried past that
        assert!(err.attempts <= 2, "CheckpointLost retried: {} attempts", err.attempts);
        assert!(err.message.contains("unreadable"), "{}", err.message);
    }

    #[test]
    fn bit_flipped_checkpoint_fails_typed_and_siblings_complete() {
        let c = ctx();
        let store = temp_store("bitflip");
        let cp =
            c.parallelize((0..40).collect::<Vec<i64>>(), 4).checkpoint(&store, "ck/flip").unwrap();

        // flip one payload bit of partition 2's blob on disk
        let path = store.root().join("ck/flip/part-00002");
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();

        // force the recovery path: the in-memory cell is gone, so the
        // next access re-reads the (now corrupt) blob
        cp.inner.evict(2);
        let err = cp.try_collect().unwrap_err();
        assert_eq!(err.partition, 2);
        assert_eq!(err.kind, TaskErrorKind::CheckpointLost);
        assert_eq!(err.attempts, 1, "corruption is deterministic; retrying is pointless");
        assert_eq!(c.metrics().tasks_retried, 0);

        // sibling partitions are unaffected: masking out the lost one
        // completes and returns exactly their records
        let healthy = cp.with_partition_mask(vec![true, true, false, true]).collect();
        let expected: Vec<i64> = (0..40).filter(|x| !(20..30).contains(x)).collect();
        assert_eq!(healthy, expected);
    }

    #[test]
    fn tight_budget_spills_shuffle_and_output_is_identical() {
        let data: Vec<u64> = (0..4096).collect();
        let unbounded = ctx();
        let baseline =
            unbounded.parallelize(data.clone(), 8).partition_by(8, |x| (*x % 8) as usize);
        let expected = baseline.collect();
        let peak = unbounded.metrics().bytes_reserved_peak;
        assert!(peak > 0, "unbounded runs still account the peak");

        // ~25% of the unbounded peak: map tasks cannot all hold their
        // buckets in memory, so some spill to the store and stream back
        let tight = Context::with_config(EngineConfig {
            parallelism: 4,
            default_partitions: 8,
            memory_budget: Some((peak / 4).max(1)),
            ..EngineConfig::default()
        });
        let shuffled = tight.parallelize(data, 8).partition_by(8, |x| (*x % 8) as usize);
        assert_eq!(shuffled.collect(), expected, "spilling must not change the output");
        let m = tight.metrics();
        assert!(m.bytes_spilled > 0, "tight budget must spill: {m:?}");
        assert!(m.spill_blobs_written > 0);
        // blobs are deleted as they are merged back
        assert_eq!(tight.spill_store().list("spill").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn budget_pressure_evicts_lru_cache_and_recomputes_identically() {
        let data: Vec<u64> = (0..2048).collect();
        let expected: Vec<u64> = data.iter().map(|x| x * 3).collect();

        // budget holds only a fraction of the cached dataset: populating
        // later cells evicts earlier (least-recently-touched) ones
        let c = Context::with_config(EngineConfig {
            parallelism: 2,
            default_partitions: 8,
            memory_budget: Some(2048 * 8 / 4),
            ..EngineConfig::default()
        });
        let cached = c.parallelize(data, 8).map(|x| x * 3).cache();
        assert_eq!(cached.collect(), expected);
        let m = c.metrics();
        assert!(
            m.partitions_evicted_for_pressure > 0,
            "cache cannot fit the budget without evictions: {m:?}"
        );
        // evicted partitions recompute from lineage, byte-identical
        assert_eq!(cached.collect(), expected);
        assert_eq!(cached.collect(), expected);
    }

    #[test]
    fn checkpoint_cells_evicted_for_pressure_reread_their_blob() {
        let store = temp_store("pressure");
        let c = Context::with_config(EngineConfig {
            parallelism: 2,
            default_partitions: 4,
            // holds about one of the four checkpointed partitions
            memory_budget: Some(1024 * 8 / 3),
            ..EngineConfig::default()
        });
        let data: Vec<u64> = (0..1024).collect();
        let cp = c.parallelize(data.clone(), 4).checkpoint(&store, "ck/tight").unwrap();
        // most cells were declined or evicted at populate time; every
        // access still serves the full dataset from the store
        assert_eq!(cp.collect(), data);
        assert_eq!(cp.collect(), data);
        let reserved = c.memory().reserved();
        assert!(
            reserved <= 1024 * 8 / 3,
            "admitted checkpoint bytes must fit the budget, got {reserved}"
        );
    }

    #[test]
    fn unbounded_context_never_spills_or_evicts() {
        let c = ctx();
        let r = c
            .parallelize((0..1024).collect::<Vec<u64>>(), 8)
            .map(|x| x + 1)
            .cache()
            .partition_by(4, |x| (*x % 4) as usize);
        assert_eq!(r.count(), 1024);
        let m = c.metrics();
        assert_eq!(m.bytes_spilled, 0);
        assert_eq!(m.spill_blobs_written, 0);
        assert_eq!(m.partitions_evicted_for_pressure, 0);
        assert!(m.bytes_reserved_peak > 0, "accounting still runs unbounded");
    }
}
