//! Engine instrumentation.
//!
//! Spark exposes task- and stage-level metrics through its UI; this engine
//! exposes the counters the STARK evaluation cares about — most notably
//! how many partition tasks ran and how many were pruned away by spatial
//! partition bounds (paper §2.1: pruned partitions "decrease the number of
//! data items to process significantly").

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared by every job run on a [`crate::Context`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// Partition tasks actually executed.
    pub tasks_launched: AtomicU64,
    /// Records materialised out of partition computations.
    pub records_read: AtomicU64,
    /// Partition tasks skipped by predicate-driven pruning.
    pub partitions_pruned: AtomicU64,
    /// Shuffles (full re-partitioning passes) performed.
    pub shuffles: AtomicU64,
    /// Actions (jobs) started.
    pub jobs: AtomicU64,
    /// Cumulative wall-clock time spent inside partition tasks, in
    /// nanoseconds (summed across workers, so it can exceed elapsed time).
    pub task_nanos: AtomicU64,
    /// Cumulative wall-clock time of whole job runs (partition sweeps),
    /// in nanoseconds. Only top-level jobs accumulate here: a shuffle
    /// materialising inside a running job is covered by the enclosing
    /// job's interval and would otherwise be double-counted.
    pub job_nanos: AtomicU64,
    /// Records deep-cloned out of shared partition storage because a
    /// consumer needed owned elements (the clone the zero-copy
    /// [`Partition`](crate::Partition) data path could not avoid).
    pub records_cloned: AtomicU64,
    /// Shallow payload bytes served by Arc-sharing a partition handle
    /// (caches, shuffle buckets, parallelized sources) instead of
    /// deep-cloning the partition on access.
    pub clone_bytes_avoided: AtomicU64,
    /// Task attempts that failed and were retried (each retry of each
    /// task counts once).
    pub tasks_retried: AtomicU64,
    /// Tasks that exhausted their retry budget (or hit a non-retryable
    /// error) and surfaced a permanent [`TaskError`](crate::TaskError).
    pub tasks_failed_permanently: AtomicU64,
    /// Partitions recomputed from lineage (or re-read from a
    /// checkpoint) on a post-failure attempt.
    pub partitions_recomputed: AtomicU64,
    /// Serialised bytes written by [`Rdd::checkpoint`](crate::Rdd).
    pub checkpoint_bytes: AtomicU64,
    /// Speculative duplicate attempts launched for straggling tasks.
    pub tasks_speculated: AtomicU64,
    /// Speculative duplicates that finished before the original attempt
    /// and supplied the partition's result.
    pub speculative_wins: AtomicU64,
    /// Task attempts that observed cooperative cancellation (explicit
    /// cancel, lost speculation race, or a passed deadline) and aborted.
    pub tasks_cancelled: AtomicU64,
    /// Top-level jobs that failed with
    /// [`TaskErrorKind::DeadlineExceeded`](crate::TaskErrorKind).
    pub deadline_exceeded_jobs: AtomicU64,
    /// High-water mark of accounted bytes reserved from the context's
    /// [`MemoryManager`](crate::MemoryManager) — a peak gauge, not a
    /// monotone counter.
    pub bytes_reserved_peak: AtomicU64,
    /// Serialised bytes written to the spill store by shuffle tasks
    /// whose reservation did not fit the memory budget.
    pub bytes_spilled: AtomicU64,
    /// Spill blobs (one per non-empty shuffle bucket) written.
    pub spill_blobs_written: AtomicU64,
    /// Cache/checkpoint cells evicted by memory pressure (budget
    /// eviction, not task-failure eviction).
    pub partitions_evicted_for_pressure: AtomicU64,
    /// Columnar sidecars built from row partitions (one per
    /// [`Partition::to_columns`](crate::Partition) builder run — cache
    /// hits on an already-built sidecar do not count).
    pub columnar_batches_built: AtomicU64,
    /// Rows evaluated by columnar predicate kernels (each surviving row
    /// counts once per kernel pass, mirroring `records_read` for the
    /// row path).
    pub rows_scanned_columnar: AtomicU64,
    /// Worker processes forked by a [`WorkerPool`](crate::WorkerPool)
    /// (initial spawns and respawns both count).
    pub workers_spawned: AtomicU64,
    /// Workers declared lost (crash, heartbeat silence, torn frame or a
    /// blown task deadline).
    pub workers_lost: AtomicU64,
    /// Lost worker seats successfully brought back.
    pub workers_respawned: AtomicU64,
    /// In-flight tasks reassigned away from a lost worker.
    pub tasks_reassigned: AtomicU64,
    /// Plan-fragment tasks dispatched to worker processes.
    pub remote_tasks: AtomicU64,
    /// Row-payload bytes shipped driver → workers.
    pub remote_bytes_tx: AtomicU64,
    /// Row-payload bytes received workers → driver.
    pub remote_bytes_rx: AtomicU64,
    /// Remote-shuffle fetch attempts re-tried after a transient failure
    /// (refused connection, torn transfer, checksum mismatch, timeout).
    pub fetch_retries: AtomicU64,
    /// Remote-shuffle fetches that exhausted their retry budget or were
    /// rejected as stale — each triggers lost-output recovery.
    pub fetch_failures: AtomicU64,
    /// Registered map outputs invalidated because their producing worker
    /// died (or their registry entry went stale).
    pub map_outputs_lost: AtomicU64,
    /// Map outputs re-produced via lineage at a bumped shuffle epoch.
    /// Recovery is exact when this equals `map_outputs_lost`.
    pub map_outputs_regenerated: AtomicU64,
    /// Bucket payload bytes reducers fetched over peer shuffle ports
    /// (the remote-shuffle analogue of shared-store bucket reads).
    pub shuffle_bytes_fetched_remote: AtomicU64,
}

impl Metrics {
    pub fn inc_tasks(&self, n: u64) {
        self.tasks_launched.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_records(&self, n: u64) {
        self.records_read.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_pruned(&self, n: u64) {
        self.partitions_pruned.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_shuffles(&self) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_jobs(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_task_nanos(&self, n: u64) {
        self.task_nanos.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_job_nanos(&self, n: u64) {
        self.job_nanos.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_records_cloned(&self, n: u64) {
        self.records_cloned.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_clone_bytes_avoided(&self, n: u64) {
        self.clone_bytes_avoided.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_tasks_retried(&self, n: u64) {
        self.tasks_retried.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_tasks_failed_permanently(&self, n: u64) {
        self.tasks_failed_permanently.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_partitions_recomputed(&self, n: u64) {
        self.partitions_recomputed.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_checkpoint_bytes(&self, n: u64) {
        self.checkpoint_bytes.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_tasks_speculated(&self, n: u64) {
        self.tasks_speculated.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_speculative_wins(&self, n: u64) {
        self.speculative_wins.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_tasks_cancelled(&self, n: u64) {
        self.tasks_cancelled.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_deadline_exceeded_jobs(&self, n: u64) {
        self.deadline_exceeded_jobs.fetch_add(n, Ordering::Relaxed);
    }
    /// Raises the reserved-bytes high-water mark to at least `n`.
    pub fn record_bytes_reserved_peak(&self, n: u64) {
        self.bytes_reserved_peak.fetch_max(n, Ordering::Relaxed);
    }
    pub fn add_bytes_spilled(&self, n: u64) {
        self.bytes_spilled.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_spill_blobs_written(&self, n: u64) {
        self.spill_blobs_written.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_partitions_evicted_for_pressure(&self, n: u64) {
        self.partitions_evicted_for_pressure.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_columnar_batches_built(&self, n: u64) {
        self.columnar_batches_built.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_rows_scanned_columnar(&self, n: u64) {
        self.rows_scanned_columnar.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_workers_spawned(&self) {
        self.workers_spawned.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_workers_lost(&self) {
        self.workers_lost.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_workers_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_tasks_reassigned(&self) {
        self.tasks_reassigned.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_remote_tasks(&self) {
        self.remote_tasks.fetch_add(1, Ordering::Relaxed);
    }
    pub fn add_remote_bytes_tx(&self, n: u64) {
        self.remote_bytes_tx.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_remote_bytes_rx(&self, n: u64) {
        self.remote_bytes_rx.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_fetch_retries(&self, n: u64) {
        self.fetch_retries.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_fetch_failures(&self, n: u64) {
        self.fetch_failures.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_map_outputs_lost(&self, n: u64) {
        self.map_outputs_lost.fetch_add(n, Ordering::Relaxed);
    }
    pub fn inc_map_outputs_regenerated(&self, n: u64) {
        self.map_outputs_regenerated.fetch_add(n, Ordering::Relaxed);
    }
    pub fn add_shuffle_bytes_fetched_remote(&self, n: u64) {
        self.shuffle_bytes_fetched_remote.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: self.tasks_launched.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            partitions_pruned: self.partitions_pruned.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            task_nanos: self.task_nanos.load(Ordering::Relaxed),
            job_nanos: self.job_nanos.load(Ordering::Relaxed),
            records_cloned: self.records_cloned.load(Ordering::Relaxed),
            clone_bytes_avoided: self.clone_bytes_avoided.load(Ordering::Relaxed),
            tasks_retried: self.tasks_retried.load(Ordering::Relaxed),
            tasks_failed_permanently: self.tasks_failed_permanently.load(Ordering::Relaxed),
            partitions_recomputed: self.partitions_recomputed.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            tasks_speculated: self.tasks_speculated.load(Ordering::Relaxed),
            speculative_wins: self.speculative_wins.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            deadline_exceeded_jobs: self.deadline_exceeded_jobs.load(Ordering::Relaxed),
            bytes_reserved_peak: self.bytes_reserved_peak.load(Ordering::Relaxed),
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
            spill_blobs_written: self.spill_blobs_written.load(Ordering::Relaxed),
            partitions_evicted_for_pressure: self
                .partitions_evicted_for_pressure
                .load(Ordering::Relaxed),
            columnar_batches_built: self.columnar_batches_built.load(Ordering::Relaxed),
            rows_scanned_columnar: self.rows_scanned_columnar.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            tasks_reassigned: self.tasks_reassigned.load(Ordering::Relaxed),
            remote_tasks: self.remote_tasks.load(Ordering::Relaxed),
            remote_bytes_tx: self.remote_bytes_tx.load(Ordering::Relaxed),
            remote_bytes_rx: self.remote_bytes_rx.load(Ordering::Relaxed),
            fetch_retries: self.fetch_retries.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            map_outputs_lost: self.map_outputs_lost.load(Ordering::Relaxed),
            map_outputs_regenerated: self.map_outputs_regenerated.load(Ordering::Relaxed),
            shuffle_bytes_fetched_remote: self.shuffle_bytes_fetched_remote.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of [`Metrics`], cheap to copy and diff. Serializable
/// so services can put per-request counter deltas on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub tasks_launched: u64,
    pub records_read: u64,
    pub partitions_pruned: u64,
    pub shuffles: u64,
    pub jobs: u64,
    /// Cumulative in-task wall-clock nanoseconds (see [`Metrics::task_nanos`]).
    pub task_nanos: u64,
    /// Cumulative per-job wall-clock nanoseconds (see [`Metrics::job_nanos`]).
    pub job_nanos: u64,
    /// Records deep-cloned from shared partitions (see [`Metrics::records_cloned`]).
    pub records_cloned: u64,
    /// Shallow bytes served by partition sharing (see [`Metrics::clone_bytes_avoided`]).
    pub clone_bytes_avoided: u64,
    /// Failed task attempts that were retried (see [`Metrics::tasks_retried`]).
    pub tasks_retried: u64,
    /// Tasks failed past their retry budget (see [`Metrics::tasks_failed_permanently`]).
    pub tasks_failed_permanently: u64,
    /// Partitions recomputed after a failure (see [`Metrics::partitions_recomputed`]).
    pub partitions_recomputed: u64,
    /// Bytes persisted by checkpoints (see [`Metrics::checkpoint_bytes`]).
    pub checkpoint_bytes: u64,
    /// Speculative duplicate attempts launched (see [`Metrics::tasks_speculated`]).
    pub tasks_speculated: u64,
    /// Duplicates that beat the original (see [`Metrics::speculative_wins`]).
    pub speculative_wins: u64,
    /// Attempts aborted by cancellation (see [`Metrics::tasks_cancelled`]).
    pub tasks_cancelled: u64,
    /// Jobs failed on a deadline (see [`Metrics::deadline_exceeded_jobs`]).
    pub deadline_exceeded_jobs: u64,
    /// Peak accounted bytes reserved (see [`Metrics::bytes_reserved_peak`]).
    pub bytes_reserved_peak: u64,
    /// Serialised bytes spilled by shuffles (see [`Metrics::bytes_spilled`]).
    pub bytes_spilled: u64,
    /// Spill blobs written (see [`Metrics::spill_blobs_written`]).
    pub spill_blobs_written: u64,
    /// Cells evicted under memory pressure (see
    /// [`Metrics::partitions_evicted_for_pressure`]).
    pub partitions_evicted_for_pressure: u64,
    /// Columnar sidecars built (see [`Metrics::columnar_batches_built`]).
    pub columnar_batches_built: u64,
    /// Rows scanned by columnar kernels (see [`Metrics::rows_scanned_columnar`]).
    pub rows_scanned_columnar: u64,
    /// Worker processes forked (see [`Metrics::workers_spawned`]).
    pub workers_spawned: u64,
    /// Workers declared lost (see [`Metrics::workers_lost`]).
    pub workers_lost: u64,
    /// Seats brought back after a loss (see [`Metrics::workers_respawned`]).
    pub workers_respawned: u64,
    /// Tasks reassigned off lost workers (see [`Metrics::tasks_reassigned`]).
    pub tasks_reassigned: u64,
    /// Plan fragments dispatched remotely (see [`Metrics::remote_tasks`]).
    pub remote_tasks: u64,
    /// Payload bytes sent to workers (see [`Metrics::remote_bytes_tx`]).
    pub remote_bytes_tx: u64,
    /// Payload bytes received from workers (see [`Metrics::remote_bytes_rx`]).
    pub remote_bytes_rx: u64,
    /// Remote-shuffle fetch re-attempts (see [`Metrics::fetch_retries`]).
    pub fetch_retries: u64,
    /// Fetches escalated past their budget (see [`Metrics::fetch_failures`]).
    pub fetch_failures: u64,
    /// Map outputs invalidated after a loss (see [`Metrics::map_outputs_lost`]).
    pub map_outputs_lost: u64,
    /// Map outputs regenerated via lineage (see
    /// [`Metrics::map_outputs_regenerated`]).
    pub map_outputs_regenerated: u64,
    /// Bucket bytes fetched from peers (see
    /// [`Metrics::shuffle_bytes_fetched_remote`]).
    pub shuffle_bytes_fetched_remote: u64,
}

impl MetricsSnapshot {
    /// Counter deltas since `earlier` — the per-request metrics a
    /// service reports alongside each response.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_launched: self.tasks_launched - earlier.tasks_launched,
            records_read: self.records_read - earlier.records_read,
            partitions_pruned: self.partitions_pruned - earlier.partitions_pruned,
            shuffles: self.shuffles - earlier.shuffles,
            jobs: self.jobs - earlier.jobs,
            task_nanos: self.task_nanos - earlier.task_nanos,
            job_nanos: self.job_nanos - earlier.job_nanos,
            records_cloned: self.records_cloned - earlier.records_cloned,
            clone_bytes_avoided: self.clone_bytes_avoided - earlier.clone_bytes_avoided,
            tasks_retried: self.tasks_retried - earlier.tasks_retried,
            tasks_failed_permanently: self.tasks_failed_permanently
                - earlier.tasks_failed_permanently,
            partitions_recomputed: self.partitions_recomputed - earlier.partitions_recomputed,
            checkpoint_bytes: self.checkpoint_bytes - earlier.checkpoint_bytes,
            tasks_speculated: self.tasks_speculated - earlier.tasks_speculated,
            speculative_wins: self.speculative_wins - earlier.speculative_wins,
            tasks_cancelled: self.tasks_cancelled - earlier.tasks_cancelled,
            deadline_exceeded_jobs: self.deadline_exceeded_jobs - earlier.deadline_exceeded_jobs,
            // a high-water mark has no meaningful delta: carry the later value
            bytes_reserved_peak: self.bytes_reserved_peak,
            bytes_spilled: self.bytes_spilled - earlier.bytes_spilled,
            spill_blobs_written: self.spill_blobs_written - earlier.spill_blobs_written,
            partitions_evicted_for_pressure: self.partitions_evicted_for_pressure
                - earlier.partitions_evicted_for_pressure,
            columnar_batches_built: self.columnar_batches_built - earlier.columnar_batches_built,
            rows_scanned_columnar: self.rows_scanned_columnar - earlier.rows_scanned_columnar,
            workers_spawned: self.workers_spawned - earlier.workers_spawned,
            workers_lost: self.workers_lost - earlier.workers_lost,
            workers_respawned: self.workers_respawned - earlier.workers_respawned,
            tasks_reassigned: self.tasks_reassigned - earlier.tasks_reassigned,
            remote_tasks: self.remote_tasks - earlier.remote_tasks,
            remote_bytes_tx: self.remote_bytes_tx - earlier.remote_bytes_tx,
            remote_bytes_rx: self.remote_bytes_rx - earlier.remote_bytes_rx,
            fetch_retries: self.fetch_retries - earlier.fetch_retries,
            fetch_failures: self.fetch_failures - earlier.fetch_failures,
            map_outputs_lost: self.map_outputs_lost - earlier.map_outputs_lost,
            map_outputs_regenerated: self.map_outputs_regenerated - earlier.map_outputs_regenerated,
            shuffle_bytes_fetched_remote: self.shuffle_bytes_fetched_remote
                - earlier.shuffle_bytes_fetched_remote,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.inc_tasks(3);
        m.inc_records(100);
        m.inc_pruned(2);
        m.inc_shuffles();
        m.inc_jobs();
        m.inc_records_cloned(17);
        m.add_clone_bytes_avoided(4096);
        let s = m.snapshot();
        assert_eq!(s.tasks_launched, 3);
        assert_eq!(s.records_read, 100);
        assert_eq!(s.partitions_pruned, 2);
        assert_eq!(s.shuffles, 1);
        assert_eq!(s.jobs, 1);
        assert_eq!(s.records_cloned, 17);
        assert_eq!(s.clone_bytes_avoided, 4096);
    }

    #[test]
    fn snapshot_diff() {
        let m = Metrics::default();
        m.inc_tasks(5);
        let before = m.snapshot();
        m.inc_tasks(7);
        let delta = m.snapshot().diff(&before);
        assert_eq!(delta.tasks_launched, 7);
    }

    #[test]
    fn memory_counters_accumulate_and_peak_is_a_high_water_mark() {
        let m = Metrics::default();
        m.record_bytes_reserved_peak(100);
        m.record_bytes_reserved_peak(40); // lower value must not regress the peak
        m.add_bytes_spilled(2048);
        m.inc_spill_blobs_written(3);
        m.inc_partitions_evicted_for_pressure(2);
        let before = m.snapshot();
        assert_eq!(before.bytes_reserved_peak, 100);
        assert_eq!(before.bytes_spilled, 2048);
        assert_eq!(before.spill_blobs_written, 3);
        assert_eq!(before.partitions_evicted_for_pressure, 2);
        m.record_bytes_reserved_peak(500);
        m.add_bytes_spilled(1000);
        let delta = m.snapshot().diff(&before);
        assert_eq!(delta.bytes_spilled, 1000, "spill volume diffs like a counter");
        assert_eq!(delta.bytes_reserved_peak, 500, "the peak carries the later high-water mark");
    }
}
