//! Worker-side runtime: executes plan fragments received over one TCP
//! connection to the driver.
//!
//! A worker is deliberately fail-stop: any transport decode error (torn
//! frame, checksum mismatch, unknown message) terminates the serve loop
//! with an error, and the binary wrapper exits non-zero. The driver sees
//! a connection loss and recovers through its single worker-loss path —
//! there is no in-worker repair, matching the crash-only model the
//! supervision layer is built around.
//!
//! Concurrency inside a worker is two threads: the main loop reads task
//! frames and executes them; a heartbeat thread pushes
//! [`WorkerMsg::Heartbeat`] on a fixed cadence (also while a task is
//! executing, so a long task is distinguishable from a dead process).
//! Both share the write half of the socket behind a mutex, and every
//! control-plus-payload pair is sent under one lock so frames never
//! interleave.

use crate::fault::FetchChaosState;
use crate::plan::{ExecEnv, PlanError, PlanFragment, SchemaExecutor, TaskResult};
use crate::shuffle::{FetchConfig, ShuffleEnv};
use crate::storage::{sweep_orphan_dirs, ObjectStore};
use crate::transport::{recv_msg, recv_payload, send_msg, write_frame, DriverMsg, WorkerMsg};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Bound on connecting to the driver: an unreachable or half-up driver
/// must fail the worker fast instead of hanging the spawn handshake.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// A worker's executable surface: one [`SchemaExecutor`] per row schema.
#[derive(Default)]
pub struct WorkerRuntime {
    executors: HashMap<String, Box<dyn SchemaExecutor>>,
}

impl WorkerRuntime {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an executor under its schema name (replacing any
    /// previous one).
    pub fn register(&mut self, exec: Box<dyn SchemaExecutor>) {
        self.executors.insert(exec.schema().to_string(), exec);
    }

    /// The schema names this worker can execute, sorted.
    pub fn schemas(&self) -> Vec<String> {
        let mut s: Vec<String> = self.executors.keys().cloned().collect();
        s.sort();
        s
    }

    fn execute(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        env: &ExecEnv<'_>,
    ) -> Result<TaskResult, PlanError> {
        let exec =
            self.executors.get(&fragment.schema).ok_or_else(|| PlanError::SchemaMismatch {
                expected: self.schemas().join(","),
                got: fragment.schema.clone(),
            })?;
        exec.execute_env(fragment, payload, env)
    }

    /// Connects to the driver at `addr` (bounded by [`CONNECT_TIMEOUT`])
    /// and serves until drained or the connection fails.
    pub fn run(
        &self,
        addr: &str,
        worker_id: usize,
        heartbeat: Duration,
        store_root: Option<&Path>,
    ) -> io::Result<()> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unresolvable driver address {addr:?}"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, CONNECT_TIMEOUT)?;
        self.serve(stream, worker_id, heartbeat, store_root)
    }

    /// Serves the worker protocol over an established connection. Used
    /// directly by in-process tests; the binaries call [`Self::run`].
    pub fn serve(
        &self,
        stream: TcpStream,
        worker_id: usize,
        heartbeat: Duration,
        store_root: Option<&Path>,
    ) -> io::Result<()> {
        stream.set_nodelay(true).ok();
        let store = match store_root {
            Some(root) => Some(ObjectStore::open(root).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("open store: {e}"))
            })?),
            None => None,
        };

        // Remote-shuffle half: sweep bucket dirs orphaned by crashed
        // prior workers, then open this worker's own bucket store and
        // serve it on a fresh port. `STARK_FETCH_CHAOS` arms
        // deterministic fetch-side fault injection for the chaos suite.
        static SHUFFLE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let shuffle_base = std::env::temp_dir();
        sweep_orphan_dirs(&shuffle_base, "stark-shuffle-");
        let shuffle_root = shuffle_base.join(format!(
            "stark-shuffle-{}-{}",
            std::process::id(),
            SHUFFLE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let shuffle =
            ShuffleEnv::new(&shuffle_root, FetchConfig::default(), FetchChaosState::from_env_var())
                .map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidInput, format!("open shuffle store: {e}"))
                })?;
        let shuffle_port = shuffle.serve().unwrap_or(0);

        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        let mut reader = BufReader::new(stream);

        {
            let mut w = writer.lock().unwrap();
            send_msg(
                &mut *w,
                &WorkerMsg::Hello {
                    worker_id,
                    pid: std::process::id(),
                    schemas: self.schemas(),
                    shuffle_port,
                },
            )?;
        }

        // Heartbeat thread: pushes liveness on a fixed cadence until the
        // serve loop ends. `busy` reflects whether a task is in flight.
        let stop = Arc::new(AtomicBool::new(false));
        let busy = Arc::new(AtomicBool::new(false));
        let hb_handle = {
            let writer = writer.clone();
            let stop = stop.clone();
            let busy = busy.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(heartbeat);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let msg = WorkerMsg::Heartbeat { busy: busy.load(Ordering::Relaxed) };
                    let mut w = writer.lock().unwrap();
                    if send_msg(&mut *w, &msg).is_err() {
                        break; // driver is gone; the main loop will notice too
                    }
                }
            })
        };

        let result = self.serve_loop(&mut reader, &writer, &busy, store.as_ref(), &shuffle);
        stop.store(true, Ordering::Relaxed);
        let _ = hb_handle.join();
        result
        // `shuffle` drops here, stopping the bucket server and removing
        // the worker-local bucket directory
    }

    fn serve_loop(
        &self,
        reader: &mut BufReader<TcpStream>,
        writer: &Arc<Mutex<TcpStream>>,
        busy: &AtomicBool,
        store: Option<&ObjectStore>,
        shuffle: &ShuffleEnv,
    ) -> io::Result<()> {
        loop {
            let Some(msg) = recv_msg::<DriverMsg>(reader)? else {
                return Ok(()); // driver hung up cleanly
            };
            match msg {
                DriverMsg::Ping { seq } => {
                    let mut w = writer.lock().unwrap();
                    send_msg(&mut *w, &WorkerMsg::Pong { seq })?;
                }
                DriverMsg::Drain => return Ok(()),
                DriverMsg::Task { id, attempt: _, fragment, has_payload } => {
                    let payload = if has_payload { Some(recv_payload(reader)?) } else { None };
                    busy.store(true, Ordering::Relaxed);
                    let started = Instant::now();
                    // A panicking op must not take the worker down with a
                    // useless abort — it becomes a typed task failure and
                    // the worker lives on (the fail-stop rule is for
                    // *transport* faults, not task bugs).
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let env = ExecEnv { store, shuffle: Some(shuffle) };
                        self.execute(&fragment, payload.as_deref(), &env)
                    }));
                    busy.store(false, Ordering::Relaxed);
                    let micros = started.elapsed().as_micros() as u64;
                    // drain this task's fetch effort exactly once so the
                    // driver's counters stay attributable per task
                    let (fetch_retries, fetch_bytes) = shuffle.take_counters();
                    let reply = match outcome {
                        Ok(Ok(result)) => {
                            let mut w = writer.lock().unwrap();
                            send_msg(
                                &mut *w,
                                &WorkerMsg::TaskOk {
                                    id,
                                    output: result.output.clone(),
                                    micros,
                                    fetch_retries,
                                    fetch_bytes,
                                },
                            )?;
                            if let Some(rows) = &result.payload {
                                write_frame(&mut *w, rows)?;
                            }
                            continue;
                        }
                        Ok(Err(e)) => {
                            let fetch = match &e {
                                PlanError::FetchFailed(f) => Some(f.clone()),
                                _ => None,
                            };
                            WorkerMsg::TaskErr {
                                id,
                                message: e.to_string(),
                                retryable: crate::plan::is_retryable(&e),
                                fetch_retries,
                                fetch,
                            }
                        }
                        Err(panic) => WorkerMsg::TaskErr {
                            id,
                            message: format!("task panicked: {}", panic_message(&panic)),
                            retryable: true,
                            fetch_retries,
                            fetch: None,
                        },
                    };
                    let mut w = writer.lock().unwrap();
                    send_msg(&mut *w, &reply)?;
                }
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Command-line surface shared by the worker binaries:
///
/// ```text
/// <bin> --addr 127.0.0.1:PORT --id N [--heartbeat-ms 50] [--store DIR]
/// ```
///
/// `STARK_WORKER_ADDR`, `STARK_WORKER_ID`, `STARK_WORKER_HEARTBEAT_MS`
/// and `STARK_STORE_ROOT` serve as fallbacks for each flag.
pub fn run_from_args(
    runtime: &WorkerRuntime,
    args: impl Iterator<Item = String>,
) -> io::Result<()> {
    let mut addr = std::env::var("STARK_WORKER_ADDR").ok();
    let mut id: Option<usize> = std::env::var("STARK_WORKER_ID").ok().and_then(|s| s.parse().ok());
    let mut heartbeat_ms: u64 =
        std::env::var("STARK_WORKER_HEARTBEAT_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(50);
    let mut store: Option<PathBuf> = std::env::var("STARK_STORE_ROOT").ok().map(PathBuf::from);

    let bad = |m: String| io::Error::new(io::ErrorKind::InvalidInput, m);
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| bad(format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => addr = Some(value()?),
            "--id" => id = Some(value()?.parse().map_err(|e| bad(format!("--id: {e}")))?),
            "--heartbeat-ms" => {
                heartbeat_ms = value()?.parse().map_err(|e| bad(format!("--heartbeat-ms: {e}")))?
            }
            "--store" => store = Some(PathBuf::from(value()?)),
            other => return Err(bad(format!("unknown flag {other:?}"))),
        }
    }
    let addr = addr.ok_or_else(|| bad("missing --addr (or STARK_WORKER_ADDR)".into()))?;
    let id = id.ok_or_else(|| bad("missing --id (or STARK_WORKER_ID)".into()))?;
    runtime.run(&addr, id, Duration::from_millis(heartbeat_ms.max(1)), store.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{encode_rows, int_registry, PlanInput, PlanSink, TaskOutput};
    use serde_json::Value;
    use std::io::Write as _;
    use std::net::TcpListener;

    fn int_runtime() -> WorkerRuntime {
        let mut rt = WorkerRuntime::new();
        rt.register(Box::new(int_registry()));
        rt
    }

    /// Serves one in-process worker over a real TCP socketpair and
    /// returns the driver-side stream plus the serve-thread handle.
    fn spawn_worker() -> (TcpStream, std::thread::JoinHandle<io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let rt = int_runtime();
            let stream = TcpStream::connect(addr).unwrap();
            rt.serve(stream, 0, Duration::from_millis(10), None)
        });
        let (driver_side, _) = listener.accept().unwrap();
        (driver_side, handle)
    }

    fn expect_hello(r: &mut BufReader<TcpStream>) {
        loop {
            match recv_msg::<WorkerMsg>(r).unwrap().expect("worker alive") {
                WorkerMsg::Hello { schemas, .. } => {
                    assert_eq!(schemas, vec!["i64".to_string()]);
                    return;
                }
                WorkerMsg::Heartbeat { .. } => continue,
                other => panic!("expected Hello, got {other:?}"),
            }
        }
    }

    /// Skips heartbeats, returning the next non-heartbeat message.
    fn next_msg(r: &mut BufReader<TcpStream>) -> WorkerMsg {
        loop {
            match recv_msg::<WorkerMsg>(r).unwrap().expect("worker alive") {
                WorkerMsg::Heartbeat { .. } => continue,
                other => return other,
            }
        }
    }

    #[test]
    fn executes_a_task_and_ships_rows_back() {
        let (stream, handle) = spawn_worker();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        expect_hello(&mut r);

        let fragment = PlanFragment {
            schema: "i64".into(),
            input: PlanInput::Inline,
            ops: vec![crate::plan::PlanOp::Map {
                op: "add".into(),
                arg: crate::plan::int_arg("k", 10),
            }],
            sink: PlanSink::Collect,
        };
        send_msg(&mut w, &DriverMsg::Task { id: 1, attempt: 0, fragment, has_payload: true })
            .unwrap();
        write_frame(&mut w, &encode_rows(&[1i64, 2, 3]).unwrap()).unwrap();

        match next_msg(&mut r) {
            WorkerMsg::TaskOk { id: 1, output: TaskOutput::Rows { rows: 3, .. }, .. } => {
                let payload = recv_payload(&mut r).unwrap();
                let rows: Vec<i64> = crate::plan::decode_rows(&payload).unwrap();
                assert_eq!(rows, vec![11, 12, 13]);
            }
            other => panic!("expected TaskOk+rows, got {other:?}"),
        }

        send_msg(&mut w, &DriverMsg::Drain).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn heartbeats_flow_and_ping_pongs() {
        let (stream, handle) = spawn_worker();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        expect_hello(&mut r);

        // at a 10ms cadence a heartbeat must arrive well inside a second
        let mut saw_heartbeat = false;
        send_msg(&mut w, &DriverMsg::Ping { seq: 42 }).unwrap();
        loop {
            match recv_msg::<WorkerMsg>(&mut r).unwrap().expect("worker alive") {
                WorkerMsg::Heartbeat { .. } => saw_heartbeat = true,
                WorkerMsg::Pong { seq } => {
                    assert_eq!(seq, 42);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // wait for at least one heartbeat if the pong won the race
        while !saw_heartbeat {
            if let WorkerMsg::Heartbeat { .. } =
                recv_msg::<WorkerMsg>(&mut r).unwrap().expect("worker alive")
            {
                saw_heartbeat = true;
            }
        }
        send_msg(&mut w, &DriverMsg::Drain).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn unknown_op_fails_the_task_not_the_worker() {
        let (stream, handle) = spawn_worker();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        expect_hello(&mut r);

        let fragment = PlanFragment {
            schema: "i64".into(),
            input: PlanInput::Inline,
            ops: vec![crate::plan::PlanOp::Map { op: "missing".into(), arg: Value::Null }],
            sink: PlanSink::Count,
        };
        send_msg(&mut w, &DriverMsg::Task { id: 5, attempt: 0, fragment, has_payload: true })
            .unwrap();
        write_frame(&mut w, &encode_rows(&[1i64]).unwrap()).unwrap();
        match next_msg(&mut r) {
            WorkerMsg::TaskErr { id: 5, retryable, message, .. } => {
                assert!(!retryable, "unknown op is deterministic: {message}");
            }
            other => panic!("expected TaskErr, got {other:?}"),
        }

        // the worker survives and still executes the next task
        let ok = PlanFragment {
            schema: "i64".into(),
            input: PlanInput::Inline,
            ops: vec![],
            sink: PlanSink::Count,
        };
        send_msg(&mut w, &DriverMsg::Task { id: 6, attempt: 0, fragment: ok, has_payload: true })
            .unwrap();
        write_frame(&mut w, &encode_rows(&[1i64, 2]).unwrap()).unwrap();
        match next_msg(&mut r) {
            WorkerMsg::TaskOk { id: 6, output: TaskOutput::Count(2), .. } => {}
            other => panic!("expected TaskOk count, got {other:?}"),
        }
        send_msg(&mut w, &DriverMsg::Drain).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn torn_frame_fail_stops_the_worker() {
        let (stream, handle) = spawn_worker();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        expect_hello(&mut r);

        // declare a 100-byte payload but send garbage with a bad magic:
        // the worker must reject and die, not guess
        w.write_all(&100u32.to_le_bytes()).unwrap();
        w.write_all(b"JUNK").unwrap();
        w.write_all(&[0u8; 104]).unwrap();
        w.flush().unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }
}
