//! Partition-task execution on a bounded pool of scoped worker threads.
//!
//! Tasks pull partition indices off a shared atomic counter, so skewed
//! partitions naturally load-balance across the pool — the same dynamic
//! that makes balanced spatial partitioning matter on a real cluster.

use crate::context::Context;
use crate::rdd::{Data, RddImpl};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Computes every partition of `inner`, applies `f` to each, and returns
/// the results in partition order.
pub(crate) fn run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Vec<T>) -> R + Send + Sync,
) -> Vec<R> {
    let n = inner.num_partitions();
    if n == 0 {
        return Vec::new();
    }
    let workers = ctx.parallelism().min(n);
    let metrics = ctx.raw_metrics();

    if workers <= 1 {
        return (0..n)
            .map(|i| {
                metrics.inc_tasks(1);
                let data = inner.compute(i);
                metrics.inc_records(data.len() as u64);
                f(i, data)
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                metrics.inc_tasks(1);
                let data = inner.compute(i);
                metrics.inc_records(data.len() as u64);
                let r = f(i, data);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("engine worker thread panicked");

    results
        .into_iter()
        .map(|cell| cell.into_inner().expect("partition task did not produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_partitions_run_exactly_once() {
        let ctx = Context::with_parallelism(3);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        let r = ctx.parallelize((0..64).collect(), 16).map(move |x| {
            runs2.fetch_add(1, Ordering::Relaxed);
            x
        });
        let glommed = r.glom();
        assert_eq!(glommed.len(), 16);
        assert_eq!(runs.load(Ordering::Relaxed), 64);
        let all: HashSet<i32> = glommed.into_iter().flatten().collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn single_worker_path() {
        let ctx = Context::with_parallelism(1);
        let r = ctx.parallelize((0..10).collect(), 5);
        assert_eq!(r.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn results_in_partition_order_despite_racing() {
        let ctx = Context::with_parallelism(8);
        // uneven partition workloads to shake up completion order
        let r = ctx.parallelize((0..1024).collect::<Vec<u64>>(), 32).map(|x| {
            if x % 97 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(r.collect(), (0..1024).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        // a shuffle inside a running job triggers a nested run_partitions
        let ctx = Context::with_parallelism(2);
        let r = ctx
            .parallelize((0..100).collect(), 4)
            .partition_by(4, |x| (*x % 4) as usize)
            .partition_by(2, |x| (*x % 2) as usize);
        assert_eq!(r.count(), 100);
    }
}
