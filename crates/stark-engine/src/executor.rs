//! Partition-task execution on a bounded pool of scoped worker threads.
//!
//! Tasks pull partition indices off a shared atomic counter, so skewed
//! partitions naturally load-balance across the pool — the same dynamic
//! that makes balanced spatial partitioning matter on a real cluster.
//!
//! A panicking task does not tear the process down with a bare thread
//! panic: it is caught per-task and surfaced as a [`TaskError`] carrying
//! the failing partition index and payload size, so callers (and the
//! streaming layer, which must survive poison batches) can decide how to
//! react.

use crate::context::Context;
use crate::partition::Partition;
use crate::rdd::{Data, RddImpl};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A partition task failed (panicked) during a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the partition whose task failed.
    pub partition: usize,
    /// Records materialised for the partition before the failure
    /// (0 when the partition computation itself failed).
    pub payload_records: usize,
    /// Panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task for partition {} failed ({} records materialised): {}",
            self.partition, self.payload_records, self.message
        )
    }
}

impl std::error::Error for TaskError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Tracks job nesting on a context so only top-level jobs accumulate
/// `job_nanos`: a shuffle materialising *inside* a running job spawns a
/// nested partition sweep whose wall-clock is already covered by the
/// enclosing job's interval — adding both would double-count. (Top-level
/// jobs started concurrently from independent user threads also nest
/// under this scheme; wall-clock attribution is first-come.)
struct JobDepthGuard<'a> {
    ctx: &'a Context,
    depth: usize,
}

impl<'a> JobDepthGuard<'a> {
    fn enter(ctx: &'a Context) -> Self {
        let depth = ctx.inner.active_jobs.fetch_add(1, Ordering::SeqCst);
        JobDepthGuard { ctx, depth }
    }

    fn is_top_level(&self) -> bool {
        self.depth == 0
    }
}

impl Drop for JobDepthGuard<'_> {
    fn drop(&mut self) {
        self.ctx.inner.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one partition task under a panic guard, recording metrics.
fn run_task<T: Data, R>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: &(impl Fn(usize, Partition<T>) -> R + Send + Sync),
    i: usize,
) -> Result<R, TaskError> {
    let metrics = ctx.raw_metrics();
    metrics.inc_tasks(1);
    let started = Instant::now();
    let result =
        std::panic::catch_unwind(AssertUnwindSafe(|| inner.compute(i)))
            .map_err(|payload| TaskError {
                partition: i,
                payload_records: 0,
                message: panic_message(payload),
            })
            .and_then(|data| {
                metrics.inc_records(data.len() as u64);
                let payload_records = data.len();
                std::panic::catch_unwind(AssertUnwindSafe(|| f(i, data))).map_err(|payload| {
                    TaskError { partition: i, payload_records, message: panic_message(payload) }
                })
            });
    metrics.add_task_nanos(started.elapsed().as_nanos() as u64);
    result
}

/// Computes every partition of `inner`, applies `f` to each, and returns
/// the results in partition order — or the first [`TaskError`] (lowest
/// partition index wins) if any task panicked.
pub(crate) fn try_run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Result<Vec<R>, TaskError> {
    let n = inner.num_partitions();
    if n == 0 {
        return Ok(Vec::new());
    }
    let depth = JobDepthGuard::enter(ctx);
    let workers = ctx.parallelism().min(n);
    let job_started = Instant::now();

    let outcome = if workers <= 1 {
        (0..n).map(|i| run_task(ctx, inner, &f, i)).collect::<Result<Vec<R>, TaskError>>()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, TaskError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = run_task(ctx, inner, &f, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });

        slots
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("result slot poisoned")
                    .expect("partition task did not produce a result")
            })
            .collect()
    };

    if depth.is_top_level() {
        ctx.raw_metrics().add_job_nanos(job_started.elapsed().as_nanos() as u64);
    }
    outcome
}

/// Infallible wrapper over [`try_run_partitions`]: propagates a task
/// failure as a panic that names the failing partition and payload size.
pub(crate) fn run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Vec<R> {
    match try_run_partitions(ctx, inner, f) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::context::Context;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_partitions_run_exactly_once() {
        let ctx = Context::with_parallelism(3);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        let r = ctx.parallelize((0..64).collect(), 16).map(move |x| {
            runs2.fetch_add(1, Ordering::Relaxed);
            x
        });
        let glommed = r.glom();
        assert_eq!(glommed.len(), 16);
        assert_eq!(runs.load(Ordering::Relaxed), 64);
        let all: HashSet<i32> = glommed.into_iter().flatten().collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn single_worker_path() {
        let ctx = Context::with_parallelism(1);
        let r = ctx.parallelize((0..10).collect(), 5);
        assert_eq!(r.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn results_in_partition_order_despite_racing() {
        let ctx = Context::with_parallelism(8);
        // uneven partition workloads to shake up completion order
        let r = ctx.parallelize((0..1024).collect::<Vec<u64>>(), 32).map(|x| {
            if x % 97 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(r.collect(), (0..1024).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        // a shuffle inside a running job triggers a nested run_partitions
        let ctx = Context::with_parallelism(2);
        let r = ctx
            .parallelize((0..100).collect(), 4)
            .partition_by(4, |x| (*x % 4) as usize)
            .partition_by(2, |x| (*x % 2) as usize);
        assert_eq!(r.count(), 100);
    }

    #[test]
    fn task_panic_reports_partition_and_payload() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            assert!(x != 17, "poison record");
            x
        });
        let err = r.try_collect().unwrap_err();
        // record 17 lives in partition 3 of 8 (5 records per partition)
        assert_eq!(err.partition, 3);
        assert_eq!(err.payload_records, 0); // map panics inside compute
        assert!(err.message.contains("poison record"), "{}", err.message);
    }

    #[test]
    fn earliest_failing_partition_wins() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            if x % 10 == 5 {
                panic!("bad {x}")
            } else {
                x
            }
        });
        let err = r.try_collect().unwrap_err();
        assert_eq!(err.partition, 1); // record 5 is the first poison
    }

    #[test]
    fn task_timing_accumulates() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let r = ctx.parallelize((0..64).collect::<Vec<u64>>(), 8).map(|x| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x
        });
        assert_eq!(r.count(), 64);
        let delta = ctx.metrics().since(&before);
        assert!(delta.task_nanos > 0, "task wall-clock not recorded");
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        // 8 tasks at >=100µs each, run on 2 workers: cumulative task time
        // must exceed any single job's wall time
        assert!(delta.task_nanos >= 8 * 100_000);
    }

    #[test]
    fn nested_shuffle_job_counts_wall_clock_once() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let started = std::time::Instant::now();
        let n = ctx
            .parallelize((0..8).collect::<Vec<u64>>(), 4)
            .map(|x| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                x
            })
            .partition_by(4, |x| (*x % 4) as usize)
            .count();
        let elapsed = started.elapsed().as_nanos() as u64;
        assert_eq!(n, 8);
        let delta = ctx.metrics().since(&before);
        // The shuffle materialises via an inner partition sweep that runs
        // *inside* the outer count job (it executes the sleeping maps).
        // Before depth tracking, job_nanos summed both overlapping
        // intervals and reported roughly twice the true wall-clock.
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        assert!(
            delta.job_nanos <= elapsed,
            "job_nanos {} exceeds wall-clock {} — nested job double-counted",
            delta.job_nanos,
            elapsed
        );
    }
}
