//! Partition-task execution on a bounded pool of scoped worker threads.
//!
//! Tasks pull partition indices off a shared atomic counter, so skewed
//! partitions naturally load-balance across the pool — the same dynamic
//! that makes balanced spatial partitioning matter on a real cluster.
//!
//! A panicking task does not tear the process down with a bare thread
//! panic: it is caught per-task and surfaced as a [`TaskError`] carrying
//! the failing partition index and payload size, so callers (and the
//! streaming layer, which must survive poison batches) can decide how to
//! react.
//!
//! Failed tasks are retried up to
//! [`EngineConfig::max_task_retries`](crate::EngineConfig) times before
//! the error becomes permanent. Each retry recomputes the partition from
//! RDD lineage — the engine first *evicts* the partition from every
//! cache along the lineage ([`RddImpl::evict`]) so a poisoned cached
//! value cannot be served back, exactly Spark's lost-partition recovery
//! path. Structural errors ([`TaskErrorKind::PartitionOutOfRange`]) are
//! deterministic and never retried.

use crate::context::Context;
use crate::fault::InjectedFault;
use crate::partition::Partition;
use crate::rdd::{Data, RddImpl};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why a partition task failed — drives the retry decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskErrorKind {
    /// A genuine panic in user code or the engine. Retryable: Spark
    /// retries every lost task, transient or not, and gives up only
    /// after the attempt budget.
    Panic,
    /// A fault raised by the configured
    /// [`FaultInjector`](crate::FaultInjector). Retryable.
    Injected,
    /// The task asked for a partition index the dataset does not have —
    /// a deterministic structural error; retrying cannot help, so it
    /// fails fast without consuming the retry budget.
    PartitionOutOfRange,
}

/// A partition task failed (panicked) during a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the partition whose task failed.
    pub partition: usize,
    /// Records materialised for the partition before the failure
    /// (0 when the partition computation itself failed).
    pub payload_records: usize,
    /// Panic payload rendered as text.
    pub message: String,
    /// Failure classification (see [`TaskErrorKind`]).
    pub kind: TaskErrorKind,
    /// Attempts made before the error became permanent (≥ 1).
    pub attempts: u32,
    /// Stage ordinal of the partition sweep the task belonged to.
    pub stage: u64,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task for partition {} failed permanently after {} attempt{} (stage {}, {} records materialised): {}",
            self.partition,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.stage,
            self.payload_records,
            self.message
        )
    }
}

impl std::error::Error for TaskError {}

/// Typed panic payload for engine-internal task aborts (e.g. the union
/// out-of-range guard): carries a [`TaskErrorKind`] so the executor can
/// classify the failure without string matching.
pub(crate) struct TaskAbort {
    pub(crate) kind: TaskErrorKind,
    pub(crate) message: String,
}

/// Classifies a caught panic payload into a [`TaskError`].
fn classify(
    payload: Box<dyn std::any::Any + Send>,
    partition: usize,
    stage: u64,
    attempts: u32,
) -> TaskError {
    let (kind, message) = if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        (TaskErrorKind::Injected, f.to_string())
    } else if let Some(a) = payload.downcast_ref::<TaskAbort>() {
        (a.kind, a.message.clone())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (TaskErrorKind::Panic, (*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (TaskErrorKind::Panic, s.clone())
    } else {
        (TaskErrorKind::Panic, "non-string panic payload".to_string())
    };
    TaskError { partition, payload_records: 0, message, kind, attempts, stage }
}

/// Tracks job nesting on a context so only top-level jobs accumulate
/// `job_nanos`: a shuffle materialising *inside* a running job spawns a
/// nested partition sweep whose wall-clock is already covered by the
/// enclosing job's interval — adding both would double-count. (Top-level
/// jobs started concurrently from independent user threads also nest
/// under this scheme; wall-clock attribution is first-come.)
struct JobDepthGuard<'a> {
    ctx: &'a Context,
    depth: usize,
}

impl<'a> JobDepthGuard<'a> {
    fn enter(ctx: &'a Context) -> Self {
        let depth = ctx.inner.active_jobs.fetch_add(1, Ordering::SeqCst);
        JobDepthGuard { ctx, depth }
    }

    fn is_top_level(&self) -> bool {
        self.depth == 0
    }
}

impl Drop for JobDepthGuard<'_> {
    fn drop(&mut self) {
        self.ctx.inner.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one partition task attempt under a panic guard, recording
/// metrics. The configured [`FaultInjector`](crate::FaultInjector) is
/// consulted *inside* the guard, so injected faults take the same path
/// as genuine task panics.
fn run_attempt<T: Data, R>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: &(impl Fn(usize, Partition<T>) -> R + Send + Sync),
    i: usize,
    stage: u64,
    attempt: u32,
) -> Result<R, TaskError> {
    let metrics = ctx.raw_metrics();
    metrics.inc_tasks(1);
    let started = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(injector) = ctx.fault_injector() {
            injector.on_attempt(stage, i, attempt);
        }
        inner.compute(i)
    }))
    .map_err(|payload| classify(payload, i, stage, attempt + 1))
    .and_then(|data| {
        metrics.inc_records(data.len() as u64);
        let payload_records = data.len();
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, data))).map_err(|payload| TaskError {
            payload_records,
            ..classify(payload, i, stage, attempt + 1)
        })
    });
    metrics.add_task_nanos(started.elapsed().as_nanos() as u64);
    result
}

/// Runs one partition task to completion: attempts, and on retryable
/// failure evicts the partition from lineage caches and recomputes, up
/// to the context's retry budget.
fn run_task<T: Data, R>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: &(impl Fn(usize, Partition<T>) -> R + Send + Sync),
    i: usize,
    stage: u64,
) -> Result<R, TaskError> {
    let metrics = ctx.raw_metrics();
    let budget = ctx.max_task_retries();
    let backoff = ctx.inner.config.retry_backoff;
    let mut attempt = 0u32;
    loop {
        match run_attempt(ctx, inner, f, i, stage, attempt) {
            Ok(r) => return Ok(r),
            Err(e) => {
                let retryable = e.kind != TaskErrorKind::PartitionOutOfRange;
                if !retryable || attempt >= budget {
                    metrics.inc_tasks_failed_permanently(1);
                    return Err(e);
                }
                // Lineage-based recovery: drop any cached value for this
                // partition so the retry recomputes it from scratch.
                metrics.inc_tasks_retried(1);
                metrics.inc_partitions_recomputed(1);
                inner.evict(i);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff * (1u32 << attempt.min(6)));
                }
                attempt += 1;
            }
        }
    }
}

/// Computes every partition of `inner`, applies `f` to each, and returns
/// the results in partition order — or the first [`TaskError`] (lowest
/// partition index wins) if any task panicked.
pub(crate) fn try_run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Result<Vec<R>, TaskError> {
    let n = inner.num_partitions();
    if n == 0 {
        return Ok(Vec::new());
    }
    let depth = JobDepthGuard::enter(ctx);
    let workers = ctx.parallelism().min(n);
    let stage = ctx.next_stage_id();
    let job_started = Instant::now();

    let outcome = if workers <= 1 {
        (0..n).map(|i| run_task(ctx, inner, &f, i, stage)).collect::<Result<Vec<R>, TaskError>>()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<R, TaskError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = run_task(ctx, inner, &f, i, stage);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });

        slots
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("result slot poisoned")
                    .expect("partition task did not produce a result")
            })
            .collect()
    };

    if depth.is_top_level() {
        ctx.raw_metrics().add_job_nanos(job_started.elapsed().as_nanos() as u64);
    }
    outcome
}

/// Infallible wrapper over [`try_run_partitions`]: propagates a task
/// failure as a panic that names the failing partition and payload size.
pub(crate) fn run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Vec<R> {
    match try_run_partitions(ctx, inner, f) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{Context, EngineConfig};
    use crate::executor::TaskErrorKind;
    use crate::fault::{FaultInjector, FaultPolicy, FaultScope};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn chaos_ctx(
        parallelism: usize,
        retries: u32,
        injector: FaultInjector,
    ) -> (Context, Arc<FaultInjector>) {
        let injector = Arc::new(injector);
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            default_partitions: parallelism,
            max_task_retries: retries,
            fault_injector: Some(injector.clone()),
            ..EngineConfig::default()
        });
        (ctx, injector)
    }

    #[test]
    fn all_partitions_run_exactly_once() {
        let ctx = Context::with_parallelism(3);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        let r = ctx.parallelize((0..64).collect(), 16).map(move |x| {
            runs2.fetch_add(1, Ordering::Relaxed);
            x
        });
        let glommed = r.glom();
        assert_eq!(glommed.len(), 16);
        assert_eq!(runs.load(Ordering::Relaxed), 64);
        let all: HashSet<i32> = glommed.into_iter().flatten().collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn single_worker_path() {
        let ctx = Context::with_parallelism(1);
        let r = ctx.parallelize((0..10).collect(), 5);
        assert_eq!(r.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn results_in_partition_order_despite_racing() {
        let ctx = Context::with_parallelism(8);
        // uneven partition workloads to shake up completion order
        let r = ctx.parallelize((0..1024).collect::<Vec<u64>>(), 32).map(|x| {
            if x % 97 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(r.collect(), (0..1024).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        // a shuffle inside a running job triggers a nested run_partitions
        let ctx = Context::with_parallelism(2);
        let r = ctx
            .parallelize((0..100).collect(), 4)
            .partition_by(4, |x| (*x % 4) as usize)
            .partition_by(2, |x| (*x % 2) as usize);
        assert_eq!(r.count(), 100);
    }

    #[test]
    fn task_panic_reports_partition_and_payload() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            assert!(x != 17, "poison record");
            x
        });
        let err = r.try_collect().unwrap_err();
        // record 17 lives in partition 3 of 8 (5 records per partition)
        assert_eq!(err.partition, 3);
        assert_eq!(err.payload_records, 0); // map panics inside compute
        assert!(err.message.contains("poison record"), "{}", err.message);
    }

    #[test]
    fn earliest_failing_partition_wins() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            if x % 10 == 5 {
                panic!("bad {x}")
            } else {
                x
            }
        });
        let err = r.try_collect().unwrap_err();
        assert_eq!(err.partition, 1); // record 5 is the first poison
    }

    #[test]
    fn task_timing_accumulates() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let r = ctx.parallelize((0..64).collect::<Vec<u64>>(), 8).map(|x| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x
        });
        assert_eq!(r.count(), 64);
        let delta = ctx.metrics().since(&before);
        assert!(delta.task_nanos > 0, "task wall-clock not recorded");
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        // 8 tasks at >=100µs each, run on 2 workers: cumulative task time
        // must exceed any single job's wall time
        assert!(delta.task_nanos >= 8 * 100_000);
    }

    #[test]
    fn transient_injected_fault_is_absorbed_by_retry() {
        let inj = FaultInjector::new(7, FaultScope::Partition(2), FaultPolicy::Transient);
        let (ctx, chaos) = chaos_ctx(4, 3, inj);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8);
        assert_eq!(r.collect(), (0..40).collect::<Vec<_>>());
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 1);
        assert_eq!(m.partitions_recomputed, 1);
        assert_eq!(m.tasks_failed_permanently, 0);
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn permanent_fault_exhausts_retry_budget() {
        let inj = FaultInjector::new(7, FaultScope::Partition(1), FaultPolicy::Panic);
        let (ctx, chaos) = chaos_ctx(2, 2, inj);
        let err = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).try_collect().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.kind, TaskErrorKind::Injected);
        assert_eq!(err.attempts, 3, "1 initial + 2 retries");
        assert!(err.message.contains("injected"), "{}", err.message);
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 2);
        assert_eq!(m.tasks_failed_permanently, 1);
        assert_eq!(chaos.injected(), 3);
    }

    #[test]
    fn zero_retry_budget_fails_fast() {
        let ctx = Context::with_config(EngineConfig {
            parallelism: 2,
            max_task_retries: 0,
            ..EngineConfig::default()
        });
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).map(|x| {
            assert!(x != 2, "poison");
            x
        });
        let err = r.try_collect().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::Panic);
        assert_eq!(err.attempts, 1);
        assert_eq!(ctx.metrics().tasks_retried, 0);
    }

    #[test]
    fn delay_policy_stalls_but_preserves_results() {
        let inj = FaultInjector::new(
            11,
            FaultScope::Probability(1.0),
            FaultPolicy::Delay(std::time::Duration::from_micros(200)),
        );
        let (ctx, chaos) = chaos_ctx(4, 3, inj);
        let r = ctx.parallelize((0..32).collect::<Vec<i32>>(), 8);
        assert_eq!(r.collect(), (0..32).collect::<Vec<_>>());
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 0, "delays are not failures");
        assert_eq!(chaos.injected(), 8, "every task was stalled once");
    }

    #[test]
    fn transient_user_panic_recovers_via_retry() {
        let ctx = Context::with_parallelism(2);
        let fails = Arc::new(AtomicUsize::new(0));
        let fails2 = fails.clone();
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).map(move |x| {
            if x == 5 && fails2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky record");
            }
            x
        });
        assert_eq!(r.collect(), (0..8).collect::<Vec<_>>());
        assert_eq!(ctx.metrics().tasks_retried, 1);
        assert_eq!(ctx.metrics().tasks_failed_permanently, 0);
    }

    #[test]
    fn stage_ordinals_give_reruns_fresh_fault_draws() {
        // a Stage-scoped fault strikes only its stage ordinal; the same
        // dataset re-run (a new sweep, hence a new stage) is untouched
        let inj = FaultInjector::new(5, FaultScope::Stage(0), FaultPolicy::Panic);
        let (ctx, _chaos) = chaos_ctx(2, 0, inj);
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4);
        assert!(r.try_collect().is_err(), "stage 0 is poisoned");
        assert_eq!(r.try_collect().unwrap(), (0..8).collect::<Vec<_>>(), "stage 1 is clean");
    }

    #[test]
    fn nested_shuffle_job_counts_wall_clock_once() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let started = std::time::Instant::now();
        let n = ctx
            .parallelize((0..8).collect::<Vec<u64>>(), 4)
            .map(|x| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                x
            })
            .partition_by(4, |x| (*x % 4) as usize)
            .count();
        let elapsed = started.elapsed().as_nanos() as u64;
        assert_eq!(n, 8);
        let delta = ctx.metrics().since(&before);
        // The shuffle materialises via an inner partition sweep that runs
        // *inside* the outer count job (it executes the sleeping maps).
        // Before depth tracking, job_nanos summed both overlapping
        // intervals and reported roughly twice the true wall-clock.
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        assert!(
            delta.job_nanos <= elapsed,
            "job_nanos {} exceeds wall-clock {} — nested job double-counted",
            delta.job_nanos,
            elapsed
        );
    }
}
