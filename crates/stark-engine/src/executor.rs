//! Partition-task execution on a bounded pool of scoped worker threads.
//!
//! Tasks pull partition indices off a shared atomic counter, so skewed
//! partitions naturally load-balance across the pool — the same dynamic
//! that makes balanced spatial partitioning matter on a real cluster.
//!
//! A panicking task does not tear the process down with a bare thread
//! panic: it is caught per-task and surfaced as a [`TaskError`] carrying
//! the failing partition index and payload size, so callers (and the
//! streaming layer, which must survive poison batches) can decide how to
//! react.
//!
//! Failed tasks are retried up to
//! [`EngineConfig::max_task_retries`](crate::EngineConfig) times before
//! the error becomes permanent. Each retry recomputes the partition from
//! RDD lineage — the engine first *evicts* the partition from every
//! cache along the lineage ([`RddImpl::evict`]) so a poisoned cached
//! value cannot be served back, exactly Spark's lost-partition recovery
//! path. Structural errors ([`TaskErrorKind::PartitionOutOfRange`]) are
//! deterministic and never retried; neither are cooperative aborts
//! ([`TaskErrorKind::Cancelled`] / [`TaskErrorKind::DeadlineExceeded`]),
//! which would only fail again.
//!
//! With [`EngineConfig::speculation`](crate::EngineConfig) on, workers
//! that drain the main partition queue turn into speculation scouts:
//! once the configured quantile of a stage's tasks has finished, any
//! task running longer than `speculation_multiplier ×` the stage's
//! median task time is relaunched as a duplicate attempt. The first
//! attempt to finish publishes the partition's result and cancels the
//! other via its token; the loser's outcome is discarded, so job output
//! is byte-identical to a non-speculative run.

use crate::cancel::{self, CancelReason, CancellationToken};
use crate::context::Context;
use crate::fault::InjectedFault;
use crate::partition::Partition;
use crate::rdd::{Data, RddImpl};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a partition task failed — drives the retry decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskErrorKind {
    /// A genuine panic in user code or the engine. Retryable: Spark
    /// retries every lost task, transient or not, and gives up only
    /// after the attempt budget.
    Panic,
    /// A fault raised by the configured
    /// [`FaultInjector`](crate::FaultInjector). Retryable.
    Injected,
    /// The task asked for a partition index the dataset does not have —
    /// a deterministic structural error; retrying cannot help, so it
    /// fails fast without consuming the retry budget.
    PartitionOutOfRange,
    /// The task observed its [`CancellationToken`](crate::CancellationToken)
    /// tripped (an explicit [`Context::cancel`](crate::Context::cancel),
    /// or a lost speculation race) and aborted cooperatively. Never
    /// retried — the token stays tripped — and never poisons a cache:
    /// the abort unwinds before any partition value is published.
    Cancelled,
    /// A job or per-action deadline passed while the task was running
    /// (or before it started). Non-retryable for the same reasons as
    /// [`TaskErrorKind::Cancelled`]; a later run without the deadline
    /// recomputes cleanly.
    DeadlineExceeded,
    /// A checkpoint blob this task depends on is unreadable or corrupt
    /// (failed its STK1 CRC). The lineage was truncated at the
    /// checkpoint, so recomputation is impossible and retrying would
    /// re-read the same bad bytes — the error is permanent and
    /// deterministic, like [`TaskErrorKind::PartitionOutOfRange`].
    CheckpointLost,
    /// The task rejected a malformed input record (e.g. a non-finite
    /// centroid handed to a spatial partitioner). Deterministic — the
    /// same record fails every attempt — so it fails fast without
    /// consuming the retry budget, like
    /// [`TaskErrorKind::PartitionOutOfRange`].
    InvalidRecord,
}

impl TaskErrorKind {
    /// Whether this kind is a cooperative cancellation outcome.
    pub fn is_cancellation(self) -> bool {
        matches!(self, TaskErrorKind::Cancelled | TaskErrorKind::DeadlineExceeded)
    }

    /// Whether retrying an attempt that failed with this kind can
    /// succeed. Structural errors and malformed-input rejections are
    /// deterministic — the same attempt fails the same way every time —
    /// so they fail fast without consuming the retry budget.
    pub fn is_retryable(self) -> bool {
        !matches!(
            self,
            TaskErrorKind::PartitionOutOfRange
                | TaskErrorKind::CheckpointLost
                | TaskErrorKind::InvalidRecord
        )
    }
}

/// A partition task failed (panicked) during a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the partition whose task failed.
    pub partition: usize,
    /// Records materialised for the partition before the failure
    /// (0 when the partition computation itself failed).
    pub payload_records: usize,
    /// Panic payload rendered as text.
    pub message: String,
    /// Failure classification (see [`TaskErrorKind`]).
    pub kind: TaskErrorKind,
    /// Attempts made before the error became permanent (≥ 1).
    pub attempts: u32,
    /// Stage ordinal of the partition sweep the task belonged to.
    pub stage: u64,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task for partition {} failed permanently after {} attempt{} (stage {}, {} records materialised): {}",
            self.partition,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.stage,
            self.payload_records,
            self.message
        )
    }
}

impl std::error::Error for TaskError {}

/// Typed panic payload for engine-internal task aborts (e.g. the union
/// out-of-range guard): carries a [`TaskErrorKind`] so the executor can
/// classify the failure without string matching.
pub(crate) struct TaskAbort {
    pub(crate) kind: TaskErrorKind,
    pub(crate) message: String,
}

/// Classifies a caught panic payload into a [`TaskError`].
fn classify(
    payload: Box<dyn std::any::Any + Send>,
    partition: usize,
    stage: u64,
    attempts: u32,
) -> TaskError {
    let (kind, message) = if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        (TaskErrorKind::Injected, f.to_string())
    } else if let Some(a) = payload.downcast_ref::<TaskAbort>() {
        (a.kind, a.message.clone())
    } else if let Some(e) = payload.downcast_ref::<TaskError>() {
        // a nested job (shuffle materialisation) cancelled or timed out:
        // keep the typed kind so the outer task is not pointlessly retried
        (e.kind, e.to_string())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (TaskErrorKind::Panic, (*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (TaskErrorKind::Panic, s.clone())
    } else {
        (TaskErrorKind::Panic, "non-string panic payload".to_string())
    };
    TaskError { partition, payload_records: 0, message, kind, attempts, stage }
}

/// Tracks job nesting on a context so only top-level jobs accumulate
/// `job_nanos`: a shuffle materialising *inside* a running job spawns a
/// nested partition sweep whose wall-clock is already covered by the
/// enclosing job's interval — adding both would double-count. (Top-level
/// jobs started concurrently from independent user threads also nest
/// under this scheme; wall-clock attribution is first-come.)
struct JobDepthGuard<'a> {
    ctx: &'a Context,
    depth: usize,
}

impl<'a> JobDepthGuard<'a> {
    fn enter(ctx: &'a Context) -> Self {
        let depth = ctx.inner.active_jobs.fetch_add(1, Ordering::SeqCst);
        JobDepthGuard { ctx, depth }
    }

    fn is_top_level(&self) -> bool {
        self.depth == 0
    }
}

impl Drop for JobDepthGuard<'_> {
    fn drop(&mut self) {
        self.ctx.inner.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Builds the typed error for an attempt that observed cancellation
/// before doing any work.
fn cancel_error(reason: CancelReason, partition: usize, stage: u64, attempts: u32) -> TaskError {
    let (kind, message) = match reason {
        CancelReason::Cancelled => (TaskErrorKind::Cancelled, "task cancelled cooperatively"),
        CancelReason::DeadlineExceeded => {
            (TaskErrorKind::DeadlineExceeded, "job deadline exceeded")
        }
    };
    TaskError { partition, payload_records: 0, message: message.to_string(), kind, attempts, stage }
}

/// Runs one partition task attempt under a panic guard, recording
/// metrics. The attempt's [`CancellationToken`] is checked up front (the
/// partition-boundary observation point) and installed as the thread's
/// governing token for the attempt's duration, so fused record chunks,
/// cooperative sleeps and nested shuffle jobs all observe it. The
/// configured [`FaultInjector`](crate::FaultInjector) is consulted
/// *inside* the guard, so injected faults take the same path as genuine
/// task panics.
fn run_attempt<T: Data, R>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: &(impl Fn(usize, Partition<T>) -> R + Send + Sync),
    i: usize,
    stage: u64,
    attempt: u32,
    token: &Arc<CancellationToken>,
) -> Result<R, TaskError> {
    if let Some(reason) = token.cancel_reason() {
        return Err(cancel_error(reason, i, stage, attempt + 1));
    }
    let metrics = ctx.raw_metrics();
    metrics.inc_tasks(1);
    let _governing = cancel::scope(Arc::clone(token));
    let started = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(injector) = ctx.fault_injector() {
            injector.on_attempt(stage, i, attempt, ctx.memory());
        }
        inner.compute(i)
    }))
    .map_err(|payload| classify(payload, i, stage, attempt + 1))
    .and_then(|data| {
        metrics.inc_records(data.len() as u64);
        let payload_records = data.len();
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, data))).map_err(|payload| TaskError {
            payload_records,
            ..classify(payload, i, stage, attempt + 1)
        })
    });
    metrics.add_task_nanos(started.elapsed().as_nanos() as u64);
    result
}

/// Runs one partition task to completion: attempts, and on retryable
/// failure evicts the partition from lineage caches and recomputes, up
/// to the context's retry budget. `attempt_offset` shifts the attempt
/// numbers the fault injector sees: a speculative duplicate runs with
/// numbers past any original attempt, modelling relaunch on a healthy
/// node (a `(stage, partition)`-targeted stall or transient fault does
/// not strike the duplicate again).
fn run_task<T: Data, R>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: &(impl Fn(usize, Partition<T>) -> R + Send + Sync),
    i: usize,
    stage: u64,
    token: &Arc<CancellationToken>,
    attempt_offset: u32,
) -> Result<R, TaskError> {
    let metrics = ctx.raw_metrics();
    let budget = ctx.max_task_retries();
    let backoff = ctx.inner.config.retry_backoff;
    let mut attempt = 0u32;
    loop {
        match run_attempt(ctx, inner, f, i, stage, attempt_offset + attempt, token) {
            Ok(r) => return Ok(r),
            Err(e) => {
                if e.kind.is_cancellation() {
                    // Cooperative abort: the token stays tripped, so a
                    // retry would fail identically. Not a permanent
                    // *failure* either — the work was abandoned, not lost.
                    metrics.inc_tasks_cancelled(1);
                    return Err(e);
                }
                if !e.kind.is_retryable() || attempt >= budget {
                    metrics.inc_tasks_failed_permanently(1);
                    return Err(e);
                }
                // Lineage-based recovery: drop any cached value for this
                // partition so the retry recomputes it from scratch.
                metrics.inc_tasks_retried(1);
                metrics.inc_partitions_recomputed(1);
                inner.evict(i);
                if !backoff.is_zero() {
                    // Jittered exponential backoff: scale by a seeded
                    // draw in [0.5, 1.5) keyed on (stage, partition,
                    // attempt) so tasks that failed together (e.g. one
                    // poisoned input feeding many partitions) don't
                    // hammer back in lockstep.
                    let scaled = backoff * (1u32 << attempt.min(6));
                    let draw = crate::fault::splitmix64(
                        stage
                            ^ (i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                            ^ u64::from(attempt_offset + attempt),
                    );
                    let factor = 0.5 + (draw >> 11) as f64 / (1u64 << 53) as f64;
                    std::thread::sleep(scaled.mul_f64(factor));
                }
                attempt += 1;
            }
        }
    }
}

/// Per-partition execution state shared between the main sweep and
/// speculation scouts. One mutex-guarded `Slot` per partition arbitrates
/// the first-result-wins race: whoever publishes `result` first cancels
/// every other in-flight attempt's token, and late finishers discard
/// their outcome — results and metrics stay deduplicated.
struct Slot<R> {
    result: Option<Result<R, TaskError>>,
    /// Tokens of in-flight attempts for this partition.
    running: Vec<Arc<CancellationToken>>,
    /// When the original attempt started (straggler age).
    started: Option<Instant>,
    /// Whether a speculative duplicate has been launched.
    speculated: bool,
}

/// How often an idle worker re-scans for stragglers once the main
/// partition queue is drained.
const SPECULATION_POLL: Duration = Duration::from_micros(200);

/// Computes every partition of `inner`, applies `f` to each, and returns
/// the results in partition order — or the first [`TaskError`] (lowest
/// partition index wins) if any task panicked.
pub(crate) fn try_run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Result<Vec<R>, TaskError> {
    let n = inner.num_partitions();
    if n == 0 {
        return Ok(Vec::new());
    }
    let depth = JobDepthGuard::enter(ctx);
    let workers = ctx.parallelism().min(n);
    let stage = ctx.next_stage_id();
    let job_started = Instant::now();
    // Every job chains under the thread's governing token when one is
    // installed (a task of an enclosing job, or an ambient deadline
    // scope) and under the context root otherwise — so Context::cancel,
    // job deadlines and per-action deadlines all reach nested shuffles.
    let parent = cancel::current().unwrap_or_else(|| Arc::clone(ctx.cancel_token()));
    let job_token = parent.child_with_deadline(ctx.inner.config.job_deadline);

    let outcome = if workers <= 1 {
        (0..n)
            .map(|i| run_task(ctx, inner, &f, i, stage, &job_token, 0))
            .collect::<Result<Vec<R>, TaskError>>()
    } else {
        let metrics = ctx.raw_metrics();
        let speculation = ctx.inner.config.speculation;
        let quantile = ctx.inner.config.speculation_quantile;
        let multiplier = ctx.inner.config.speculation_multiplier;
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        // Durations of successful attempts, feeding the median that
        // defines "straggler" for this stage.
        let durations: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let slots: Vec<Mutex<Slot<R>>> = (0..n)
            .map(|_| {
                Mutex::new(Slot {
                    result: None,
                    running: Vec::new(),
                    started: None,
                    speculated: false,
                })
            })
            .collect();

        // Runs one attempt (original or speculative duplicate) for
        // partition `i` and arbitrates its outcome against the slot.
        let run_one = |i: usize, speculative: bool| {
            let attempt_token = job_token.child();
            {
                let mut s = slots[i].lock().expect("result slot poisoned");
                if s.result.is_some() {
                    return; // resolved while this attempt was being launched
                }
                s.running.push(Arc::clone(&attempt_token));
                if !speculative {
                    s.started = Some(Instant::now());
                }
            }
            // Duplicates take attempt numbers past any original attempt:
            // the relaunch lands on a "healthy node", out of reach of
            // `(stage, partition)`-targeted stalls and transient faults.
            let offset = if speculative { ctx.max_task_retries() + 1 } else { 0 };
            let attempt_started = Instant::now();
            let r = run_task(ctx, inner, &f, i, stage, &attempt_token, offset);
            let elapsed = attempt_started.elapsed().as_nanos() as u64;
            let mut s = slots[i].lock().expect("result slot poisoned");
            s.running.retain(|t| !Arc::ptr_eq(t, &attempt_token));
            if s.result.is_some() {
                return; // lost the race: outcome discarded (dedup)
            }
            if speculative && r.is_err() {
                // A failed duplicate never outranks the still-running
                // original — only a duplicate *success* may publish.
                return;
            }
            if r.is_ok() {
                if speculative {
                    metrics.inc_speculative_wins(1);
                }
                durations.lock().expect("durations poisoned").push(elapsed);
            }
            s.result = Some(r);
            // First result wins: retire every other in-flight attempt.
            for t in &s.running {
                t.cancel();
            }
            completed.fetch_add(1, Ordering::Release);
        };

        // Picks the next straggler to duplicate, if the stage has
        // reached its speculation quantile and someone is running past
        // `multiplier ×` the median successful-attempt duration.
        let next_straggler = || -> Option<usize> {
            let done = completed.load(Ordering::Acquire);
            let min_done = ((quantile * n as f64).ceil() as usize).clamp(1, n);
            if done < min_done {
                return None;
            }
            let threshold_nanos = {
                let d = durations.lock().expect("durations poisoned");
                if d.is_empty() {
                    return None;
                }
                let mut sorted = d.clone();
                sorted.sort_unstable();
                (sorted[sorted.len() / 2] as f64 * multiplier) as u128
            };
            for (i, slot) in slots.iter().enumerate() {
                let mut s = slot.lock().expect("result slot poisoned");
                if s.result.is_none()
                    && !s.speculated
                    && s.started.is_some_and(|st| st.elapsed().as_nanos() > threshold_nanos)
                {
                    s.speculated = true;
                    return Some(i);
                }
            }
            None
        };

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i < n {
                        run_one(i, false);
                        continue;
                    }
                    // Main queue drained: idle workers become
                    // speculation scouts until every slot resolves.
                    if !speculation || completed.load(Ordering::Acquire) >= n {
                        break;
                    }
                    match next_straggler() {
                        Some(straggler) => {
                            metrics.inc_tasks_speculated(1);
                            run_one(straggler, true);
                        }
                        None => std::thread::sleep(SPECULATION_POLL),
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("result slot poisoned")
                    .result
                    .expect("partition task did not produce a result")
            })
            .collect()
    };

    if let Err(e) = &outcome {
        if e.kind == TaskErrorKind::DeadlineExceeded && depth.is_top_level() {
            ctx.raw_metrics().inc_deadline_exceeded_jobs(1);
        }
    }
    if depth.is_top_level() {
        ctx.raw_metrics().add_job_nanos(job_started.elapsed().as_nanos() as u64);
    }
    outcome
}

/// Infallible wrapper over [`try_run_partitions`]: propagates a task
/// failure as a panic that names the failing partition and payload size.
/// Cancellation outcomes panic with the [`TaskError`] itself as payload,
/// so an enclosing task (a shuffle materialising inside a job) keeps the
/// typed non-retryable kind instead of degrading it to a string panic.
pub(crate) fn run_partitions<T: Data, R: Send>(
    ctx: &Context,
    inner: &Arc<dyn RddImpl<T>>,
    f: impl Fn(usize, Partition<T>) -> R + Send + Sync,
) -> Vec<R> {
    match try_run_partitions(ctx, inner, f) {
        Ok(results) => results,
        // Deterministic kinds (cancellation, structural, malformed input)
        // keep their typed payload: an enclosing task's `classify` then
        // preserves the kind instead of degrading it to a string panic —
        // and does not burn its retry budget re-running a nested job that
        // fails the same way every time.
        Err(e) if e.kind.is_cancellation() || !e.kind.is_retryable() => std::panic::panic_any(e),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{Context, EngineConfig};
    use crate::executor::TaskErrorKind;
    use crate::fault::{FaultInjector, FaultPolicy, FaultScope};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn chaos_ctx(
        parallelism: usize,
        retries: u32,
        injector: FaultInjector,
    ) -> (Context, Arc<FaultInjector>) {
        let injector = Arc::new(injector);
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            default_partitions: parallelism,
            max_task_retries: retries,
            fault_injector: Some(injector.clone()),
            ..EngineConfig::default()
        });
        (ctx, injector)
    }

    #[test]
    fn all_partitions_run_exactly_once() {
        let ctx = Context::with_parallelism(3);
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = runs.clone();
        let r = ctx.parallelize((0..64).collect(), 16).map(move |x| {
            runs2.fetch_add(1, Ordering::Relaxed);
            x
        });
        let glommed = r.glom();
        assert_eq!(glommed.len(), 16);
        assert_eq!(runs.load(Ordering::Relaxed), 64);
        let all: HashSet<i32> = glommed.into_iter().flatten().collect();
        assert_eq!(all.len(), 64);
    }

    #[test]
    fn single_worker_path() {
        let ctx = Context::with_parallelism(1);
        let r = ctx.parallelize((0..10).collect(), 5);
        assert_eq!(r.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn results_in_partition_order_despite_racing() {
        let ctx = Context::with_parallelism(8);
        // uneven partition workloads to shake up completion order
        let r = ctx.parallelize((0..1024).collect::<Vec<u64>>(), 32).map(|x| {
            if x % 97 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(r.collect(), (0..1024).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_jobs_do_not_deadlock() {
        // a shuffle inside a running job triggers a nested run_partitions
        let ctx = Context::with_parallelism(2);
        let r = ctx
            .parallelize((0..100).collect(), 4)
            .partition_by(4, |x| (*x % 4) as usize)
            .partition_by(2, |x| (*x % 2) as usize);
        assert_eq!(r.count(), 100);
    }

    #[test]
    fn task_panic_reports_partition_and_payload() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            assert!(x != 17, "poison record");
            x
        });
        let err = r.try_collect().unwrap_err();
        // record 17 lives in partition 3 of 8 (5 records per partition)
        assert_eq!(err.partition, 3);
        assert_eq!(err.payload_records, 0); // map panics inside compute
        assert!(err.message.contains("poison record"), "{}", err.message);
    }

    #[test]
    fn earliest_failing_partition_wins() {
        let ctx = Context::with_parallelism(4);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8).map(|x| {
            if x % 10 == 5 {
                panic!("bad {x}")
            } else {
                x
            }
        });
        let err = r.try_collect().unwrap_err();
        assert_eq!(err.partition, 1); // record 5 is the first poison
    }

    #[test]
    fn task_timing_accumulates() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let r = ctx.parallelize((0..64).collect::<Vec<u64>>(), 8).map(|x| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            x
        });
        assert_eq!(r.count(), 64);
        let delta = ctx.metrics().diff(&before);
        assert!(delta.task_nanos > 0, "task wall-clock not recorded");
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        // 8 tasks at >=100µs each, run on 2 workers: cumulative task time
        // must exceed any single job's wall time
        assert!(delta.task_nanos >= 8 * 100_000);
    }

    #[test]
    fn transient_injected_fault_is_absorbed_by_retry() {
        let inj = FaultInjector::new(7, FaultScope::Partition(2), FaultPolicy::Transient);
        let (ctx, chaos) = chaos_ctx(4, 3, inj);
        let r = ctx.parallelize((0..40).collect::<Vec<i32>>(), 8);
        assert_eq!(r.collect(), (0..40).collect::<Vec<_>>());
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 1);
        assert_eq!(m.partitions_recomputed, 1);
        assert_eq!(m.tasks_failed_permanently, 0);
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn permanent_fault_exhausts_retry_budget() {
        let inj = FaultInjector::new(7, FaultScope::Partition(1), FaultPolicy::Panic);
        let (ctx, chaos) = chaos_ctx(2, 2, inj);
        let err = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).try_collect().unwrap_err();
        assert_eq!(err.partition, 1);
        assert_eq!(err.kind, TaskErrorKind::Injected);
        assert_eq!(err.attempts, 3, "1 initial + 2 retries");
        assert!(err.message.contains("injected"), "{}", err.message);
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 2);
        assert_eq!(m.tasks_failed_permanently, 1);
        assert_eq!(chaos.injected(), 3);
    }

    #[test]
    fn zero_retry_budget_fails_fast() {
        let ctx = Context::with_config(EngineConfig {
            parallelism: 2,
            max_task_retries: 0,
            ..EngineConfig::default()
        });
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).map(|x| {
            assert!(x != 2, "poison");
            x
        });
        let err = r.try_collect().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::Panic);
        assert_eq!(err.attempts, 1);
        assert_eq!(ctx.metrics().tasks_retried, 0);
    }

    #[test]
    fn delay_policy_stalls_but_preserves_results() {
        let inj = FaultInjector::new(
            11,
            FaultScope::Probability(1.0),
            FaultPolicy::Delay(std::time::Duration::from_micros(200)),
        );
        let (ctx, chaos) = chaos_ctx(4, 3, inj);
        let r = ctx.parallelize((0..32).collect::<Vec<i32>>(), 8);
        assert_eq!(r.collect(), (0..32).collect::<Vec<_>>());
        let m = ctx.metrics();
        assert_eq!(m.tasks_retried, 0, "delays are not failures");
        assert_eq!(chaos.injected(), 8, "every task was stalled once");
    }

    #[test]
    fn transient_user_panic_recovers_via_retry() {
        let ctx = Context::with_parallelism(2);
        let fails = Arc::new(AtomicUsize::new(0));
        let fails2 = fails.clone();
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4).map(move |x| {
            if x == 5 && fails2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky record");
            }
            x
        });
        assert_eq!(r.collect(), (0..8).collect::<Vec<_>>());
        assert_eq!(ctx.metrics().tasks_retried, 1);
        assert_eq!(ctx.metrics().tasks_failed_permanently, 0);
    }

    #[test]
    fn stage_ordinals_give_reruns_fresh_fault_draws() {
        // a Stage-scoped fault strikes only its stage ordinal; the same
        // dataset re-run (a new sweep, hence a new stage) is untouched
        let inj = FaultInjector::new(5, FaultScope::Stage(0), FaultPolicy::Panic);
        let (ctx, _chaos) = chaos_ctx(2, 0, inj);
        let r = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4);
        assert!(r.try_collect().is_err(), "stage 0 is poisoned");
        assert_eq!(r.try_collect().unwrap(), (0..8).collect::<Vec<_>>(), "stage 1 is clean");
    }

    #[test]
    fn job_deadline_returns_typed_error_and_fast_jobs_still_pass() {
        let ctx = Context::with_config(EngineConfig {
            parallelism: 2,
            max_task_retries: 3,
            job_deadline: Some(std::time::Duration::from_millis(30)),
            ..EngineConfig::default()
        });
        let slow = ctx.parallelize((0..512).collect::<Vec<i32>>(), 4).map(|x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        let err = slow.try_collect().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::DeadlineExceeded);
        let m = ctx.metrics();
        assert_eq!(m.deadline_exceeded_jobs, 1);
        assert_eq!(m.tasks_retried, 0, "cancellation must not burn the retry budget");
        assert_eq!(m.tasks_failed_permanently, 0, "a deadline is not a task failure");
        // the deadline is per job, not cumulative on the context
        let fast = ctx.parallelize((0..8).collect::<Vec<i32>>(), 4);
        assert_eq!(fast.try_collect().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn collect_with_deadline_leaves_no_poisoned_cache() {
        let ctx = Context::with_parallelism(2);
        let slow = ctx
            .parallelize((0..512).collect::<Vec<i32>>(), 4)
            .map(|x| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                x
            })
            .cache();
        let err = slow.collect_with_deadline(std::time::Duration::from_millis(30)).unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::DeadlineExceeded);
        assert!(ctx.metrics().tasks_cancelled > 0, "tasks must observe the deadline");
        // the deadline lived only for the scoped action: the same lineage
        // (including its cache) computes cleanly afterwards
        assert_eq!(slow.collect(), (0..512).collect::<Vec<_>>());
        assert_eq!(
            slow.count_with_deadline(std::time::Duration::from_secs(60)).unwrap(),
            512,
            "cached partitions satisfy a later generous deadline"
        );
    }

    #[test]
    fn context_cancel_aborts_job_and_reset_rearms() {
        let ctx = Context::with_parallelism(2);
        let canceller = {
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ctx.cancel();
            })
        };
        let slow = ctx.parallelize((0..2048).collect::<Vec<i32>>(), 4).map(|x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        let err = slow.try_collect().unwrap_err();
        assert_eq!(err.kind, TaskErrorKind::Cancelled);
        canceller.join().unwrap();
        // sticky until reset: new jobs abort immediately
        let again = ctx.parallelize((0..4).collect::<Vec<i32>>(), 2).try_collect().unwrap_err();
        assert_eq!(again.kind, TaskErrorKind::Cancelled);
        ctx.reset_cancellation();
        assert_eq!(
            ctx.parallelize((0..4).collect::<Vec<i32>>(), 2).try_collect().unwrap(),
            (0..4).collect::<Vec<_>>()
        );
    }

    #[test]
    fn speculation_beats_delay_straggler_with_identical_results() {
        let stall = std::time::Duration::from_millis(400);
        let inj = FaultInjector::new(11, FaultScope::Partition(0), FaultPolicy::Delay(stall));
        let injector = Arc::new(inj);
        let ctx = Context::with_config(EngineConfig {
            parallelism: 4,
            default_partitions: 8,
            max_task_retries: 3,
            fault_injector: Some(injector.clone()),
            speculation: true,
            speculation_quantile: 0.5,
            speculation_multiplier: 1.5,
            ..EngineConfig::default()
        });
        let started = std::time::Instant::now();
        let out = ctx
            .parallelize((0..64).collect::<Vec<i32>>(), 8)
            .map(|x| {
                std::thread::sleep(std::time::Duration::from_micros(500));
                x * 2
            })
            .collect();
        let elapsed = started.elapsed();
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>(), "dedup must keep output exact");
        assert!(
            elapsed < stall * 3 / 4,
            "speculation should beat the {stall:?} straggler, took {elapsed:?}"
        );
        let m = ctx.metrics();
        assert!(m.tasks_speculated >= 1, "the stalled task must be speculated");
        assert!(m.speculative_wins >= 1, "the duplicate must win");
        assert!(m.tasks_cancelled >= 1, "the stalled original must be retired");
        assert_eq!(m.tasks_retried, 0, "delays are not failures, even speculated ones");
        assert_eq!(injector.injected(), 1, "only the original first attempt is stalled");
    }

    #[test]
    fn speculation_off_sleeps_out_the_straggler() {
        let stall = std::time::Duration::from_millis(80);
        let inj = FaultInjector::new(11, FaultScope::Partition(0), FaultPolicy::Delay(stall));
        let (ctx, _chaos) = chaos_ctx(4, 3, inj);
        let started = std::time::Instant::now();
        let out = ctx.parallelize((0..64).collect::<Vec<i32>>(), 8).collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert!(
            started.elapsed() >= stall,
            "without speculation the stall is on the critical path"
        );
        assert_eq!(ctx.metrics().tasks_speculated, 0);
    }

    #[test]
    fn nested_shuffle_job_counts_wall_clock_once() {
        let ctx = Context::with_parallelism(2);
        let before = ctx.metrics();
        let started = std::time::Instant::now();
        let n = ctx
            .parallelize((0..8).collect::<Vec<u64>>(), 4)
            .map(|x| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                x
            })
            .partition_by(4, |x| (*x % 4) as usize)
            .count();
        let elapsed = started.elapsed().as_nanos() as u64;
        assert_eq!(n, 8);
        let delta = ctx.metrics().diff(&before);
        // The shuffle materialises via an inner partition sweep that runs
        // *inside* the outer count job (it executes the sleeping maps).
        // Before depth tracking, job_nanos summed both overlapping
        // intervals and reported roughly twice the true wall-clock.
        assert!(delta.job_nanos > 0, "job wall-clock not recorded");
        assert!(
            delta.job_nanos <= elapsed,
            "job_nanos {} exceeds wall-clock {} — nested job double-counted",
            delta.job_nanos,
            elapsed
        );
    }
}
