//! Shared, immutable partition payloads.
//!
//! Every [`RddImpl::compute`](crate::rdd) returns a [`Partition<T>`]: an
//! `Arc`-backed handle to an immutable `Vec<T>`. Sources that retain
//! partition data across jobs (parallelized collections, caches, shuffle
//! buckets) hand out cheap clones of the same allocation instead of
//! deep-copying the payload on every access; consumers that need owned
//! elements convert explicitly — zero-cost when the handle is unique,
//! a counted per-element clone when it is shared.
//!
//! The handle dereferences to `&[T]`, so read-only consumers (`len`,
//! `iter`, indexing, slice patterns) work unchanged, and it implements
//! `IntoIterator` by value, cloning elements lazily only when the
//! underlying allocation is still shared.

use crate::metrics::Metrics;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, shareable partition payload. Cheap to clone: clones
/// share the same allocation.
pub struct Partition<T> {
    data: Arc<Vec<T>>,
}

impl<T> Partition<T> {
    /// Wraps freshly computed data; the returned handle is unique, so a
    /// later [`Partition::into_vec`] is zero-cost.
    pub fn from_vec(data: Vec<T>) -> Self {
        Partition { data: Arc::new(data) }
    }

    /// An empty partition.
    pub fn empty() -> Self {
        Partition::from_vec(Vec::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrowed view of the payload.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrowing iterator over the payload.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Whether other handles to the same allocation exist right now —
    /// i.e. whether converting to owned data would have to deep-clone.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }

    /// Shallow payload size in bytes (`len · size_of::<T>()`): the copy
    /// that sharing this handle avoids, and the unit of account the
    /// [`MemoryManager`](crate::MemoryManager) reserves against the
    /// context's memory budget.
    pub fn shallow_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }
}

impl<T: Clone> Partition<T> {
    /// Owned copy of the payload, always cloning.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.as_ref().clone()
    }

    /// Converts into an owned `Vec`, zero-cost when this is the only
    /// handle to the allocation and a deep clone otherwise.
    pub fn into_vec(self) -> Vec<T> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| shared.as_ref().clone())
    }

    /// [`Partition::into_vec`] that records a forced deep clone in
    /// `metrics.records_cloned`.
    pub(crate) fn into_vec_counted(self, metrics: &Metrics) -> Vec<T> {
        match Arc::try_unwrap(self.data) {
            Ok(owned) => owned,
            Err(shared) => {
                metrics.inc_records_cloned(shared.len() as u64);
                shared.as_ref().clone()
            }
        }
    }

    /// By-value iterator that records in `metrics.records_cloned` when
    /// shared storage forces the elements to be cloned out.
    pub(crate) fn into_iter_counted(self, metrics: &Metrics) -> PartitionIntoIter<T> {
        match Arc::try_unwrap(self.data) {
            Ok(owned) => PartitionIntoIter::Owned(owned.into_iter()),
            Err(shared) => {
                metrics.inc_records_cloned(shared.len() as u64);
                PartitionIntoIter::Shared { data: shared, next: 0 }
            }
        }
    }
}

impl<T> Clone for Partition<T> {
    fn clone(&self) -> Self {
        Partition { data: self.data.clone() }
    }
}

impl<T> Deref for Partition<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> From<Vec<T>> for Partition<T> {
    fn from(data: Vec<T>) -> Self {
        Partition::from_vec(data)
    }
}

impl<T> Default for Partition<T> {
    fn default() -> Self {
        Partition::empty()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Partition<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.data.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for Partition<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Serialises as a plain JSON array — the on-store format used by
/// [`Rdd::checkpoint`](crate::Rdd), so a checkpointed partition blob is
/// interchangeable with a serialised `Vec<T>`.
impl<T: serde::Serialize> serde::Serialize for Partition<T> {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl<T: serde::Deserialize> serde::Deserialize for Partition<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Partition::from_vec(Vec::<T>::from_value(v)?))
    }
}

/// By-value iterator over a [`Partition`]: moves elements out when the
/// allocation is unique, clones them lazily when it is shared.
pub enum PartitionIntoIter<T> {
    Owned(std::vec::IntoIter<T>),
    Shared { data: Arc<Vec<T>>, next: usize },
}

impl<T: Clone> Iterator for PartitionIntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            PartitionIntoIter::Owned(it) => it.next(),
            PartitionIntoIter::Shared { data, next } => {
                let item = data.get(*next).cloned()?;
                *next += 1;
                Some(item)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            PartitionIntoIter::Owned(it) => it.len(),
            PartitionIntoIter::Shared { data, next } => data.len() - next,
        };
        (n, Some(n))
    }
}

impl<T: Clone> ExactSizeIterator for PartitionIntoIter<T> {}

impl<T: Clone> IntoIterator for Partition<T> {
    type Item = T;
    type IntoIter = PartitionIntoIter<T>;

    fn into_iter(self) -> PartitionIntoIter<T> {
        match Arc::try_unwrap(self.data) {
            Ok(owned) => PartitionIntoIter::Owned(owned.into_iter()),
            Err(shared) => PartitionIntoIter::Shared { data: shared, next: 0 },
        }
    }
}

impl<'a, T> IntoIterator for &'a Partition<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_iter() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], 2);
        assert_eq!(p.iter().sum::<i32>(), 6);
        assert_eq!(p.first(), Some(&1));
        assert!(!Partition::from_vec(vec![0]).is_empty());
        assert!(Partition::<i32>::empty().is_empty());
    }

    #[test]
    fn clones_share_the_allocation() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        assert!(!p.is_shared());
        let q = p.clone();
        assert!(p.is_shared());
        assert!(q.is_shared());
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
        drop(q);
        assert!(!p.is_shared());
    }

    #[test]
    fn into_vec_is_zero_cost_when_unique() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let ptr = p.as_slice().as_ptr();
        let v = p.into_vec();
        assert_eq!(v.as_ptr(), ptr, "unique handle must not reallocate");
    }

    #[test]
    fn into_vec_clones_when_shared() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let q = p.clone();
        let ptr = q.as_slice().as_ptr();
        let v = p.into_vec();
        assert_ne!(v.as_ptr(), ptr, "shared handle must deep-clone");
        assert_eq!(v, q.to_vec());
    }

    #[test]
    fn counted_conversions_track_forced_clones() {
        let m = Metrics::default();
        let unique = Partition::from_vec(vec![1, 2, 3]);
        let _ = unique.into_vec_counted(&m);
        assert_eq!(m.snapshot().records_cloned, 0);

        let shared = Partition::from_vec(vec![1, 2, 3]);
        let _keep = shared.clone();
        let _ = shared.into_vec_counted(&m);
        assert_eq!(m.snapshot().records_cloned, 3);

        let shared = Partition::from_vec(vec![4, 5]);
        let _keep = shared.clone();
        let collected: Vec<i32> = shared.into_iter_counted(&m).collect();
        assert_eq!(collected, vec![4, 5]);
        assert_eq!(m.snapshot().records_cloned, 5);
    }

    #[test]
    fn by_value_iteration_owned_and_shared() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let owned: Vec<i32> = p.into_iter().collect();
        assert_eq!(owned, vec![1, 2, 3]);

        let p = Partition::from_vec(vec![1, 2, 3]);
        let _keep = p.clone();
        let it = p.into_iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![1, 2, 3]);

        let p = Partition::from_vec(vec![1, 2, 3]);
        let borrowed: Vec<i32> = (&p).into_iter().copied().collect();
        assert_eq!(borrowed, vec![1, 2, 3]);
    }
}
