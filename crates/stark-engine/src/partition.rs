//! Shared, immutable partition payloads.
//!
//! Every [`RddImpl::compute`](crate::rdd) returns a [`Partition<T>`]: an
//! `Arc`-backed handle to an immutable `Vec<T>`. Sources that retain
//! partition data across jobs (parallelized collections, caches, shuffle
//! buckets) hand out cheap clones of the same allocation instead of
//! deep-copying the payload on every access; consumers that need owned
//! elements convert explicitly — zero-cost when the handle is unique,
//! a counted per-element clone when it is shared.
//!
//! The handle dereferences to `&[T]`, so read-only consumers (`len`,
//! `iter`, indexing, slice patterns) work unchanged, and it implements
//! `IntoIterator` by value, cloning elements lazily only when the
//! underlying allocation is still shared.
//!
//! Alongside the rows, each partition carries a lazily built, shared
//! columnar sidecar: [`Partition::to_columns`] runs a caller-supplied
//! builder once per allocation and caches the result, so every handle
//! to a cached partition sees the same column arrays without rebuilding
//! them per job.

use crate::metrics::Metrics;
use std::any::Any;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// The shared backing of a [`Partition`]: the row payload plus the
/// lazily built columnar sidecar. Private — all access goes through
/// `Partition`.
struct PartitionRepr<T> {
    data: Vec<T>,
    columns: OnceLock<Arc<dyn Any + Send + Sync>>,
}

impl<T> PartitionRepr<T> {
    fn new(data: Vec<T>) -> Self {
        PartitionRepr { data, columns: OnceLock::new() }
    }
}

/// An immutable, shareable partition payload. Cheap to clone: clones
/// share the same allocation.
pub struct Partition<T> {
    repr: Arc<PartitionRepr<T>>,
}

impl<T> Partition<T> {
    /// Wraps freshly computed data; the returned handle is unique, so a
    /// later [`Partition::into_vec`] is zero-cost.
    pub fn from_vec(data: Vec<T>) -> Self {
        Partition { repr: Arc::new(PartitionRepr::new(data)) }
    }

    /// An empty partition.
    pub fn empty() -> Self {
        Partition::from_vec(Vec::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.repr.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.repr.data.is_empty()
    }

    /// Borrowed view of the payload.
    pub fn as_slice(&self) -> &[T] {
        &self.repr.data
    }

    /// Borrowing iterator over the payload.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.repr.data.iter()
    }

    /// Whether other handles to the same allocation exist right now —
    /// i.e. whether converting to owned data would have to deep-clone.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.repr) > 1
    }

    /// Shallow payload size in bytes (`len · size_of::<T>()`): the copy
    /// that sharing this handle avoids, and the unit of account the
    /// [`MemoryManager`](crate::MemoryManager) reserves against the
    /// context's memory budget.
    pub fn shallow_bytes(&self) -> u64 {
        (self.repr.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// The columnar sidecar of this partition, built on first use and
    /// cached on the shared allocation: every clone of this handle (and
    /// every later job reading a cached partition) gets the same
    /// `Arc<C>` back without re-running `build`.
    ///
    /// The cache holds one sidecar type per allocation. A second call
    /// with a *different* `C` falls back to building an uncached value
    /// rather than evicting the first — in practice each dataset has
    /// one column layout, so this path only exists for safety.
    pub fn to_columns<C: Send + Sync + 'static>(&self, build: impl FnOnce(&[T]) -> C) -> Arc<C> {
        if let Some(cached) = self.repr.columns.get() {
            if let Ok(cols) = cached.clone().downcast::<C>() {
                return cols;
            }
            return Arc::new(build(&self.repr.data));
        }
        let built = Arc::new(build(&self.repr.data));
        // A concurrent builder may have won the race; both values are
        // built from the same immutable rows, so ours stays valid.
        let _ = self.repr.columns.set(built.clone() as Arc<dyn Any + Send + Sync>);
        built
    }
}

impl<T: Clone> Partition<T> {
    /// Owned copy of the payload, always cloning.
    pub fn to_vec(&self) -> Vec<T> {
        self.repr.data.clone()
    }

    /// Converts into an owned `Vec`, zero-cost when this is the only
    /// handle to the allocation and a deep clone otherwise.
    pub fn into_vec(self) -> Vec<T> {
        match Arc::try_unwrap(self.repr) {
            Ok(repr) => repr.data,
            Err(shared) => shared.data.clone(),
        }
    }

    /// [`Partition::into_vec`] that records a forced deep clone in
    /// `metrics.records_cloned`.
    pub(crate) fn into_vec_counted(self, metrics: &Metrics) -> Vec<T> {
        match Arc::try_unwrap(self.repr) {
            Ok(repr) => repr.data,
            Err(shared) => {
                metrics.inc_records_cloned(shared.data.len() as u64);
                shared.data.clone()
            }
        }
    }

    /// By-value iterator that records in `metrics.records_cloned` when
    /// shared storage forces the elements to be cloned out.
    pub(crate) fn into_iter_counted(self, metrics: &Metrics) -> PartitionIntoIter<T> {
        match Arc::try_unwrap(self.repr) {
            Ok(repr) => PartitionIntoIter::Owned(repr.data.into_iter()),
            Err(shared) => {
                metrics.inc_records_cloned(shared.data.len() as u64);
                PartitionIntoIter::Shared { data: Partition { repr: shared }, next: 0 }
            }
        }
    }
}

impl<T> Clone for Partition<T> {
    fn clone(&self) -> Self {
        Partition { repr: self.repr.clone() }
    }
}

impl<T> Deref for Partition<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.repr.data
    }
}

impl<T> From<Vec<T>> for Partition<T> {
    fn from(data: Vec<T>) -> Self {
        Partition::from_vec(data)
    }
}

impl<T> Default for Partition<T> {
    fn default() -> Self {
        Partition::empty()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Partition<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.repr.data.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for Partition<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Serialises as a plain JSON array — the on-store format used by
/// [`Rdd::checkpoint`](crate::Rdd), so a checkpointed partition blob is
/// interchangeable with a serialised `Vec<T>`. The columnar sidecar is
/// never persisted; a deserialised partition rebuilds it on first use.
impl<T: serde::Serialize> serde::Serialize for Partition<T> {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl<T: serde::Deserialize> serde::Deserialize for Partition<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Partition::from_vec(Vec::<T>::from_value(v)?))
    }
}

/// By-value iterator over a [`Partition`]: moves elements out when the
/// allocation is unique, clones them lazily when it is shared.
pub enum PartitionIntoIter<T> {
    Owned(std::vec::IntoIter<T>),
    Shared { data: Partition<T>, next: usize },
}

impl<T: Clone> Iterator for PartitionIntoIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            PartitionIntoIter::Owned(it) => it.next(),
            PartitionIntoIter::Shared { data, next } => {
                let item = data.as_slice().get(*next).cloned()?;
                *next += 1;
                Some(item)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            PartitionIntoIter::Owned(it) => it.len(),
            PartitionIntoIter::Shared { data, next } => data.len() - *next,
        };
        (n, Some(n))
    }
}

impl<T: Clone> ExactSizeIterator for PartitionIntoIter<T> {}

impl<T: Clone> IntoIterator for Partition<T> {
    type Item = T;
    type IntoIter = PartitionIntoIter<T>;

    fn into_iter(self) -> PartitionIntoIter<T> {
        match Arc::try_unwrap(self.repr) {
            Ok(repr) => PartitionIntoIter::Owned(repr.data.into_iter()),
            Err(shared) => PartitionIntoIter::Shared { data: Partition { repr: shared }, next: 0 },
        }
    }
}

impl<'a, T> IntoIterator for &'a Partition<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.repr.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_iter() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p[1], 2);
        assert_eq!(p.iter().sum::<i32>(), 6);
        assert_eq!(p.first(), Some(&1));
        assert!(!Partition::from_vec(vec![0]).is_empty());
        assert!(Partition::<i32>::empty().is_empty());
    }

    #[test]
    fn clones_share_the_allocation() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        assert!(!p.is_shared());
        let q = p.clone();
        assert!(p.is_shared());
        assert!(q.is_shared());
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr());
        drop(q);
        assert!(!p.is_shared());
    }

    #[test]
    fn into_vec_is_zero_cost_when_unique() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let ptr = p.as_slice().as_ptr();
        let v = p.into_vec();
        assert_eq!(v.as_ptr(), ptr, "unique handle must not reallocate");
    }

    #[test]
    fn into_vec_clones_when_shared() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let q = p.clone();
        let ptr = q.as_slice().as_ptr();
        let v = p.into_vec();
        assert_ne!(v.as_ptr(), ptr, "shared handle must deep-clone");
        assert_eq!(v, q.to_vec());
    }

    #[test]
    fn counted_conversions_track_forced_clones() {
        let m = Metrics::default();
        let unique = Partition::from_vec(vec![1, 2, 3]);
        let _ = unique.into_vec_counted(&m);
        assert_eq!(m.snapshot().records_cloned, 0);

        let shared = Partition::from_vec(vec![1, 2, 3]);
        let _keep = shared.clone();
        let _ = shared.into_vec_counted(&m);
        assert_eq!(m.snapshot().records_cloned, 3);

        let shared = Partition::from_vec(vec![4, 5]);
        let _keep = shared.clone();
        let collected: Vec<i32> = shared.into_iter_counted(&m).collect();
        assert_eq!(collected, vec![4, 5]);
        assert_eq!(m.snapshot().records_cloned, 5);
    }

    #[test]
    fn by_value_iteration_owned_and_shared() {
        let p = Partition::from_vec(vec![1, 2, 3]);
        let owned: Vec<i32> = p.into_iter().collect();
        assert_eq!(owned, vec![1, 2, 3]);

        let p = Partition::from_vec(vec![1, 2, 3]);
        let _keep = p.clone();
        let it = p.into_iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![1, 2, 3]);

        let p = Partition::from_vec(vec![1, 2, 3]);
        let borrowed: Vec<i32> = (&p).into_iter().copied().collect();
        assert_eq!(borrowed, vec![1, 2, 3]);
    }

    #[test]
    fn to_columns_builds_once_and_shares_across_handles() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = AtomicUsize::new(0);
        let p = Partition::from_vec(vec![1i64, 2, 3]);
        let q = p.clone();

        let build = |rows: &[i64]| {
            builds.fetch_add(1, Ordering::SeqCst);
            rows.iter().map(|v| *v as f64).collect::<Vec<f64>>()
        };
        let a = p.to_columns(build);
        let b = q.to_columns(build);
        assert_eq!(builds.load(Ordering::SeqCst), 1, "sidecar must be built once");
        assert!(Arc::ptr_eq(&a, &b), "handles must share the cached sidecar");
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn to_columns_type_mismatch_builds_uncached() {
        let p = Partition::from_vec(vec![1i64, 2, 3]);
        let floats = p.to_columns(|rows| rows.iter().map(|v| *v as f64).collect::<Vec<f64>>());
        assert_eq!(floats.len(), 3);
        // a second sidecar type does not evict the first, it just builds fresh
        let sums = p.to_columns(|rows| rows.iter().sum::<i64>());
        assert_eq!(*sums, 6);
        let again = p.to_columns(|rows| rows.iter().map(|v| *v as f64).collect::<Vec<f64>>());
        assert!(Arc::ptr_eq(&floats, &again), "original sidecar stays cached");
    }

    #[test]
    fn to_columns_survives_serde_roundtrip_rebuild() {
        use serde::{Deserialize, Serialize};
        let p = Partition::from_vec(vec![1i64, 2, 3]);
        let _ = p.to_columns(|rows| rows.len());
        let v = p.to_value();
        let back = Partition::<i64>::from_value(&v).expect("roundtrip");
        assert_eq!(back, p);
        let n = back.to_columns(|rows| rows.len());
        assert_eq!(*n, 3);
    }
}
