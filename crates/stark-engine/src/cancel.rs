//! Cooperative cancellation and job deadlines.
//!
//! Spark bounds tail latency by killing straggling or obsolete task
//! attempts (`spark.speculation`, job cancellation); an in-process
//! engine cannot kill a thread, so cancellation here is *cooperative*: a
//! [`CancellationToken`] is plumbed from the [`Context`](crate::Context)
//! through the executor into every task attempt, and tasks observe it at
//! partition boundaries and between fused-op record chunks. A tripped
//! token surfaces as a non-retryable
//! [`TaskErrorKind::Cancelled`](crate::TaskErrorKind) /
//! [`TaskErrorKind::DeadlineExceeded`](crate::TaskErrorKind) task error.
//!
//! Tokens form a chain: every job derives a child of the context's root
//! token (or of the ambient token installed by a deadline scope), and
//! every task attempt derives a child of its job's token. Cancelling a
//! parent cancels the whole subtree; cancelling one attempt's token —
//! how speculative execution retires the losing duplicate — touches
//! nothing else. Deadlines ride on the same chain: a token constructed
//! with a deadline reports [`CancelReason::DeadlineExceeded`] once the
//! instant passes, with no background timer thread.
//!
//! Because a cache cell only ever stores fully-computed partitions (a
//! cancelled task unwinds *before* its value is published), cancellation
//! can never leave a poisoned cache entry: a later run without a
//! deadline simply recomputes whatever the cancelled run did not finish.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token reports itself cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancellationToken::cancel`] was called on the token or one of
    /// its ancestors (an explicit kill: a speculation loser, or
    /// [`Context::cancel`](crate::Context::cancel)).
    Cancelled,
    /// A deadline somewhere on the token chain has passed.
    DeadlineExceeded,
}

/// A shareable cancellation flag with an optional deadline, observed
/// cooperatively by running tasks. See the [module docs](self).
#[derive(Debug)]
pub struct CancellationToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<CancellationToken>>,
}

impl CancellationToken {
    /// A fresh root token: not cancelled, no deadline.
    pub fn new() -> Arc<Self> {
        Arc::new(CancellationToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
            parent: None,
        })
    }

    /// A root token that trips `deadline` from now.
    pub fn with_deadline(deadline: Duration) -> Arc<Self> {
        Arc::new(CancellationToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(Instant::now() + deadline),
            parent: None,
        })
    }

    /// A child token: cancelled whenever `self` is, independently
    /// cancellable without affecting `self`.
    pub fn child(self: &Arc<Self>) -> Arc<Self> {
        self.child_with_deadline(None)
    }

    /// A child token that additionally trips `deadline` from now (when
    /// given). The parent's own deadline still applies to the child.
    pub fn child_with_deadline(self: &Arc<Self>, deadline: Option<Duration>) -> Arc<Self> {
        Arc::new(CancellationToken {
            cancelled: AtomicBool::new(false),
            deadline: deadline.map(|d| Instant::now() + d),
            parent: Some(Arc::clone(self)),
        })
    }

    /// Trips the token: every holder (and every descendant token)
    /// observes cancellation from now on. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Clears an explicit [`CancellationToken::cancel`] on *this* token
    /// (not ancestors). Deadlines are immutable and cannot be reset.
    pub fn reset(&self) {
        self.cancelled.store(false, Ordering::Release);
    }

    /// Whether the token (or any ancestor) is cancelled or past a
    /// deadline, and why. Explicit cancellation wins over a deadline
    /// when both apply.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        let mut deadline_hit = false;
        let mut node = Some(self);
        while let Some(t) = node {
            if t.cancelled.load(Ordering::Acquire) {
                return Some(CancelReason::Cancelled);
            }
            if let Some(d) = t.deadline {
                deadline_hit |= Instant::now() >= d;
            }
            node = t.parent.as_deref();
        }
        deadline_hit.then_some(CancelReason::DeadlineExceeded)
    }

    /// Whether the token (or any ancestor) is cancelled or past a deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_reason().is_some()
    }
}

thread_local! {
    /// The token governing work on the current thread: installed by the
    /// executor around each task attempt, and by deadline scopes around
    /// a block of driver code. Jobs started on this thread chain their
    /// own token under it, which is how a deadline propagates into
    /// nested shuffle jobs without any explicit plumbing.
    static CURRENT: RefCell<Option<Arc<CancellationToken>>> = const { RefCell::new(None) };
}

/// The token currently governing this thread, if any.
pub fn current() -> Option<Arc<CancellationToken>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// RAII guard installing a token as the current thread's governing
/// token; restores the previous one on drop. Obtained from
/// [`Context::deadline_scope`](crate::Context::deadline_scope) or
/// [`scope`].
pub struct CancelScope {
    prev: Option<Arc<CancellationToken>>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `token` as the current thread's governing token until the
/// returned guard drops. Jobs started while the guard lives chain under
/// `token` (and therefore observe its cancellation and deadline).
pub fn scope(token: Arc<CancellationToken>) -> CancelScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
    CancelScope { prev }
}

/// Panics with a typed cancellation abort if the current thread's token
/// is tripped. The panic carries the [`CancelReason`], so the executor
/// classifies it as `Cancelled` / `DeadlineExceeded` without string
/// matching. Called at partition boundaries and between record chunks.
pub(crate) fn abort_if_cancelled() {
    if let Some(token) = current() {
        if let Some(reason) = token.cancel_reason() {
            abort_with(reason);
        }
    }
}

/// Panics with the typed abort payload for `reason`.
pub(crate) fn abort_with(reason: CancelReason) -> ! {
    let (kind, message) = match reason {
        CancelReason::Cancelled => {
            (crate::executor::TaskErrorKind::Cancelled, "task cancelled cooperatively")
        }
        CancelReason::DeadlineExceeded => {
            (crate::executor::TaskErrorKind::DeadlineExceeded, "job deadline exceeded")
        }
    };
    std::panic::panic_any(crate::executor::TaskAbort { kind, message: message.to_string() })
}

/// How many records a fused pipeline pulls between cancellation checks.
/// Small enough that a straggling task notices a speculative winner or
/// a passed deadline within microseconds, large enough to amortise the
/// `Instant::now` deadline probe to noise.
const CHUNK: u32 = 128;

/// Iterator adapter that observes the current thread's token every
/// [`CHUNK`] records — the "between fused-op record chunks" half of
/// cooperative cancellation. The token is resolved once at construction
/// (i.e. at task start); outside a task it is `None` and the adapter
/// degrades to a bare counter.
pub(crate) struct Checked<I> {
    inner: I,
    token: Option<Arc<CancellationToken>>,
    until_check: u32,
}

/// Wraps `inner` with per-chunk cancellation checks against the current
/// thread's token.
pub(crate) fn checked<I: Iterator>(inner: I) -> Checked<I> {
    Checked { inner, token: current(), until_check: CHUNK }
}

impl<I: Iterator> Iterator for Checked<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        if let Some(token) = &self.token {
            self.until_check -= 1;
            if self.until_check == 0 {
                self.until_check = CHUNK;
                if let Some(reason) = token.cancel_reason() {
                    abort_with(reason);
                }
            }
        }
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Sleeps for `duration` in small slices, observing the current
/// thread's token between slices — so a stalled task (e.g. a
/// [`FaultPolicy::Delay`](crate::FaultPolicy) straggler) releases its
/// worker promptly once a speculative duplicate wins or a deadline
/// passes, instead of holding the job open for the full stall.
pub(crate) fn sleep_cooperative(duration: Duration) {
    const SLICE: Duration = Duration::from_millis(1);
    let until = Instant::now() + duration;
    loop {
        abort_if_cancelled();
        let now = Instant::now();
        if now >= until {
            return;
        }
        std::thread::sleep((until - now).min(SLICE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_clear() {
        let t = CancellationToken::new();
        assert_eq!(t.cancel_reason(), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_propagates_to_children_not_parents() {
        let root = CancellationToken::new();
        let child = root.child();
        let grandchild = child.child();
        child.cancel();
        assert_eq!(root.cancel_reason(), None);
        assert_eq!(child.cancel_reason(), Some(CancelReason::Cancelled));
        assert_eq!(grandchild.cancel_reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let t = CancellationToken::with_deadline(Duration::from_millis(5));
        assert_eq!(t.cancel_reason(), None);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(t.cancel_reason(), Some(CancelReason::DeadlineExceeded));
        // children inherit the parent's deadline
        assert_eq!(t.child().cancel_reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancellationToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        t.cancel();
        assert_eq!(t.cancel_reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn reset_clears_explicit_cancel_only() {
        let t = CancellationToken::new();
        t.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn scope_installs_and_restores() {
        assert!(current().is_none());
        let outer = CancellationToken::new();
        {
            let _g = scope(outer.clone());
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            let inner = CancellationToken::new();
            {
                let _g2 = scope(inner.clone());
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        }
        assert!(current().is_none());
    }

    #[test]
    fn checked_iterator_aborts_on_cancel() {
        let token = CancellationToken::new();
        let _g = scope(token.clone());
        token.cancel();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checked(0..100_000u32).sum::<u32>()
        }));
        assert!(r.is_err(), "checked iterator must abort under a cancelled token");
    }

    #[test]
    fn checked_iterator_passes_through_without_token() {
        let v: Vec<u32> = checked(0..1000u32).collect();
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn cooperative_sleep_aborts_early() {
        let token = CancellationToken::new();
        token.cancel();
        let _g = scope(token);
        let started = Instant::now();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sleep_cooperative(Duration::from_secs(10))
        }));
        assert!(r.is_err());
        assert!(started.elapsed() < Duration::from_secs(1), "must not sleep out the stall");
    }
}
