//! STK1-framed wire transport between driver and workers.
//!
//! Frames reuse the object store's integrity envelope, prefixed with a
//! length so a stream reader can size its buffer — the same layout the
//! query service speaks (stark-server delegates to these functions):
//!
//! ```text
//! u32 LE payload length | b"STK1" | u32 LE crc32(payload) | payload
//! ```
//!
//! Control messages ([`DriverMsg`], [`WorkerMsg`]) are JSON payloads.
//! Row data never rides inside the JSON envelope: a task's inline input
//! and a `Collect` result's rows each travel as their own *raw* frame
//! immediately after the control frame that announces them (see
//! [`DriverMsg::Task::has_payload`] and [`TaskOutput::has_payload`]).
//! JSON keeps the protocol debuggable; the frame header catches
//! truncation and corruption before serde sees the bytes — a torn or
//! bit-flipped frame surfaces as `InvalidData`, which a worker treats as
//! fatal (fail-stop) so every transport fault funnels into the driver's
//! single worker-loss recovery path.

use crate::plan::{PlanFragment, TaskOutput};
use crate::shuffle::FetchFailure;
use crate::storage::{crc32, FRAME_HEADER_LEN, FRAME_MAGIC};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload; a corrupt length prefix must
/// not make the receiver allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one frame: length prefix, STK1 header, payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds max {}", payload.len(), MAX_FRAME_LEN),
        ));
    }
    let mut buf = Vec::with_capacity(4 + FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(FRAME_MAGIC);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one frame, verifying magic and checksum. Returns `Ok(None)` on
/// a clean EOF at a frame boundary (peer hung up).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds max {MAX_FRAME_LEN}"),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    if &header[..4] != FRAME_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame magic"));
    }
    let expect_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != expect_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: expected {expect_crc:08x}, got {got_crc:08x}"),
        ));
    }
    Ok(Some(payload))
}

/// Serializes and writes a message as one frame.
pub fn send_msg<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let payload = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    write_frame(w, &payload)
}

/// Reads and deserializes one message; `Ok(None)` on clean EOF.
pub fn recv_msg<T: serde::de::DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<T>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let msg = serde_json::from_slice(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("decode: {e}")))?;
    Ok(Some(msg))
}

/// Reads the raw payload frame that a control message announced. A peer
/// that promised a payload and hung up instead is a protocol error, not
/// a clean EOF.
pub fn recv_payload(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame(r)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up before its payload frame")
    })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Driver → worker messages.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum DriverMsg {
    /// Run a plan fragment. When `has_payload`, the task's inline input
    /// rows follow as one raw frame. `attempt` counts reassignments of
    /// the same logical task.
    Task { id: u64, attempt: u32, fragment: PlanFragment, has_payload: bool },
    /// Liveness probe; the worker echoes [`WorkerMsg::Pong`].
    Ping { seq: u64 },
    /// Finish the in-flight task (if any), then exit cleanly.
    Drain,
}

/// Worker → driver messages.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum WorkerMsg {
    /// First message after connecting: identifies the worker seat, the
    /// row schemas it can execute and the port its shuffle server
    /// listens on (`0` when remote shuffle is unavailable).
    Hello { worker_id: usize, pid: u32, schemas: Vec<String>, shuffle_port: u16 },
    /// Echo of [`DriverMsg::Ping`].
    Pong { seq: u64 },
    /// Periodic liveness push from the worker's heartbeat thread; also
    /// flows while a long task is executing.
    Heartbeat { busy: bool },
    /// Task finished. When `output.has_payload()`, the row payload
    /// follows as one raw frame. `fetch_retries`/`fetch_bytes` report
    /// the task's remote-shuffle fetch effort so the driver can account
    /// retries and traffic even for tasks that ultimately succeeded.
    TaskOk { id: u64, output: TaskOutput, micros: u64, fetch_retries: u64, fetch_bytes: u64 },
    /// Task failed on the worker (the worker itself stays healthy).
    /// When the failure was an exhausted remote bucket fetch, `fetch`
    /// carries the typed failure so the driver runs lost-map-output
    /// recovery instead of blind task retry.
    TaskErr {
        id: u64,
        message: String,
        retryable: bool,
        fetch_retries: u64,
        fetch: Option<FetchFailure>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanInput, PlanSink};
    use std::io::Cursor;

    fn task_msg() -> DriverMsg {
        DriverMsg::Task {
            id: 7,
            attempt: 1,
            fragment: PlanFragment {
                schema: "i64".into(),
                input: PlanInput::Inline,
                ops: vec![],
                sink: PlanSink::Count,
            },
            has_payload: true,
        }
    }

    #[test]
    fn control_and_payload_frames_roundtrip() {
        let mut buf = Vec::new();
        send_msg(&mut buf, &task_msg()).unwrap();
        write_frame(&mut buf, b"[1,2,3]").unwrap();
        let mut r = Cursor::new(&buf);
        let msg: DriverMsg = recv_msg(&mut r).unwrap().unwrap();
        assert_eq!(msg, task_msg());
        assert_eq!(recv_payload(&mut r).unwrap(), b"[1,2,3]");
    }

    #[test]
    fn clean_eof_is_none_but_missing_payload_is_an_error() {
        let got: Option<WorkerMsg> = recv_msg(&mut Cursor::new(&[])).unwrap();
        assert!(got.is_none());
        assert!(recv_payload(&mut Cursor::new(&[])).is_err());
    }

    #[test]
    fn corrupt_and_truncated_frames_are_invalid_data() {
        let mut buf = Vec::new();
        send_msg(&mut buf, &WorkerMsg::Heartbeat { busy: false }).unwrap();
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let err = recv_msg::<WorkerMsg>(&mut Cursor::new(&flipped)).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        let mut torn = buf;
        torn.truncate(torn.len() - 3);
        assert!(recv_msg::<WorkerMsg>(&mut Cursor::new(&torn)).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(FRAME_MAGIC);
        buf.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds max"), "{err}");
    }

    #[test]
    fn worker_msgs_roundtrip() {
        for msg in [
            WorkerMsg::Hello {
                worker_id: 2,
                pid: 4242,
                schemas: vec!["i64".into()],
                shuffle_port: 40123,
            },
            WorkerMsg::Pong { seq: 9 },
            WorkerMsg::TaskOk {
                id: 3,
                output: TaskOutput::Count(11),
                micros: 55,
                fetch_retries: 2,
                fetch_bytes: 8192,
            },
            WorkerMsg::TaskErr {
                id: 4,
                message: "boom".into(),
                retryable: true,
                fetch_retries: 0,
                fetch: None,
            },
            WorkerMsg::TaskErr {
                id: 5,
                message: "fetch exhausted".into(),
                retryable: true,
                fetch_retries: 4,
                fetch: Some(FetchFailure {
                    addr: "127.0.0.1:40123".into(),
                    key: "sh/task-00001/bucket-00002".into(),
                    epoch: 1,
                    stale: false,
                    reason: "5 attempts exhausted".into(),
                }),
            },
        ] {
            let mut buf = Vec::new();
            send_msg(&mut buf, &msg).unwrap();
            let got: WorkerMsg = recv_msg(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn frame_at_exactly_the_cap_roundtrips() {
        // the length check is `>`, so a payload of exactly MAX_FRAME_LEN
        // bytes must survive both directions
        let payload = vec![0xA7u8; MAX_FRAME_LEN];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let back = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(back.len(), MAX_FRAME_LEN);
        assert_eq!(back, payload);
    }

    #[test]
    fn frame_one_past_the_cap_is_rejected_on_both_sides() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let err = write_frame(&mut Vec::new(), &payload).unwrap_err();
        assert!(err.to_string().contains("exceeds max"), "{err}");

        // a forged length prefix of cap+1 must be rejected before the
        // receiver allocates the buffer
        let mut forged = Vec::new();
        forged.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        forged.extend_from_slice(FRAME_MAGIC);
        forged.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut Cursor::new(&forged)).unwrap_err();
        assert!(err.to_string().contains("exceeds max"), "{err}");
    }
}
