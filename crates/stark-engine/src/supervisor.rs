//! Driver-side supervision of worker processes.
//!
//! A [`WorkerPool`] forks N worker processes (any binary built on
//! [`crate::worker::WorkerRuntime`]), each of which dials back over TCP
//! and is supervised for the pool's lifetime:
//!
//! * **Liveness** — every inbound frame refreshes the worker's
//!   `last_seen`; workers push heartbeats on a fixed cadence, so a
//!   silent socket (network partition, frozen process) trips the
//!   heartbeat timeout even though the connection looks open.
//! * **Worker-loss detection** — connection EOF or a torn frame
//!   (fail-stop workers die on any protocol error), heartbeat silence,
//!   or a task outliving its per-task deadline. All three funnel into
//!   one `mark_down` path.
//! * **Recovery** — a dead worker's in-flight task is reassigned to a
//!   survivor with a bumped attempt number (its shuffle output lives in
//!   the shared object store and is simply rewritten — lineage-based
//!   recovery at the granularity of plan fragments). The seat respawns
//!   with exponential backoff, jittered so a mass outage doesn't
//!   thunder back in lockstep.
//! * **Graceful drain** — shutdown sends [`DriverMsg::Drain`], waits
//!   briefly for clean exits, then kills stragglers.
//!
//! Transport chaos ([`TransportChaos`]) hooks the dispatch path:
//! kill -9 after send, dropped/truncated/corrupted/delayed task frames.
//! Each policy exercises a different detection route, but recovery is
//! always the same reassignment path — which is why the chaos suite can
//! pin `tasks_reassigned == injected` and byte-identical results.

use crate::fault::{splitmix64, FetchChaos, TransportChaos, TransportPolicy};
use crate::metrics::Metrics;
use crate::plan::{
    shuffle_bucket_key, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput, TaskResult,
};
use crate::shuffle::{FetchFailure, FetchSource};
use crate::storage::{crc32, ObjectStore, FRAME_MAGIC};
use crate::transport::{recv_msg, recv_payload, send_msg, write_frame, DriverMsg, WorkerMsg};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of a [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct WorkerPoolConfig {
    /// Number of worker seats.
    pub workers: usize,
    /// Worker binary to fork (see [`find_worker_bin`]).
    pub program: PathBuf,
    /// Heartbeat cadence pushed by workers (passed on their command
    /// line).
    pub heartbeat_interval: Duration,
    /// A worker whose last inbound frame is older than this is declared
    /// lost even if its socket is still open.
    pub heartbeat_timeout: Duration,
    /// A dispatched task not answered within this window marks its
    /// worker lost (catches dropped task frames and wedged workers that
    /// still heartbeat).
    pub task_timeout: Duration,
    /// How long a freshly forked worker may take to dial back.
    pub spawn_timeout: Duration,
    /// Base respawn backoff; doubled per consecutive failure of the
    /// seat and jittered into `[0.5, 1.5)` of the scaled value.
    pub respawn_backoff: Duration,
    /// Respawn budget per seat.
    pub max_respawns: u32,
    /// Reassignment/retry budget per task.
    pub max_task_retries: u32,
    /// Shared object store for shuffle buckets and checkpoints; `None`
    /// creates a fresh temp-dir store.
    pub store_root: Option<PathBuf>,
    /// Transport fault injection consulted on every dispatch.
    pub chaos: Option<Arc<TransportChaos>>,
    /// Fetch-side fault injection, exported to every forked worker via
    /// the `STARK_FETCH_CHAOS` environment variable.
    pub fetch_chaos: Option<FetchChaos>,
    /// How many lost-output regeneration rounds one remote shuffle may
    /// run before giving up (a fetch failure that survives this many
    /// re-productions is not transient).
    pub max_shuffle_regens: u32,
    /// Engine metrics to mirror pool counters into.
    pub metrics: Option<Arc<Metrics>>,
    /// Seed for the respawn-backoff jitter.
    pub seed: u64,
}

impl WorkerPoolConfig {
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerPoolConfig {
            workers: 4,
            program: program.into(),
            heartbeat_interval: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_secs(2),
            task_timeout: Duration::from_secs(30),
            spawn_timeout: Duration::from_secs(10),
            respawn_backoff: Duration::from_millis(50),
            max_respawns: 3,
            max_task_retries: 3,
            store_root: None,
            chaos: None,
            fetch_chaos: None,
            max_shuffle_regens: 4,
            metrics: None,
            seed: 0xC4A05,
        }
    }
}

/// Locates a worker binary: `STARK_WORKER_BIN` first, then as a sibling
/// of the current executable (walking up from `target/*/deps` for test
/// binaries). Returns `None` if the binary has not been built.
pub fn find_worker_bin(name: &str) -> Option<PathBuf> {
    if let Ok(p) = std::env::var("STARK_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    for _ in 0..2 {
        let cand = dir.join(name);
        if cand.is_file() {
            return Some(cand);
        }
        dir = dir.parent()?;
    }
    None
}

// ---------------------------------------------------------------------------
// Errors and stats
// ---------------------------------------------------------------------------

/// Typed pool failure.
#[derive(Debug)]
pub enum PoolError {
    Io(io::Error),
    /// A worker seat failed to fork or complete its handshake.
    Spawn {
        seat: usize,
        message: String,
    },
    /// A task failed deterministically (non-retryable plan error).
    TaskFailed {
        task: usize,
        message: String,
    },
    /// A task exhausted its reassignment/retry budget.
    RetriesExhausted {
        task: usize,
        attempts: u32,
        last: String,
    },
    /// Every worker is down and no respawn budget remains.
    NoWorkers {
        pending: usize,
    },
    /// A reduce task's remote bucket fetch failed for good (budget
    /// exhausted or stale epoch); carries the typed failure so the
    /// lost-output recovery loop can decide what to invalidate.
    FetchFailed {
        task: usize,
        failure: FetchFailure,
    },
    /// A remote shuffle regenerated lost map outputs
    /// [`WorkerPoolConfig::max_shuffle_regens`] times and fetches still
    /// failed — the failure is not transient.
    ShuffleRegensExhausted {
        prefix: String,
        rounds: u32,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Io(e) => write!(f, "pool I/O error: {e}"),
            PoolError::Spawn { seat, message } => write!(f, "worker seat {seat}: {message}"),
            PoolError::TaskFailed { task, message } => write!(f, "task {task} failed: {message}"),
            PoolError::RetriesExhausted { task, attempts, last } => {
                write!(f, "task {task} failed after {attempts} attempts: {last}")
            }
            PoolError::NoWorkers { pending } => {
                write!(f, "all workers lost with {pending} tasks outstanding and no respawn budget")
            }
            PoolError::FetchFailed { task, failure } => {
                write!(f, "reduce task {task}: {failure}")
            }
            PoolError::ShuffleRegensExhausted { prefix, rounds } => {
                write!(
                    f,
                    "shuffle {prefix:?} still failing after {rounds} map-output regeneration rounds"
                )
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl From<io::Error> for PoolError {
    fn from(e: io::Error) -> Self {
        PoolError::Io(e)
    }
}

/// Pool-level counters, readable at any time via [`WorkerPool::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    pub workers_spawned: u64,
    pub workers_lost: u64,
    pub workers_respawned: u64,
    pub tasks_dispatched: u64,
    pub tasks_completed: u64,
    /// Tasks re-run after a worker-reported (retryable) failure.
    pub tasks_retried: u64,
    /// Tasks re-run because their worker was lost mid-flight.
    pub tasks_reassigned: u64,
    pub heartbeats: u64,
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    /// Remote-shuffle fetch attempts beyond the first, summed over all
    /// workers (each struck transfer costs exactly one retry).
    pub fetch_retries: u64,
    /// Fetches that exhausted their retry budget or hit a stale epoch.
    pub fetch_failures: u64,
    /// Registered map outputs invalidated because their producer died
    /// or served unusable bytes.
    pub map_outputs_lost: u64,
    /// Map outputs re-produced via lineage at a bumped shuffle epoch.
    pub map_outputs_regenerated: u64,
    /// Bucket payload bytes pulled over peer-to-peer fetch connections.
    pub shuffle_bytes_fetched_remote: u64,
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// One task to run on the pool: a plan fragment plus its optional inline
/// row payload.
#[derive(Debug, Clone)]
pub struct DistTask {
    pub fragment: PlanFragment,
    pub payload: Option<Vec<u8>>,
}

impl DistTask {
    pub fn new(fragment: PlanFragment) -> Self {
        DistTask { fragment, payload: None }
    }

    pub fn with_rows(fragment: PlanFragment, payload: Vec<u8>) -> Self {
        DistTask { fragment, payload: Some(payload) }
    }
}

/// Derives the reduce-side store keys for `partition` from the map
/// stage's [`TaskOutput::BucketCounts`] (one `Vec<u64>` per map task) —
/// only buckets a map task actually wrote appear.
pub fn bucket_keys_for_partition(
    prefix: &str,
    counts: &[Vec<u64>],
    partition: usize,
) -> Vec<String> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, c)| c.get(partition).copied().unwrap_or(0) > 0)
        .map(|(task, _)| crate::plan::shuffle_bucket_key(prefix, task, partition))
        .collect()
}

// ---------------------------------------------------------------------------
// Shuffle stages
// ---------------------------------------------------------------------------

/// How a shuffle stage moves buckets from map tasks to reduce tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleMode {
    /// Map tasks write buckets into the pool's shared [`ObjectStore`];
    /// reduce tasks read them back by key. No recovery needed — the
    /// store outlives any worker.
    SharedStore,
    /// Map tasks keep buckets in their own local store and serve them
    /// over a per-worker shuffle port; reduce tasks fetch peer-to-peer.
    /// Lost outputs are re-produced via lineage at a bumped epoch.
    Remote,
}

/// Declarative description of one shuffle stage for
/// [`WorkerPool::run_shuffle`]. The pool builds the map-side sinks and
/// reduce-side inputs itself, so the two [`ShuffleMode`]s stay
/// byte-identical by construction.
#[derive(Debug, Clone)]
pub struct ShuffleSpec {
    pub mode: ShuffleMode,
    /// Registered partitioner op name (e.g. `"mod"`).
    pub partitioner: String,
    pub partitioner_arg: Value,
    pub num_partitions: usize,
    /// Stage key prefix; also names the map-output registry entry.
    pub prefix: String,
    /// Ops applied to each reduce partition's concatenated rows.
    pub reduce_ops: Vec<PlanOp>,
    /// Sink of each reduce task (one task per partition).
    pub reduce_sink: PlanSink,
}

/// Where one map task's buckets live: which seat incarnation produced
/// them, at which epoch, and how many rows each bucket holds.
#[derive(Debug, Clone)]
struct MapOutputEntry {
    seat: usize,
    gen: u64,
    port: u16,
    epoch: u64,
    counts: Vec<u64>,
}

/// Map-output registry for one shuffle stage: map task index → current
/// output location. `epoch` is the stage's high-water mark; entries
/// below it were produced before the most recent regeneration round.
#[derive(Default)]
struct ShuffleRegistry {
    epoch: u64,
    entries: HashMap<usize, MapOutputEntry>,
}

impl ShuffleRegistry {
    /// Registers a map output. Mirrors the duplicate-completion guard:
    /// an entry at the same or newer epoch wins, so a straggling
    /// duplicate production can never clobber a regenerated output.
    fn register(&mut self, task: usize, entry: MapOutputEntry) -> bool {
        if let Some(existing) = self.entries.get(&task) {
            if existing.epoch >= entry.epoch {
                return false;
            }
        }
        self.entries.insert(task, entry);
        true
    }
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

enum Event {
    Msg { seat: usize, gen: u64, msg: WorkerMsg, rows: Option<Vec<u8>> },
    Gone { seat: usize, gen: u64, reason: String },
}

enum SlotState {
    Idle,
    Busy { task: usize, attempt: u32, deadline: Instant },
    Down,
}

struct WorkerSlot {
    /// Incarnation counter; events from a previous incarnation of this
    /// seat are stale and ignored.
    gen: u64,
    child: Option<Child>,
    writer: Option<TcpStream>,
    last_seen: Arc<Mutex<Instant>>,
    state: SlotState,
    /// Consecutive losses of this seat — the respawn-backoff exponent,
    /// reset when the seat completes a task.
    consecutive_failures: u32,
    respawns_left: u32,
    next_respawn: Option<Instant>,
    /// Port of this incarnation's bucket server (0 = none announced).
    shuffle_port: u16,
}

impl WorkerSlot {
    fn is_live(&self) -> bool {
        !matches!(self.state, SlotState::Down)
    }
}

/// A supervised pool of worker processes executing [`DistTask`]s.
pub struct WorkerPool {
    cfg: WorkerPoolConfig,
    listener: TcpListener,
    addr: String,
    slots: Vec<WorkerSlot>,
    events_rx: Receiver<Event>,
    events_tx: Sender<Event>,
    store: ObjectStore,
    heartbeats: Arc<AtomicU64>,
    stats: PoolStats,
    /// Map-output registry, one per remote-shuffle stage prefix.
    map_outputs: HashMap<String, ShuffleRegistry>,
    /// Monotonic job counter — part of the chaos draw identity.
    jobs: u64,
    /// splitmix64 state for respawn jitter.
    rng: u64,
    closed: bool,
}

impl WorkerPool {
    /// Forks `cfg.workers` worker processes and completes their
    /// handshakes. On any seat failure the already-started workers are
    /// killed before the error returns.
    pub fn spawn(cfg: WorkerPoolConfig) -> Result<WorkerPool, PoolError> {
        assert!(cfg.workers >= 1, "a pool needs at least one worker");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let store_root = cfg.store_root.clone().unwrap_or_else(|| {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            std::env::temp_dir().join(format!(
                "stark-pool-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let store = ObjectStore::open(&store_root)
            .map_err(|e| PoolError::Spawn { seat: 0, message: format!("open store: {e}") })?;
        let (events_tx, events_rx) = std::sync::mpsc::channel();
        let mut pool = WorkerPool {
            rng: splitmix64(cfg.seed ^ 0x57A2_4B00),
            cfg,
            listener,
            addr,
            slots: Vec::new(),
            events_rx,
            events_tx,
            store,
            heartbeats: Arc::new(AtomicU64::new(0)),
            stats: PoolStats::default(),
            map_outputs: HashMap::new(),
            jobs: 0,
            closed: false,
        };
        for seat in 0..pool.cfg.workers {
            pool.slots.push(WorkerSlot {
                gen: 0,
                child: None,
                writer: None,
                last_seen: Arc::new(Mutex::new(Instant::now())),
                state: SlotState::Down,
                consecutive_failures: 0,
                respawns_left: pool.cfg.max_respawns,
                next_respawn: None,
                shuffle_port: 0,
            });
            if let Err(e) = pool.spawn_worker(seat) {
                pool.shutdown_inner();
                return Err(e);
            }
        }
        Ok(pool)
    }

    /// The shared object store workers read shuffle input from and write
    /// shuffle/checkpoint output to.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Pool counters (heartbeats are read from the reader threads).
    pub fn stats(&self) -> PoolStats {
        let mut s = self.stats;
        s.heartbeats = self.heartbeats.load(Ordering::Relaxed);
        s
    }

    /// Number of workers currently live (connected and not timed out).
    pub fn live_workers(&self) -> usize {
        self.slots.iter().filter(|s| s.is_live()).count()
    }

    fn metric(&self, f: impl Fn(&Metrics)) {
        if let Some(m) = &self.cfg.metrics {
            f(m);
        }
    }

    /// Forks one worker for `seat` and completes the Hello handshake.
    fn spawn_worker(&mut self, seat: usize) -> Result<(), PoolError> {
        let spawn_err = |message: String| PoolError::Spawn { seat, message };
        let mut cmd = Command::new(&self.cfg.program);
        cmd.arg("--addr")
            .arg(&self.addr)
            .arg("--id")
            .arg(seat.to_string())
            .arg("--heartbeat-ms")
            .arg(self.cfg.heartbeat_interval.as_millis().max(1).to_string())
            .arg("--store")
            .arg(self.store.root())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if let Some(fc) = &self.cfg.fetch_chaos {
            cmd.env("STARK_FETCH_CHAOS", fc.to_env());
        }
        let mut child =
            cmd.spawn().map_err(|e| spawn_err(format!("fork {:?}: {e}", self.cfg.program)))?;

        // The listener is non-blocking; poll for the dial-back while
        // watching for an early child death.
        let deadline = Instant::now() + self.cfg.spawn_timeout;
        let stream = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(spawn_err(format!("worker exited during spawn: {status}")));
                    }
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        return Err(spawn_err("worker never dialed back".into()));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    return Err(e.into());
                }
            }
        };
        stream.set_nodelay(true).ok();

        // Hello must arrive promptly.
        stream.set_read_timeout(Some(self.cfg.spawn_timeout)).ok();
        let mut hello_reader = BufReader::new(stream.try_clone()?);
        let shuffle_port = match recv_msg::<WorkerMsg>(&mut hello_reader) {
            Ok(Some(WorkerMsg::Hello { worker_id, shuffle_port, .. })) if worker_id == seat => {
                shuffle_port
            }
            Ok(other) => {
                let _ = child.kill();
                return Err(spawn_err(format!("bad handshake: {other:?}")));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(spawn_err(format!("handshake: {e}")));
            }
        };
        // Reads stay bounded for the connection's whole life: a peer
        // that wedges mid-frame trips this timeout and is reported Gone,
        // instead of parking the reader thread forever. Heartbeats
        // arrive every `heartbeat_interval`, so a healthy worker never
        // comes near the bound.
        stream.set_read_timeout(Some(self.cfg.heartbeat_timeout * 2)).ok();

        let slot = &mut self.slots[seat];
        slot.shuffle_port = shuffle_port;
        slot.gen += 1;
        slot.child = Some(child);
        slot.writer = Some(stream);
        slot.state = SlotState::Idle;
        *slot.last_seen.lock().unwrap() = Instant::now();
        slot.next_respawn = None;
        self.stats.workers_spawned += 1;
        self.metric(|m| m.inc_workers_spawned());

        // Reader thread: forwards messages and reports connection loss.
        let gen = self.slots[seat].gen;
        let tx = self.events_tx.clone();
        let last_seen = self.slots[seat].last_seen.clone();
        let heartbeats = self.heartbeats.clone();
        std::thread::spawn(move || reader_loop(hello_reader, seat, gen, tx, last_seen, heartbeats));
        Ok(())
    }

    /// Runs a stage of tasks to completion, reassigning work away from
    /// lost workers, and returns the per-task results in input order.
    pub fn execute(&mut self, tasks: &[DistTask]) -> Result<Vec<TaskResult>, PoolError> {
        Ok(self.execute_traced(tasks)?.into_iter().map(|(r, _, _)| r).collect())
    }

    /// Like [`Self::execute`] but also reports which seat incarnation
    /// `(seat, gen)` completed each task — the map-output registry needs
    /// the producer's identity to later detect its loss.
    fn execute_traced(
        &mut self,
        tasks: &[DistTask],
    ) -> Result<Vec<(TaskResult, usize, u64)>, PoolError> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        let job = self.jobs;
        self.jobs += 1;
        self.reset_for_new_job();

        let n = tasks.len();
        let mut results: Vec<Option<(TaskResult, usize, u64)>> = vec![None; n];
        let mut pending: VecDeque<(usize, u32)> = (0..n).map(|i| (i, 0)).collect();
        let mut done = 0usize;

        while done < n {
            self.respawn_due();
            self.assign_pending(&mut pending, tasks, job);

            if self.live_workers() == 0 && !self.respawn_possible() {
                return Err(PoolError::NoWorkers { pending: n - done });
            }

            match self.events_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(ev) => self.handle_event(ev, &mut results, &mut pending, &mut done)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("pool holds an event sender")
                }
            }
            self.check_timeouts(&mut pending)?;
        }
        Ok(results.into_iter().map(|r| r.expect("all tasks completed")).collect())
    }

    // -----------------------------------------------------------------
    // Shuffle stages
    // -----------------------------------------------------------------

    /// Runs a full map → shuffle → reduce stage. `map_tasks` supply the
    /// map-side schema/input/ops and payloads; their sinks are replaced
    /// by the pool so both [`ShuffleMode`]s bucket rows identically.
    /// Returns one [`TaskResult`] per partition, in partition order.
    ///
    /// In [`ShuffleMode::Remote`], map outputs lost to a worker death
    /// (or served corrupt) are re-produced via lineage at a bumped
    /// epoch, up to [`WorkerPoolConfig::max_shuffle_regens`] rounds.
    pub fn run_shuffle(
        &mut self,
        map_tasks: &[DistTask],
        spec: &ShuffleSpec,
    ) -> Result<Vec<TaskResult>, PoolError> {
        if map_tasks.is_empty() {
            return Ok(Vec::new());
        }
        match spec.mode {
            ShuffleMode::SharedStore => self.run_shuffle_shared(map_tasks, spec),
            ShuffleMode::Remote => self.run_shuffle_remote(map_tasks, spec),
        }
    }

    /// Current epoch of a remote-shuffle stage's map-output registry
    /// (`None` if the stage never ran in [`ShuffleMode::Remote`]).
    pub fn shuffle_epoch(&self, prefix: &str) -> Option<u64> {
        self.map_outputs.get(prefix).map(|r| r.epoch)
    }

    fn run_shuffle_shared(
        &mut self,
        map_tasks: &[DistTask],
        spec: &ShuffleSpec,
    ) -> Result<Vec<TaskResult>, PoolError> {
        let schema = map_tasks[0].fragment.schema.clone();
        let staged: Vec<DistTask> = map_tasks
            .iter()
            .enumerate()
            .map(|(task, d)| {
                let mut frag = d.fragment.clone();
                frag.sink = PlanSink::ShuffleWrite {
                    partitioner: spec.partitioner.clone(),
                    arg: spec.partitioner_arg.clone(),
                    num_partitions: spec.num_partitions,
                    prefix: spec.prefix.clone(),
                    task,
                };
                DistTask { fragment: frag, payload: d.payload.clone() }
            })
            .collect();
        let counts: Vec<Vec<u64>> = self
            .execute(&staged)?
            .into_iter()
            .map(|r| match r.output {
                TaskOutput::BucketCounts(c) => c,
                other => panic!("shuffle map task returned {other:?}, not bucket counts"),
            })
            .collect();
        let reduces: Vec<DistTask> = (0..spec.num_partitions)
            .map(|p| {
                DistTask::new(PlanFragment {
                    schema: schema.clone(),
                    input: PlanInput::Store {
                        keys: bucket_keys_for_partition(&spec.prefix, &counts, p),
                    },
                    ops: spec.reduce_ops.clone(),
                    sink: spec.reduce_sink.clone(),
                })
            })
            .collect();
        self.execute(&reduces)
    }

    fn run_shuffle_remote(
        &mut self,
        map_tasks: &[DistTask],
        spec: &ShuffleSpec,
    ) -> Result<Vec<TaskResult>, PoolError> {
        let schema = map_tasks[0].fragment.schema.clone();
        self.map_outputs.insert(spec.prefix.clone(), ShuffleRegistry::default());

        // Map stage, epoch 0: every producer keeps its buckets local.
        let all: Vec<usize> = (0..map_tasks.len()).collect();
        self.produce_map_outputs(map_tasks, spec, &all, 0)?;

        let mut rounds = 0u32;
        loop {
            // Outputs whose producer incarnation is gone are lost; their
            // map tasks re-run on survivors at a bumped epoch (lineage).
            self.invalidate_dead_outputs(&spec.prefix);
            let missing: Vec<usize> = {
                let reg = &self.map_outputs[&spec.prefix];
                (0..map_tasks.len()).filter(|t| !reg.entries.contains_key(t)).collect()
            };
            if !missing.is_empty() {
                let epoch = {
                    let reg = self.map_outputs.get_mut(&spec.prefix).expect("stage registered");
                    reg.epoch += 1;
                    reg.epoch
                };
                self.produce_map_outputs(map_tasks, spec, &missing, epoch)?;
                // a producer may have died again during regeneration;
                // re-check before building reduce inputs
                continue;
            }

            let reduces: Vec<DistTask> = (0..spec.num_partitions)
                .map(|p| {
                    DistTask::new(PlanFragment {
                        schema: schema.clone(),
                        input: PlanInput::Fetch { sources: self.fetch_sources(&spec.prefix, p) },
                        ops: spec.reduce_ops.clone(),
                        sink: spec.reduce_sink.clone(),
                    })
                })
                .collect();
            match self.execute_traced(&reduces) {
                Ok(traced) => {
                    return Ok(traced.into_iter().map(|(r, _, _)| r).collect());
                }
                Err(PoolError::FetchFailed { task: _, failure }) => {
                    rounds += 1;
                    if rounds > self.cfg.max_shuffle_regens {
                        return Err(PoolError::ShuffleRegensExhausted {
                            prefix: spec.prefix.clone(),
                            rounds,
                        });
                    }
                    // Let in-flight reduces of the aborted round settle
                    // so their answers can't be mistaken for the next
                    // round's (task ids restart at 0 every job).
                    self.quiesce();
                    if !failure.stale {
                        // The peer is unreachable or serving unusable
                        // bytes: take it down. invalidate_dead_outputs
                        // reaps its registry entries on the next pass.
                        self.fail_address(&failure.addr);
                    }
                    // Stale epoch needs no invalidation: the registry has
                    // already moved on, and the rebuilt sources carry the
                    // new epoch.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs the given map tasks with local-bucket sinks at `epoch` and
    /// registers their outputs. An output whose producer died before
    /// registration counts as lost — it was produced but never servable,
    /// and the next round re-produces it.
    fn produce_map_outputs(
        &mut self,
        map_tasks: &[DistTask],
        spec: &ShuffleSpec,
        which: &[usize],
        epoch: u64,
    ) -> Result<(), PoolError> {
        let staged: Vec<DistTask> = which
            .iter()
            .map(|&task| {
                let mut frag = map_tasks[task].fragment.clone();
                frag.sink = PlanSink::ShuffleWriteLocal {
                    partitioner: spec.partitioner.clone(),
                    arg: spec.partitioner_arg.clone(),
                    num_partitions: spec.num_partitions,
                    prefix: spec.prefix.clone(),
                    task,
                    epoch,
                };
                DistTask { fragment: frag, payload: map_tasks[task].payload.clone() }
            })
            .collect();
        let traced = self.execute_traced(&staged)?;
        let mut lost = 0u64;
        let mut regenerated = 0u64;
        for (i, (result, seat, gen)) in traced.into_iter().enumerate() {
            let task = which[i];
            let counts = match result.output {
                TaskOutput::BucketCounts(c) => c,
                other => panic!("shuffle map task returned {other:?}, not bucket counts"),
            };
            let port = self.slots[seat].shuffle_port;
            if self.slots[seat].gen != gen || !self.slots[seat].is_live() || port == 0 {
                lost += 1;
                continue;
            }
            let reg = self.map_outputs.get_mut(&spec.prefix).expect("stage registered");
            if reg.register(task, MapOutputEntry { seat, gen, port, epoch, counts }) && epoch > 0 {
                regenerated += 1;
            }
        }
        self.stats.map_outputs_lost += lost;
        self.stats.map_outputs_regenerated += regenerated;
        self.metric(|m| {
            m.inc_map_outputs_lost(lost);
            m.inc_map_outputs_regenerated(regenerated);
        });
        Ok(())
    }

    /// Drops registry entries whose producer incarnation is no longer
    /// live and counts them lost. Returns how many were dropped.
    fn invalidate_dead_outputs(&mut self, prefix: &str) -> u64 {
        let live: Vec<(u64, bool)> = self.slots.iter().map(|s| (s.gen, s.is_live())).collect();
        let Some(reg) = self.map_outputs.get_mut(prefix) else { return 0 };
        let before = reg.entries.len();
        reg.entries.retain(|_, e| live[e.seat] == (e.gen, true));
        let lost = (before - reg.entries.len()) as u64;
        if lost > 0 {
            self.stats.map_outputs_lost += lost;
            self.metric(|m| m.inc_map_outputs_lost(lost));
        }
        lost
    }

    /// Takes down the live seat currently serving `addr` (shape
    /// `127.0.0.1:<port>`). Entries registered against an *older*
    /// incarnation of this seat fall out via the gen check in
    /// [`Self::invalidate_dead_outputs`] instead.
    fn fail_address(&mut self, addr: &str) {
        let Some(port) = addr.rsplit(':').next().and_then(|p| p.parse::<u16>().ok()) else {
            return;
        };
        for seat in 0..self.slots.len() {
            if self.slots[seat].shuffle_port == port && self.slots[seat].is_live() {
                self.mark_down(seat, "unusable shuffle server", &mut VecDeque::new(), true);
            }
        }
    }

    /// Builds the fetch list for one reduce partition, in map-task order
    /// so concatenation matches the shared-store path byte for byte.
    /// Zero-count buckets are skipped — they were never written.
    fn fetch_sources(&self, prefix: &str, partition: usize) -> Vec<FetchSource> {
        let reg = &self.map_outputs[prefix];
        let mut tasks: Vec<usize> = reg.entries.keys().copied().collect();
        tasks.sort_unstable();
        tasks
            .into_iter()
            .filter_map(|task| {
                let e = &reg.entries[&task];
                if e.counts.get(partition).copied().unwrap_or(0) == 0 {
                    return None;
                }
                Some(FetchSource {
                    addr: format!("127.0.0.1:{}", e.port),
                    key: shuffle_bucket_key(prefix, task, partition),
                    epoch: e.epoch,
                })
            })
            .collect()
    }

    /// Waits for every Busy slot to settle (answer, die, or hit its
    /// deadline) after an aborted job. Anything still wedged past the
    /// task timeout is taken down so its eventual answer arrives under a
    /// stale incarnation and is discarded.
    fn quiesce(&mut self) {
        let deadline = Instant::now() + self.cfg.task_timeout;
        while self.slots.iter().any(|s| matches!(s.state, SlotState::Busy { .. })) {
            if Instant::now() >= deadline {
                break;
            }
            match self.events_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Event::Msg { seat, gen, msg, .. }) => {
                    if self.slots[seat].gen != gen {
                        continue;
                    }
                    let answered = match msg {
                        WorkerMsg::TaskOk { id, .. } | WorkerMsg::TaskErr { id, .. } => Some(id),
                        _ => None,
                    };
                    if let Some(id) = answered {
                        if matches!(
                            self.slots[seat].state,
                            SlotState::Busy { task, .. } if task == id as usize
                        ) {
                            self.slots[seat].state = SlotState::Idle;
                        }
                    }
                }
                Ok(Event::Gone { seat, gen, reason }) => {
                    if self.slots[seat].gen == gen && self.slots[seat].is_live() {
                        self.mark_down(seat, &reason, &mut VecDeque::new(), true);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for seat in 0..self.slots.len() {
            if matches!(self.slots[seat].state, SlotState::Busy { .. }) {
                self.mark_down(seat, "wedged during quiesce", &mut VecDeque::new(), true);
            }
        }
    }

    /// Discards events and in-flight bookkeeping left over from an
    /// aborted previous job. `Gone` events are still honoured (the
    /// worker is genuinely dead, just not reassigned — its task belongs
    /// to a job that already failed).
    fn reset_for_new_job(&mut self) {
        while let Ok(ev) = self.events_rx.try_recv() {
            if let Event::Gone { seat, gen, reason } = ev {
                if self.slots[seat].gen == gen && self.slots[seat].is_live() {
                    self.mark_down(seat, &reason, &mut VecDeque::new(), true);
                }
            }
        }
        for slot in &mut self.slots {
            if matches!(slot.state, SlotState::Busy { .. }) {
                slot.state = SlotState::Idle;
            }
        }
    }

    fn respawn_possible(&self) -> bool {
        self.slots.iter().any(|s| !s.is_live() && s.respawns_left > 0 && s.next_respawn.is_some())
    }

    fn respawn_due(&mut self) {
        for seat in 0..self.slots.len() {
            let due = {
                let s = &self.slots[seat];
                !s.is_live()
                    && s.respawns_left > 0
                    && s.next_respawn.is_some_and(|t| Instant::now() >= t)
            };
            if due {
                self.slots[seat].respawns_left -= 1;
                match self.spawn_worker(seat) {
                    Ok(()) => {
                        self.stats.workers_respawned += 1;
                        self.metric(|m| m.inc_workers_respawned());
                    }
                    Err(_) if self.slots[seat].respawns_left > 0 => {
                        // schedule another attempt, backoff grown
                        let exp = self.slots[seat].consecutive_failures;
                        let wait = self.jittered_backoff(exp);
                        self.slots[seat].consecutive_failures += 1;
                        self.slots[seat].next_respawn = Some(Instant::now() + wait);
                    }
                    Err(_) => {
                        self.slots[seat].next_respawn = None;
                    }
                }
            }
        }
    }

    fn assign_pending(
        &mut self,
        pending: &mut VecDeque<(usize, u32)>,
        tasks: &[DistTask],
        job: u64,
    ) {
        for seat in 0..self.slots.len() {
            if pending.is_empty() {
                return;
            }
            if matches!(self.slots[seat].state, SlotState::Idle) {
                let (task, attempt) = pending.pop_front().expect("checked non-empty");
                if let Err(reason) = self.dispatch(seat, task, attempt, &tasks[task], job) {
                    // The send itself failed: the task never reached the
                    // worker, so requeue it at the same attempt. Clear the
                    // Busy state first so mark_down does not reassign it a
                    // second time.
                    self.slots[seat].state = SlotState::Idle;
                    pending.push_front((task, attempt));
                    self.mark_down(seat, &reason, pending, false);
                }
            }
        }
    }

    /// Sends one task to one worker, applying any injected transport
    /// fault. Returns `Err(reason)` if the transport write failed.
    fn dispatch(
        &mut self,
        seat: usize,
        task: usize,
        attempt: u32,
        dist: &DistTask,
        job: u64,
    ) -> Result<(), String> {
        let policy = self.cfg.chaos.as_ref().and_then(|c| c.draw(job, task as u64, attempt));
        let deadline = Instant::now() + self.cfg.task_timeout;
        self.slots[seat].state = SlotState::Busy { task, attempt, deadline };
        self.stats.tasks_dispatched += 1;
        self.metric(|m| m.inc_remote_tasks());

        let msg = DriverMsg::Task {
            id: task as u64,
            attempt,
            fragment: dist.fragment.clone(),
            has_payload: dist.payload.is_some(),
        };

        match policy {
            Some(TransportPolicy::DropFrame) => {
                // the worker never hears about the task; the per-task
                // deadline recovers it
                return Ok(());
            }
            Some(TransportPolicy::KillWorker) => {
                // Fail-stop crash at dispatch: the victim dies before the
                // task frame lands, so the in-flight task is always
                // recovered by reassignment (never by a duplicate
                // completion racing the kill). The reader thread reports
                // EOF and the Gone path takes over.
                if let Some(child) = &mut self.slots[seat].child {
                    let _ = child.kill();
                }
                return Ok(());
            }
            Some(TransportPolicy::DelayFrame(d)) => std::thread::sleep(d),
            _ => {}
        }

        let payload_len = dist.payload.as_ref().map(|p| p.len() as u64).unwrap_or(0);
        let writer = self.slots[seat].writer.as_mut().expect("live worker has a writer");
        let send_result = match policy {
            Some(TransportPolicy::TruncateFrame) => send_truncated(writer, &msg),
            Some(TransportPolicy::CorruptFrame) => send_corrupted(writer, &msg),
            _ => {
                let r = send_msg(writer, &msg);
                match (&r, &dist.payload) {
                    (Ok(()), Some(p)) => write_frame(writer, p),
                    _ => r,
                }
            }
        };
        send_result.map_err(|e| format!("dispatch: {e}"))?;
        let _ = writer.flush();
        self.stats.bytes_tx += payload_len;
        self.metric(|m| m.add_remote_bytes_tx(payload_len));
        Ok(())
    }

    fn handle_event(
        &mut self,
        ev: Event,
        results: &mut [Option<(TaskResult, usize, u64)>],
        pending: &mut VecDeque<(usize, u32)>,
        done: &mut usize,
    ) -> Result<(), PoolError> {
        match ev {
            Event::Msg { seat, gen, msg, rows } => {
                if self.slots[seat].gen != gen {
                    return Ok(()); // stale incarnation
                }
                match msg {
                    WorkerMsg::TaskOk { id, output, micros: _, fetch_retries, fetch_bytes } => {
                        let matches_busy = matches!(
                            self.slots[seat].state,
                            SlotState::Busy { task, .. } if task == id as usize
                        );
                        if !matches_busy {
                            return Ok(()); // answer to an abandoned job
                        }
                        let task = id as usize;
                        self.slots[seat].state = SlotState::Idle;
                        self.slots[seat].consecutive_failures = 0;
                        self.stats.fetch_retries += fetch_retries;
                        self.stats.shuffle_bytes_fetched_remote += fetch_bytes;
                        self.metric(|m| {
                            m.inc_fetch_retries(fetch_retries);
                            m.add_shuffle_bytes_fetched_remote(fetch_bytes);
                        });
                        if results[task].is_some() {
                            return Ok(()); // duplicate of an already-recovered task
                        }
                        let bytes = rows.as_ref().map(|r| r.len() as u64).unwrap_or(0);
                        self.stats.bytes_rx += bytes;
                        self.metric(|m| m.add_remote_bytes_rx(bytes));
                        results[task] = Some((TaskResult { output, payload: rows }, seat, gen));
                        *done += 1;
                        self.stats.tasks_completed += 1;
                    }
                    WorkerMsg::TaskErr { id, message, retryable, fetch_retries, fetch } => {
                        let busy = match self.slots[seat].state {
                            SlotState::Busy { task, attempt, .. } if task == id as usize => {
                                Some((task, attempt))
                            }
                            _ => None,
                        };
                        let Some((task, attempt)) = busy else { return Ok(()) };
                        self.slots[seat].state = SlotState::Idle;
                        self.stats.fetch_retries += fetch_retries;
                        self.metric(|m| m.inc_fetch_retries(fetch_retries));
                        if let Some(failure) = fetch {
                            // escalate to the lost-output recovery loop
                            // instead of burning generic task retries
                            self.stats.fetch_failures += 1;
                            self.metric(|m| m.inc_fetch_failures(1));
                            return Err(PoolError::FetchFailed { task, failure });
                        }
                        if !retryable {
                            return Err(PoolError::TaskFailed { task, message });
                        }
                        if attempt + 1 > self.cfg.max_task_retries {
                            return Err(PoolError::RetriesExhausted {
                                task,
                                attempts: attempt + 1,
                                last: message,
                            });
                        }
                        self.stats.tasks_retried += 1;
                        pending.push_back((task, attempt + 1));
                    }
                    // liveness traffic is consumed by the reader thread
                    WorkerMsg::Hello { .. }
                    | WorkerMsg::Pong { .. }
                    | WorkerMsg::Heartbeat { .. } => {}
                }
            }
            Event::Gone { seat, gen, reason } => {
                if self.slots[seat].gen != gen || !self.slots[seat].is_live() {
                    return Ok(()); // stale or already handled
                }
                self.mark_down(seat, &reason, pending, false);
                if let Some((_, attempt)) = pending.back() {
                    if *attempt > self.cfg.max_task_retries {
                        let (task, attempt) = pending.pop_back().expect("just observed");
                        return Err(PoolError::RetriesExhausted {
                            task,
                            attempts: attempt,
                            last: reason,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Declares a worker lost: kills the process, reassigns its
    /// in-flight task (unless `abandon_task`) and schedules a respawn
    /// with jittered exponential backoff.
    fn mark_down(
        &mut self,
        seat: usize,
        reason: &str,
        pending: &mut VecDeque<(usize, u32)>,
        abandon_task: bool,
    ) {
        let _ = reason;
        let slot = &mut self.slots[seat];
        if let Some(child) = &mut slot.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
        slot.writer = None;
        if let SlotState::Busy { task, attempt, .. } = slot.state {
            if !abandon_task {
                // lineage-based reassignment: the task's input is either
                // inline (driver still holds it) or in the shared store,
                // so any survivor can recompute it
                self.stats.tasks_reassigned += 1;
                self.metric(|m| m.inc_tasks_reassigned());
                pending.push_back((task, attempt + 1));
            }
        }
        let slot = &mut self.slots[seat];
        slot.state = SlotState::Down;
        let exp = slot.consecutive_failures;
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        let respawnable = slot.respawns_left > 0;
        self.stats.workers_lost += 1;
        self.metric(|m| m.inc_workers_lost());
        if respawnable {
            let wait = self.jittered_backoff(exp);
            self.slots[seat].next_respawn = Some(Instant::now() + wait);
        }
    }

    fn check_timeouts(&mut self, pending: &mut VecDeque<(usize, u32)>) -> Result<(), PoolError> {
        let now = Instant::now();
        for seat in 0..self.slots.len() {
            if !self.slots[seat].is_live() {
                continue;
            }
            let silent =
                self.slots[seat].last_seen.lock().unwrap().elapsed() > self.cfg.heartbeat_timeout;
            let overdue = matches!(
                self.slots[seat].state,
                SlotState::Busy { deadline, .. } if now >= deadline
            );
            if silent || overdue {
                self.mark_down(
                    seat,
                    if silent { "heartbeat timeout" } else { "task deadline exceeded" },
                    pending,
                    false,
                );
                if let Some((task, attempt)) = pending.back().copied() {
                    if attempt > self.cfg.max_task_retries {
                        pending.pop_back();
                        return Err(PoolError::RetriesExhausted {
                            task,
                            attempts: attempt,
                            last: if silent {
                                "heartbeat timeout".into()
                            } else {
                                "task deadline exceeded".into()
                            },
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Deterministic jittered exponential backoff: `base * 2^exp`,
    /// scaled by a seeded draw in `[0.5, 1.5)` so seats that died
    /// together don't respawn in lockstep.
    fn jittered_backoff(&mut self, exp: u32) -> Duration {
        let scaled = self.cfg.respawn_backoff * (1u32 << exp.min(6));
        self.rng = splitmix64(self.rng);
        let factor = 0.5 + (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        scaled.mul_f64(factor)
    }

    /// Waits up to `timeout` for scheduled respawns to bring lost seats
    /// back, forking each as its backoff expires. Respawns normally
    /// happen inside [`Self::execute`]'s scheduling loop; call this
    /// between jobs to restore full capacity before dispatching the next
    /// stage. Returns the number of live workers afterwards.
    pub fn heal(&mut self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            // honour loss reports that arrived while the pool was idle
            while let Ok(ev) = self.events_rx.try_recv() {
                if let Event::Gone { seat, gen, reason } = ev {
                    if self.slots[seat].gen == gen && self.slots[seat].is_live() {
                        self.mark_down(seat, &reason, &mut VecDeque::new(), true);
                    }
                }
            }
            self.respawn_due();
            if self.live_workers() == self.slots.len()
                || Instant::now() >= deadline
                || !self.respawn_possible()
            {
                return self.live_workers();
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Graceful drain: ask every live worker to finish and exit, wait
    /// briefly, then kill stragglers. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        for slot in &mut self.slots {
            if let Some(w) = &mut slot.writer {
                let _ = send_msg(w, &DriverMsg::Drain);
                let _ = w.flush();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        for slot in &mut self.slots {
            if let Some(child) = &mut slot.child {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            slot.child = None;
            slot.writer = None;
            slot.state = SlotState::Down;
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Reader thread + chaos frame writers
// ---------------------------------------------------------------------------

fn reader_loop(
    mut reader: BufReader<TcpStream>,
    seat: usize,
    gen: u64,
    tx: Sender<Event>,
    last_seen: Arc<Mutex<Instant>>,
    heartbeats: Arc<AtomicU64>,
) {
    loop {
        match recv_msg::<WorkerMsg>(&mut reader) {
            Ok(Some(msg)) => {
                *last_seen.lock().unwrap() = Instant::now();
                if matches!(msg, WorkerMsg::Heartbeat { .. }) {
                    heartbeats.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let rows = if matches!(&msg, WorkerMsg::TaskOk { output, .. } if output.has_payload())
                {
                    match recv_payload(&mut reader) {
                        Ok(p) => Some(p),
                        Err(e) => {
                            let _ = tx.send(Event::Gone {
                                seat,
                                gen,
                                reason: format!("result payload: {e}"),
                            });
                            return;
                        }
                    }
                } else {
                    None
                };
                if tx.send(Event::Msg { seat, gen, msg, rows }).is_err() {
                    return; // pool dropped
                }
            }
            Ok(None) => {
                let _ = tx.send(Event::Gone { seat, gen, reason: "connection closed".into() });
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Gone { seat, gen, reason: e.to_string() });
                return;
            }
        }
    }
}

/// Chaos: writes a frame whose length prefix promises more bytes than
/// follow — the receiver blocks mid-frame, wedged but heartbeating.
fn send_truncated(w: &mut impl Write, msg: &DriverMsg) -> io::Result<()> {
    let payload = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    let mut buf = Vec::new();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(FRAME_MAGIC);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload[..payload.len() / 2]);
    w.write_all(&buf)
}

/// Chaos: writes a complete frame whose payload was bit-flipped after
/// the checksum was computed — the receiver detects the mismatch and
/// fail-stops.
fn send_corrupted(w: &mut impl Write, msg: &DriverMsg) -> io::Result<()> {
    let mut payload = serde_json::to_vec(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encode: {e}")))?;
    let crc = crc32(&payload);
    let mid = payload.len() / 2;
    payload[mid] ^= 0x40;
    let mut buf = Vec::new();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(FRAME_MAGIC);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&payload);
    w.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_output_guard_keeps_the_newest_epoch() {
        let mut reg = ShuffleRegistry::default();
        let entry = |seat: usize, epoch: u64| MapOutputEntry {
            seat,
            gen: 1,
            port: 40000,
            epoch,
            counts: vec![1, 2],
        };
        assert!(reg.register(7, entry(0, 0)));
        // a straggling duplicate at the same epoch is rejected
        assert!(!reg.register(7, entry(1, 0)));
        assert_eq!(reg.entries[&7].seat, 0);
        // a regenerated output at a bumped epoch wins
        assert!(reg.register(7, entry(2, 1)));
        assert_eq!(reg.entries[&7].seat, 2);
        // ...and the late original can no longer clobber it
        assert!(!reg.register(7, entry(0, 0)));
        assert_eq!(reg.entries[&7].epoch, 1);
    }

    #[test]
    fn bucket_keys_skip_empty_buckets() {
        let counts = vec![vec![2, 0, 1], vec![0, 0, 3], vec![1, 0, 0]];
        assert_eq!(
            bucket_keys_for_partition("sh", &counts, 0),
            vec!["sh/task-00000/bucket-00000", "sh/task-00002/bucket-00000"]
        );
        assert!(bucket_keys_for_partition("sh", &counts, 1).is_empty());
        assert_eq!(
            bucket_keys_for_partition("sh", &counts, 2),
            vec!["sh/task-00000/bucket-00002", "sh/task-00001/bucket-00002"]
        );
    }

    #[test]
    fn pool_error_displays() {
        let e = PoolError::RetriesExhausted { task: 3, attempts: 4, last: "gone".into() };
        assert!(e.to_string().contains("task 3"));
        assert!(PoolError::NoWorkers { pending: 2 }.to_string().contains("2 tasks"));
    }

    #[test]
    fn find_worker_bin_rejects_missing() {
        assert!(find_worker_bin("definitely-not-a-real-binary-name").is_none());
    }
}
