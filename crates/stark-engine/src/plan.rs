//! Serializable plan fragments — tasks as bytes.
//!
//! The executor's native task representation is a boxed closure, which
//! cannot cross a process boundary. A [`PlanFragment`] is the wire-form
//! equivalent: an op-code chain over [`StoreData`] rows (map / filter /
//! flat-map / per-partition ops), a terminal [`PlanSink`] (collect,
//! count, shuffle write, checkpoint), and an input source (rows shipped
//! inline with the task, or shuffle buckets read from the shared object
//! store). A fragment serialises to JSON and ships inside one STK1
//! frame.
//!
//! Closures do not serialise, so ops are *named*: driver and worker both
//! build an [`OpRegistry`] that maps op names to closure factories, and
//! a fragment references ops by name plus a JSON argument. A worker that
//! receives a fragment for a schema or op it does not know fails the
//! task with a typed [`PlanError`] instead of guessing.
//!
//! The same registry also drives local execution ([`OpRegistry::apply_ops`]
//! builds the identical closure chain onto an [`Rdd`]), so a plan runs
//! byte-identically in-process and on a worker — the invariant the
//! distributed chaos suite pins.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::rdd::{checkpoint_blob_key, Rdd, StoreData};
use crate::shuffle::{FetchFailure, FetchSource, ShuffleEnv};
use crate::storage::{ObjectStore, StorageError};

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// A self-contained task description: input, op chain, sink.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PlanFragment {
    /// Row-schema name; the executing side dispatches to the registry
    /// registered under this name.
    pub schema: String,
    /// Where the input rows come from.
    pub input: PlanInput,
    /// Narrow op chain applied in order (the serialised form of a fused
    /// map/filter stage).
    pub ops: Vec<PlanOp>,
    /// Terminal operation deciding what the task produces.
    pub sink: PlanSink,
}

/// Input source of a plan fragment.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PlanInput {
    /// The input rows travel with the task as one raw payload frame
    /// (JSON-encoded `Vec<T>`).
    Inline,
    /// Read and concatenate these object-store blobs, in order — the
    /// shuffle-read side, where `keys` are the bucket blobs written by
    /// the map tasks of the previous stage.
    Store { keys: Vec<String> },
    /// Remote-shuffle read: fetch each bucket from the peer worker that
    /// produced it (in map-task order, so concatenation matches the
    /// `Store` path byte-for-byte) and concatenate. A fetch that
    /// exhausts its retry budget surfaces as [`PlanError::FetchFailed`],
    /// which the driver treats as a lost-map-output signal.
    Fetch { sources: Vec<FetchSource> },
}

/// One narrow operation, referenced by registered name plus argument.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PlanOp {
    Map { op: String, arg: Value },
    Filter { op: String, arg: Value },
    FlatMap { op: String, arg: Value },
    MapPartitions { op: String, arg: Value },
}

impl PlanOp {
    fn name(&self) -> &str {
        match self {
            PlanOp::Map { op, .. }
            | PlanOp::Filter { op, .. }
            | PlanOp::FlatMap { op, .. }
            | PlanOp::MapPartitions { op, .. } => op,
        }
    }
}

/// Terminal operation of a plan fragment.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum PlanSink {
    /// Ship the resulting rows back (JSON `Vec<T>` payload frame).
    Collect,
    /// Ship only the row count back.
    Count,
    /// Fold the rows through a registered collector op and ship its JSON
    /// value back — for results whose type differs from the row schema
    /// (join pairs, aggregates).
    CollectWith { op: String, arg: Value },
    /// Shuffle-write: route each row through the named partitioner and
    /// write every non-empty bucket to the shared store under
    /// [`shuffle_bucket_key`]`(prefix, task, bucket)`. Ships per-bucket
    /// row counts back, from which the driver derives the exact bucket
    /// keys for the reduce stage.
    ShuffleWrite {
        partitioner: String,
        arg: Value,
        num_partitions: usize,
        prefix: String,
        task: usize,
    },
    /// Persist the resulting rows as a checkpoint partition blob —
    /// byte-compatible with [`Rdd::checkpoint`], so a local engine can
    /// recover from blobs written by workers.
    Checkpoint { key: String, partition: usize },
    /// Remote-shuffle write: identical bucketing to `ShuffleWrite`, but
    /// the buckets land in the executing worker's *local* shuffle store,
    /// registered under `epoch`, and are served to reducers over the
    /// worker's shuffle port instead of a shared directory.
    ShuffleWriteLocal {
        partitioner: String,
        arg: Value,
        num_partitions: usize,
        prefix: String,
        task: usize,
        /// Shuffle epoch of this output generation; bumped by the driver
        /// when lost outputs are regenerated, so reducers holding stale
        /// source lists are rejected instead of served mixed data.
        epoch: u64,
    },
}

/// What a task produced. Row payloads travel as their own raw frame
/// (never base64'd into the JSON envelope); this enum carries the
/// metadata.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum TaskOutput {
    /// `PlanSink::Collect` result: the JSON `Vec<T>` payload frame that
    /// follows holds `rows` rows in `bytes` bytes.
    Rows { rows: u64, bytes: u64 },
    /// `PlanSink::Count` result.
    Count(u64),
    /// `PlanSink::CollectWith` result.
    Json(Value),
    /// `PlanSink::ShuffleWrite` result: rows routed per bucket.
    BucketCounts(Vec<u64>),
    /// `PlanSink::Checkpoint` result.
    Checkpointed { key: String, rows: u64, bytes: u64 },
}

impl TaskOutput {
    /// Whether a raw payload frame accompanies this output on the wire.
    pub fn has_payload(&self) -> bool {
        matches!(self, TaskOutput::Rows { .. })
    }
}

/// A task's full result: the output metadata plus the raw row payload
/// when the sink was `Collect`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    pub output: TaskOutput,
    pub payload: Option<Vec<u8>>,
}

/// Spill-store key of one distributed shuffle bucket blob (mirrors the
/// in-process shuffle's spill layout).
pub fn shuffle_bucket_key(prefix: &str, task: usize, bucket: usize) -> String {
    format!("{prefix}/task-{task:05}/bucket-{bucket:05}")
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of plan resolution or execution.
#[derive(Debug)]
pub enum PlanError {
    /// The fragment names a schema this side has no registry for.
    SchemaMismatch {
        expected: String,
        got: String,
    },
    /// The fragment references an op name the registry does not know.
    UnknownOp {
        kind: &'static str,
        op: String,
    },
    /// An op argument failed to parse.
    BadArg {
        op: String,
        message: String,
    },
    /// `PlanInput::Inline` with no payload frame attached.
    MissingPayload,
    /// The sink or input needs the shared object store, but none was
    /// configured on this side.
    MissingStore,
    /// The sink or input needs a shuffle environment (remote shuffle),
    /// but this side has none.
    MissingShuffle,
    /// A remote bucket fetch exhausted its retry budget or was rejected
    /// as stale — the driver's cue to regenerate lost map outputs.
    FetchFailed(FetchFailure),
    /// A partitioner routed a row outside `0..num_partitions`.
    BadPartition {
        partition: usize,
        num_partitions: usize,
    },
    Storage(StorageError),
    Serde(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::SchemaMismatch { expected, got } => {
                write!(f, "plan schema {got:?} does not match registry schema {expected:?}")
            }
            PlanError::UnknownOp { kind, op } => write!(f, "unknown {kind} op {op:?}"),
            PlanError::BadArg { op, message } => write!(f, "bad argument for op {op:?}: {message}"),
            PlanError::MissingPayload => write!(f, "inline plan input without a payload frame"),
            PlanError::MissingStore => write!(f, "plan needs an object store but none is attached"),
            PlanError::MissingShuffle => {
                write!(f, "plan needs a shuffle environment but none is attached")
            }
            PlanError::FetchFailed(failure) => write!(f, "shuffle {failure}"),
            PlanError::BadPartition { partition, num_partitions } => {
                write!(f, "partitioner routed a row to {partition} of {num_partitions}")
            }
            PlanError::Storage(e) => write!(f, "plan storage error: {e}"),
            PlanError::Serde(m) => write!(f, "plan (de)serialisation error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}

impl From<serde_json::Error> for PlanError {
    fn from(e: serde_json::Error) -> Self {
        PlanError::Serde(e.to_string())
    }
}

/// Whether a failed plan is worth re-running. Resolution errors (unknown
/// op, bad schema, bad argument) are deterministic and fail every
/// attempt; storage and payload errors can be transient or fixed by
/// rerouting to another worker.
pub fn is_retryable(e: &PlanError) -> bool {
    !matches!(
        e,
        PlanError::SchemaMismatch { .. }
            | PlanError::UnknownOp { .. }
            | PlanError::BadArg { .. }
            | PlanError::BadPartition { .. }
            | PlanError::MissingShuffle
    )
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

/// Encodes a row slice as the canonical payload format (JSON array —
/// the same encoding the object store's `put_json` family uses, so
/// checkpoint blobs and shuffle buckets interoperate with local reads).
pub fn encode_rows<T: Serialize>(rows: &[T]) -> Result<Vec<u8>, PlanError> {
    Ok(serde_json::to_vec(rows)?)
}

/// Decodes a payload frame back into rows.
pub fn decode_rows<T: DeserializeOwned>(bytes: &[u8]) -> Result<Vec<T>, PlanError> {
    Ok(serde_json::from_slice(bytes)?)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A resolved map op: row in, row out.
pub type RowFn<T> = Arc<dyn Fn(T) -> T + Send + Sync>;
/// A resolved filter predicate.
pub type PredFn<T> = Arc<dyn Fn(&T) -> bool + Send + Sync>;
/// A resolved flat-map op.
pub type FlatFn<T> = Arc<dyn Fn(T) -> Vec<T> + Send + Sync>;
/// A resolved whole-partition op.
pub type PartsFn<T> = Arc<dyn Fn(Vec<T>) -> Vec<T> + Send + Sync>;
/// A resolved partitioner: row to bucket index.
pub type KeyFn<T> = Arc<dyn Fn(&T) -> usize + Send + Sync>;
/// A resolved collector: fold a partition's rows to one JSON value.
pub type CollectFn<T> = Arc<dyn Fn(Vec<T>) -> Result<Value, PlanError> + Send + Sync>;

type Factory<F> = Box<dyn Fn(&Value) -> Result<F, PlanError> + Send + Sync>;

/// Maps op names to closure factories for one row schema. Driver and
/// worker construct the same registry; a plan fragment is meaningful on
/// both sides because it only references ops by name.
pub struct OpRegistry<T> {
    schema: String,
    maps: HashMap<String, Factory<RowFn<T>>>,
    filters: HashMap<String, Factory<PredFn<T>>>,
    flat_maps: HashMap<String, Factory<FlatFn<T>>>,
    map_partitions: HashMap<String, Factory<PartsFn<T>>>,
    partitioners: HashMap<String, Factory<KeyFn<T>>>,
    collectors: HashMap<String, Factory<CollectFn<T>>>,
}

impl<T: StoreData> OpRegistry<T> {
    pub fn new(schema: impl Into<String>) -> Self {
        OpRegistry {
            schema: schema.into(),
            maps: HashMap::new(),
            filters: HashMap::new(),
            flat_maps: HashMap::new(),
            map_partitions: HashMap::new(),
            partitioners: HashMap::new(),
            collectors: HashMap::new(),
        }
    }

    /// The row schema this registry executes.
    pub fn schema(&self) -> &str {
        &self.schema
    }

    pub fn register_map(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<RowFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.maps.insert(name.into(), Box::new(factory));
    }

    pub fn register_filter(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<PredFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.filters.insert(name.into(), Box::new(factory));
    }

    pub fn register_flat_map(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<FlatFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.flat_maps.insert(name.into(), Box::new(factory));
    }

    pub fn register_map_partitions(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<PartsFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.map_partitions.insert(name.into(), Box::new(factory));
    }

    pub fn register_partitioner(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<KeyFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.partitioners.insert(name.into(), Box::new(factory));
    }

    pub fn register_collector(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&Value) -> Result<CollectFn<T>, PlanError> + Send + Sync + 'static,
    ) {
        self.collectors.insert(name.into(), Box::new(factory));
    }

    fn resolve<F>(
        kind: &'static str,
        table: &HashMap<String, Factory<F>>,
        op: &str,
        arg: &Value,
    ) -> Result<F, PlanError> {
        let factory =
            table.get(op).ok_or_else(|| PlanError::UnknownOp { kind, op: op.to_string() })?;
        factory(arg)
    }

    /// Runs a fragment over `payload` (for inline input) and `store`
    /// (for shuffle reads and store-writing sinks), returning the task
    /// result. This is the worker's entire task execution path, and is
    /// equally callable in-process — the chaos suite's "single-process
    /// mode" baseline. Remote-shuffle fragments additionally need a
    /// [`ShuffleEnv`]; use [`OpRegistry::execute_env`] for those.
    pub fn execute(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        store: Option<&ObjectStore>,
    ) -> Result<TaskResult, PlanError> {
        self.execute_env(fragment, payload, &ExecEnv { store, shuffle: None })
    }

    /// [`OpRegistry::execute`] with the full execution environment:
    /// the shared object store *and* the worker's shuffle half, so
    /// `Fetch` inputs and `ShuffleWriteLocal` sinks resolve.
    pub fn execute_env(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        env: &ExecEnv<'_>,
    ) -> Result<TaskResult, PlanError> {
        let store = env.store;
        if fragment.schema != self.schema {
            return Err(PlanError::SchemaMismatch {
                expected: self.schema.clone(),
                got: fragment.schema.clone(),
            });
        }

        let mut rows: Vec<T> = match &fragment.input {
            PlanInput::Inline => decode_rows(payload.ok_or(PlanError::MissingPayload)?)?,
            PlanInput::Store { keys } => {
                let store = store.ok_or(PlanError::MissingStore)?;
                let mut rows = Vec::new();
                for key in keys {
                    rows.extend(decode_rows::<T>(&store.get_bytes(key)?)?);
                }
                rows
            }
            PlanInput::Fetch { sources } => {
                let shuffle = env.shuffle.ok_or(PlanError::MissingShuffle)?;
                let mut rows = Vec::new();
                for src in sources {
                    let bytes = shuffle
                        .fetch(&src.addr, &src.key, src.epoch)
                        .map_err(PlanError::FetchFailed)?;
                    rows.extend(decode_rows::<T>(&bytes)?);
                }
                rows
            }
        };

        for op in &fragment.ops {
            rows = match op {
                PlanOp::Map { op, arg } => {
                    let f = Self::resolve("map", &self.maps, op, arg)?;
                    rows.into_iter().map(|t| f(t)).collect()
                }
                PlanOp::Filter { op, arg } => {
                    let f = Self::resolve("filter", &self.filters, op, arg)?;
                    rows.into_iter().filter(|t| f(t)).collect()
                }
                PlanOp::FlatMap { op, arg } => {
                    let f = Self::resolve("flat_map", &self.flat_maps, op, arg)?;
                    rows.into_iter().flat_map(|t| f(t)).collect()
                }
                PlanOp::MapPartitions { op, arg } => {
                    let f = Self::resolve("map_partitions", &self.map_partitions, op, arg)?;
                    f(rows)
                }
            };
        }

        match &fragment.sink {
            PlanSink::Collect => {
                let n = rows.len() as u64;
                let payload = encode_rows(&rows)?;
                let bytes = payload.len() as u64;
                Ok(TaskResult {
                    output: TaskOutput::Rows { rows: n, bytes },
                    payload: Some(payload),
                })
            }
            PlanSink::Count => {
                Ok(TaskResult { output: TaskOutput::Count(rows.len() as u64), payload: None })
            }
            PlanSink::CollectWith { op, arg } => {
                let f = Self::resolve("collector", &self.collectors, op, arg)?;
                Ok(TaskResult { output: TaskOutput::Json(f(rows)?), payload: None })
            }
            PlanSink::ShuffleWrite { partitioner, arg, num_partitions, prefix, task } => {
                let store = store.ok_or(PlanError::MissingStore)?;
                let key_fn = Self::resolve("partitioner", &self.partitioners, partitioner, arg)?;
                let buckets = route_buckets(&key_fn, rows, *num_partitions)?;
                let mut counts = Vec::with_capacity(buckets.len());
                for (b, bucket) in buckets.iter().enumerate() {
                    counts.push(bucket.len() as u64);
                    if !bucket.is_empty() {
                        store.put_bytes(
                            &shuffle_bucket_key(prefix, *task, b),
                            &encode_rows(bucket)?,
                        )?;
                    }
                }
                Ok(TaskResult { output: TaskOutput::BucketCounts(counts), payload: None })
            }
            PlanSink::ShuffleWriteLocal {
                partitioner,
                arg,
                num_partitions,
                prefix,
                task,
                epoch,
            } => {
                let shuffle = env.shuffle.ok_or(PlanError::MissingShuffle)?;
                let key_fn = Self::resolve("partitioner", &self.partitioners, partitioner, arg)?;
                let buckets = route_buckets(&key_fn, rows, *num_partitions)?;
                let mut counts = Vec::with_capacity(buckets.len());
                for (b, bucket) in buckets.iter().enumerate() {
                    counts.push(bucket.len() as u64);
                    if !bucket.is_empty() {
                        shuffle.put_bucket(
                            &shuffle_bucket_key(prefix, *task, b),
                            *epoch,
                            &encode_rows(bucket)?,
                        )?;
                    }
                }
                Ok(TaskResult { output: TaskOutput::BucketCounts(counts), payload: None })
            }
            PlanSink::Checkpoint { key, partition } => {
                let store = store.ok_or(PlanError::MissingStore)?;
                let blob_key = checkpoint_blob_key(key, *partition);
                let data = encode_rows(&rows)?;
                store.put_bytes(&blob_key, &data)?;
                Ok(TaskResult {
                    output: TaskOutput::Checkpointed {
                        key: blob_key,
                        rows: rows.len() as u64,
                        bytes: data.len() as u64,
                    },
                    payload: None,
                })
            }
        }
    }

    /// Applies a fragment's op chain to a local dataset, resolving the
    /// same named closures a worker would run. Local and distributed
    /// execution therefore share one plan — only the transport differs.
    pub fn apply_ops(&self, rdd: &Rdd<T>, ops: &[PlanOp]) -> Result<Rdd<T>, PlanError> {
        let mut cur = rdd.clone();
        for op in ops {
            cur = match op {
                PlanOp::Map { op, arg } => {
                    let f = Self::resolve("map", &self.maps, op, arg)?;
                    cur.map(move |t| f(t))
                }
                PlanOp::Filter { op, arg } => {
                    let f = Self::resolve("filter", &self.filters, op, arg)?;
                    cur.filter(move |t| f(t))
                }
                PlanOp::FlatMap { op, arg } => {
                    let f = Self::resolve("flat_map", &self.flat_maps, op, arg)?;
                    cur.flat_map(move |t| f(t))
                }
                PlanOp::MapPartitions { op, arg } => {
                    let f = Self::resolve("map_partitions", &self.map_partitions, op, arg)?;
                    cur.map_partitions(move |rows| f(rows))
                }
            };
        }
        Ok(cur)
    }

    /// Pre-flight check that every op a fragment references resolves
    /// against this registry (with its argument), without running it.
    pub fn validate(&self, fragment: &PlanFragment) -> Result<(), PlanError> {
        if fragment.schema != self.schema {
            return Err(PlanError::SchemaMismatch {
                expected: self.schema.clone(),
                got: fragment.schema.clone(),
            });
        }
        for op in &fragment.ops {
            match op {
                PlanOp::Map { op, arg } => Self::resolve("map", &self.maps, op, arg).map(|_| ())?,
                PlanOp::Filter { op, arg } => {
                    Self::resolve("filter", &self.filters, op, arg).map(|_| ())?
                }
                PlanOp::FlatMap { op, arg } => {
                    Self::resolve("flat_map", &self.flat_maps, op, arg).map(|_| ())?
                }
                PlanOp::MapPartitions { op, arg } => {
                    Self::resolve("map_partitions", &self.map_partitions, op, arg).map(|_| ())?
                }
            }
            let _ = op.name();
        }
        match &fragment.sink {
            PlanSink::CollectWith { op, arg } => {
                Self::resolve("collector", &self.collectors, op, arg).map(|_| ())?
            }
            PlanSink::ShuffleWrite { partitioner, arg, .. }
            | PlanSink::ShuffleWriteLocal { partitioner, arg, .. } => {
                Self::resolve("partitioner", &self.partitioners, partitioner, arg).map(|_| ())?
            }
            _ => {}
        }
        Ok(())
    }
}

/// Routes rows into `num_partitions` buckets via a resolved partitioner,
/// rejecting out-of-range indices — shared by the shared-store and
/// worker-local shuffle-write sinks so both bucket identically.
fn route_buckets<T>(
    key_fn: &KeyFn<T>,
    rows: Vec<T>,
    num_partitions: usize,
) -> Result<Vec<Vec<T>>, PlanError> {
    let mut buckets: Vec<Vec<T>> = (0..num_partitions).map(|_| Vec::new()).collect();
    for row in rows {
        let p = key_fn(&row);
        if p >= num_partitions {
            return Err(PlanError::BadPartition { partition: p, num_partitions });
        }
        buckets[p].push(row);
    }
    Ok(buckets)
}

// ---------------------------------------------------------------------------
// Schema-erased execution (worker-side dispatch)
// ---------------------------------------------------------------------------

/// Everything a task execution may touch beyond its inline payload: the
/// shared object store (classic shuffle reads, checkpoints) and the
/// worker's shuffle environment (remote bucket fetch/serve).
#[derive(Clone, Copy, Default)]
pub struct ExecEnv<'a> {
    pub store: Option<&'a ObjectStore>,
    pub shuffle: Option<&'a ShuffleEnv>,
}

/// Object-safe executor for one schema — what a worker keeps one of per
/// registered row type and dispatches to by `PlanFragment::schema`.
pub trait SchemaExecutor: Send + Sync {
    fn schema(&self) -> &str;
    fn execute(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        store: Option<&ObjectStore>,
    ) -> Result<TaskResult, PlanError>;

    /// Execution with the full [`ExecEnv`]. Defaults to the store-only
    /// path, so executors unaware of remote shuffle keep working (their
    /// fragments simply cannot use `Fetch`/`ShuffleWriteLocal`).
    fn execute_env(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        env: &ExecEnv<'_>,
    ) -> Result<TaskResult, PlanError> {
        self.execute(fragment, payload, env.store)
    }
}

impl<T: StoreData> SchemaExecutor for OpRegistry<T> {
    fn schema(&self) -> &str {
        OpRegistry::schema(self)
    }

    fn execute(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        store: Option<&ObjectStore>,
    ) -> Result<TaskResult, PlanError> {
        OpRegistry::execute(self, fragment, payload, store)
    }

    fn execute_env(
        &self,
        fragment: &PlanFragment,
        payload: Option<&[u8]>,
        env: &ExecEnv<'_>,
    ) -> Result<TaskResult, PlanError> {
        OpRegistry::execute_env(self, fragment, payload, env)
    }
}

// ---------------------------------------------------------------------------
// Built-in integer schema
// ---------------------------------------------------------------------------

/// Builds a single-integer-field object argument (`{"k": 3}`-style) —
/// the workspace's serde shim has no `json!` macro.
pub fn int_arg(field: &str, v: i64) -> Value {
    Value::Object(vec![(field.to_string(), Value::Int(v))])
}

fn arg_i64(op: &str, arg: &Value, field: &str) -> Result<i64, PlanError> {
    match arg.get_field(field) {
        Some(Value::Int(n)) => Ok(*n),
        Some(Value::UInt(n)) if *n <= i64::MAX as u64 => Ok(*n as i64),
        _ => Err(PlanError::BadArg {
            op: op.to_string(),
            message: format!("missing integer field {field:?} in {}", arg.to_json()),
        }),
    }
}

/// The engine's own `i64` row schema: arithmetic ops used by the engine
/// test suite and registered by every worker binary, so a bare engine
/// (no spatial layer) can exercise the full distributed path.
pub fn int_registry() -> OpRegistry<i64> {
    let mut r = OpRegistry::new("i64");
    r.register_map("add", |arg| {
        let k = arg_i64("add", arg, "k")?;
        Ok(Arc::new(move |x| x + k) as RowFn<i64>)
    });
    r.register_map("mul", |arg| {
        let k = arg_i64("mul", arg, "k")?;
        Ok(Arc::new(move |x| x * k) as RowFn<i64>)
    });
    r.register_filter("ge", |arg| {
        let k = arg_i64("ge", arg, "k")?;
        Ok(Arc::new(move |x: &i64| *x >= k) as PredFn<i64>)
    });
    r.register_filter("even", |_| Ok(Arc::new(|x: &i64| x % 2 == 0) as PredFn<i64>));
    r.register_flat_map("repeat", |arg| {
        let k = arg_i64("repeat", arg, "k")?.max(0) as usize;
        Ok(Arc::new(move |x| vec![x; k]) as FlatFn<i64>)
    });
    r.register_map_partitions("sort", |_| {
        Ok(Arc::new(|mut rows: Vec<i64>| {
            rows.sort_unstable();
            rows
        }) as PartsFn<i64>)
    });
    r.register_partitioner("mod", |arg| {
        let parts = arg_i64("mod", arg, "parts")?.max(1);
        Ok(Arc::new(move |x: &i64| x.rem_euclid(parts) as usize) as KeyFn<i64>)
    });
    r.register_collector("sum", |_| {
        Ok(Arc::new(|rows: Vec<i64>| Ok(Value::Int(rows.iter().sum::<i64>()))) as CollectFn<i64>)
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;

    fn temp_store(tag: &str) -> ObjectStore {
        let dir =
            std::env::temp_dir().join(format!("stark-plan-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ObjectStore::open(dir).unwrap()
    }

    fn frag(input: PlanInput, ops: Vec<PlanOp>, sink: PlanSink) -> PlanFragment {
        PlanFragment { schema: "i64".into(), input, ops, sink }
    }

    #[test]
    fn fragment_roundtrips_through_json() {
        let f = frag(
            PlanInput::Store { keys: vec!["a".into(), "b".into()] },
            vec![
                PlanOp::Map { op: "add".into(), arg: int_arg("k", 3) },
                PlanOp::Filter { op: "even".into(), arg: Value::Null },
            ],
            PlanSink::ShuffleWrite {
                partitioner: "mod".into(),
                arg: int_arg("parts", 4),
                num_partitions: 4,
                prefix: "spill/shuffle-1".into(),
                task: 2,
            },
        );
        let bytes = serde_json::to_vec(&f).unwrap();
        let back: PlanFragment = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn inline_chain_collects() {
        let r = int_registry();
        let f = frag(
            PlanInput::Inline,
            vec![
                PlanOp::Map { op: "mul".into(), arg: int_arg("k", 3) },
                PlanOp::Filter { op: "ge".into(), arg: int_arg("k", 10) },
            ],
            PlanSink::Collect,
        );
        let payload = encode_rows(&[1i64, 2, 3, 4, 5]).unwrap();
        let result = r.execute(&f, Some(&payload), None).unwrap();
        let rows: Vec<i64> = decode_rows(result.payload.as_deref().unwrap()).unwrap();
        assert_eq!(rows, vec![12, 15]);
        assert!(matches!(result.output, TaskOutput::Rows { rows: 2, .. }));
    }

    #[test]
    fn count_and_collector_sinks() {
        let r = int_registry();
        let payload = encode_rows(&[1i64, 2, 3]).unwrap();
        let count = r
            .execute(&frag(PlanInput::Inline, vec![], PlanSink::Count), Some(&payload), None)
            .unwrap();
        assert_eq!(count.output, TaskOutput::Count(3));
        let sum = r
            .execute(
                &frag(
                    PlanInput::Inline,
                    vec![],
                    PlanSink::CollectWith { op: "sum".into(), arg: Value::Null },
                ),
                Some(&payload),
                None,
            )
            .unwrap();
        assert_eq!(sum.output, TaskOutput::Json(Value::Int(6)));
    }

    #[test]
    fn shuffle_write_then_store_read() {
        let r = int_registry();
        let store = temp_store("shuffle");
        let payload = encode_rows(&(0i64..10).collect::<Vec<_>>()).unwrap();
        let write = frag(
            PlanInput::Inline,
            vec![],
            PlanSink::ShuffleWrite {
                partitioner: "mod".into(),
                arg: int_arg("parts", 3),
                num_partitions: 3,
                prefix: "sh".into(),
                task: 0,
            },
        );
        let out = r.execute(&write, Some(&payload), Some(&store)).unwrap();
        assert_eq!(out.output, TaskOutput::BucketCounts(vec![4, 3, 3]));

        // the reduce side reads bucket 0 of task 0
        let read = frag(
            PlanInput::Store { keys: vec![shuffle_bucket_key("sh", 0, 0)] },
            vec![PlanOp::MapPartitions { op: "sort".into(), arg: Value::Null }],
            PlanSink::Collect,
        );
        let result = r.execute(&read, None, Some(&store)).unwrap();
        let rows: Vec<i64> = decode_rows(result.payload.as_deref().unwrap()).unwrap();
        assert_eq!(rows, vec![0, 3, 6, 9]);
    }

    #[test]
    fn checkpoint_sink_is_readable_as_a_local_checkpoint_blob() {
        let r = int_registry();
        let store = temp_store("ckpt");
        let payload = encode_rows(&[7i64, 8, 9]).unwrap();
        let f = frag(
            PlanInput::Inline,
            vec![],
            PlanSink::Checkpoint { key: "ck/job".into(), partition: 2 },
        );
        let out = r.execute(&f, Some(&payload), Some(&store)).unwrap();
        match out.output {
            TaskOutput::Checkpointed { key, rows, .. } => {
                assert_eq!(key, "ck/job/part-00002");
                assert_eq!(rows, 3);
                // byte-compatible with Rdd::checkpoint's blob format
                let back: Vec<i64> = store.get_json(&key).unwrap();
                assert_eq!(back, vec![7, 8, 9]);
            }
            other => panic!("expected Checkpointed, got {other:?}"),
        }
    }

    #[test]
    fn unknown_ops_and_schema_mismatch_are_typed() {
        let r = int_registry();
        let payload = encode_rows(&[1i64]).unwrap();
        let bad_op = frag(
            PlanInput::Inline,
            vec![PlanOp::Map { op: "nope".into(), arg: Value::Null }],
            PlanSink::Count,
        );
        assert!(matches!(
            r.execute(&bad_op, Some(&payload), None),
            Err(PlanError::UnknownOp { kind: "map", .. })
        ));
        let mut alien = frag(PlanInput::Inline, vec![], PlanSink::Count);
        alien.schema = "event-v1".into();
        assert!(matches!(
            r.execute(&alien, Some(&payload), None),
            Err(PlanError::SchemaMismatch { .. })
        ));
        assert!(!is_retryable(&PlanError::UnknownOp { kind: "map", op: "nope".into() }));
        assert!(is_retryable(&PlanError::MissingPayload));
    }

    #[test]
    fn validate_resolves_without_running() {
        let r = int_registry();
        let good = frag(
            PlanInput::Inline,
            vec![PlanOp::Filter { op: "even".into(), arg: Value::Null }],
            PlanSink::CollectWith { op: "sum".into(), arg: Value::Null },
        );
        r.validate(&good).unwrap();
        let bad = frag(
            PlanInput::Inline,
            vec![],
            PlanSink::ShuffleWrite {
                partitioner: "missing".into(),
                arg: Value::Null,
                num_partitions: 2,
                prefix: "x".into(),
                task: 0,
            },
        );
        assert!(matches!(bad.sink, PlanSink::ShuffleWrite { .. }));
        assert!(matches!(r.validate(&bad), Err(PlanError::UnknownOp { kind: "partitioner", .. })));
    }

    #[test]
    fn apply_ops_matches_remote_execution() {
        let r = int_registry();
        let ops = vec![
            PlanOp::Map { op: "add".into(), arg: int_arg("k", 1) },
            PlanOp::Filter { op: "even".into(), arg: Value::Null },
            PlanOp::FlatMap { op: "repeat".into(), arg: int_arg("k", 2) },
        ];
        let data: Vec<i64> = (0..50).collect();

        // local: registry-resolved closures over the engine's Rdd path
        let ctx = Context::with_parallelism(4);
        let local = r.apply_ops(&ctx.parallelize(data.clone(), 4), &ops).unwrap().collect();

        // "remote": the worker-side execute over the same fragment
        let f = frag(PlanInput::Inline, ops, PlanSink::Collect);
        let payload = encode_rows(&data).unwrap();
        let result = r.execute(&f, Some(&payload), None).unwrap();
        let remote: Vec<i64> = decode_rows(result.payload.as_deref().unwrap()).unwrap();
        assert_eq!(local, remote);
    }
}
