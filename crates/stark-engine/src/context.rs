//! The engine entry point, analogous to Spark's `SparkContext`.

use crate::cancel::{self, CancelScope, CancellationToken};
use crate::fault::FaultInjector;
use crate::memory::MemoryManager;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::rdd::Rdd;
use crate::storage::ObjectStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of worker threads per job (the "cluster size").
    pub parallelism: usize,
    /// Default number of partitions for new datasets.
    pub default_partitions: usize,
    /// Human-readable application name, surfaced in panics and logs.
    pub app_name: String,
    /// Whether chains of narrow transformations (`map`/`filter`/
    /// `flat_map`/`map_partitions`) fuse into a single per-partition
    /// pass. On by default; turning it off materialises one `Vec` per
    /// operator — the unfused baseline the S7 experiment measures.
    pub fusion_enabled: bool,
    /// Whether consumers that support it (STARK's spatial filter chain)
    /// may evaluate predicates over a per-partition columnar sidecar
    /// ([`Partition::to_columns`](crate::Partition)) instead of
    /// row-at-a-time. On by default; results are byte-identical either
    /// way — turning it off restores the pure row path the S12
    /// experiment measures against.
    pub columnar_enabled: bool,
    /// Retries a failed partition task gets before its error becomes
    /// permanent — Spark's `spark.task.maxFailures - 1`. Each retry
    /// recomputes the partition from lineage (evicting any poisoned
    /// cache entry first); `0` restores fail-fast behaviour.
    pub max_task_retries: u32,
    /// Base delay between task retry attempts, doubled per attempt
    /// (exponential backoff). Zero (the default) retries immediately —
    /// in-process recomputation has no cluster to wait out.
    pub retry_backoff: Duration,
    /// Chaos-testing hook: a seeded [`FaultInjector`] the executor
    /// consults at the start of every task attempt. `None` (the
    /// default) injects nothing.
    pub fault_injector: Option<Arc<FaultInjector>>,
    /// Wall-clock budget applied to every top-level job started on the
    /// context. A job past its deadline fails with a non-retryable
    /// [`TaskErrorKind::DeadlineExceeded`](crate::TaskErrorKind) task
    /// error — observed cooperatively, so no thread is killed and no
    /// cache entry is left poisoned. `None` (the default) never expires.
    /// Per-action variants ([`Rdd::collect_with_deadline`](crate::Rdd))
    /// override this by installing a tighter ambient deadline.
    pub job_deadline: Option<Duration>,
    /// Straggler defence: once [`EngineConfig::speculation_quantile`] of
    /// a stage's tasks have finished, any task running longer than
    /// [`EngineConfig::speculation_multiplier`] × the stage's median
    /// task time is relaunched as a duplicate attempt on an idle worker.
    /// First result wins; the loser is cancelled via its token. Off by
    /// default (Spark's `spark.speculation`).
    pub speculation: bool,
    /// Fraction of a stage's tasks that must finish before stragglers
    /// are speculated (Spark's `spark.speculation.quantile`).
    pub speculation_quantile: f64,
    /// How many multiples of the stage's median task duration a task may
    /// run before it is speculated (Spark's `spark.speculation.multiplier`).
    pub speculation_multiplier: f64,
    /// Context-wide budget for accounted partition bytes (Spark's
    /// unified executor memory). When a shuffle task's buckets or a
    /// cache/checkpoint populate would exceed it, the engine degrades
    /// gracefully — spilling shuffle buckets to the spill store,
    /// evicting least-recently-used cache/checkpoint cells, or declining
    /// to cache — instead of failing the job. `None` (the default) is
    /// unbounded: accounting still runs (two relaxed atomics per
    /// partition) so the peak is measurable, but nothing spills or is
    /// evicted for pressure.
    pub memory_budget: Option<u64>,
    /// Directory under which the context creates its private spill
    /// store (shuffle buckets that did not fit [`EngineConfig::memory_budget`]).
    /// `None` (the default) uses the system temp directory. The
    /// context-owned subdirectory is removed when the context drops.
    pub spill_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig {
            parallelism: cores,
            default_partitions: cores,
            app_name: "stark".to_string(),
            fusion_enabled: true,
            columnar_enabled: true,
            max_task_retries: 3,
            retry_backoff: Duration::ZERO,
            fault_injector: None,
            job_deadline: None,
            speculation: false,
            speculation_quantile: 0.75,
            speculation_multiplier: 1.5,
            memory_budget: None,
            spill_dir: None,
        }
    }
}

#[derive(Debug)]
pub(crate) struct ContextInner {
    pub(crate) config: EngineConfig,
    pub(crate) metrics: Arc<Metrics>,
    /// Context-wide byte accountant (see [`EngineConfig::memory_budget`]).
    pub(crate) memory: Arc<MemoryManager>,
    /// Lazily created private store for spilled shuffle buckets. Rooted
    /// in a context-owned subdirectory (removed on drop) so concurrent
    /// contexts never collide and spill blobs never outlive the context.
    pub(crate) spill: OnceLock<ObjectStore>,
    /// Jobs currently executing on this context. The executor uses the
    /// depth at job entry to attribute wall-clock time only to
    /// top-level jobs (a nested shuffle job is already covered by the
    /// enclosing job's interval).
    pub(crate) active_jobs: AtomicUsize,
    /// Stage ordinal source: each partition sweep on this context draws
    /// a fresh ordinal, so fault injection targeted by stage (or drawn
    /// per `(stage, partition)`) strikes re-runs independently.
    pub(crate) next_stage: AtomicU64,
    /// Root of the context's cancellation-token chain: every job token
    /// descends from it (directly, or through an ambient deadline
    /// scope), so [`Context::cancel`] reaches all running jobs.
    pub(crate) cancel: Arc<CancellationToken>,
}

/// Handle to the engine; cheap to clone, shared by all datasets it creates.
#[derive(Debug, Clone)]
pub struct Context {
    pub(crate) inner: Arc<ContextInner>,
}

impl Context {
    /// Creates a context with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        assert!(
            config.speculation_quantile > 0.0 && config.speculation_quantile <= 1.0,
            "speculation_quantile must be in (0, 1]"
        );
        assert!(config.speculation_multiplier >= 1.0, "speculation_multiplier must be >= 1");
        let metrics = Arc::new(Metrics::default());
        let memory = MemoryManager::new(config.memory_budget, Arc::clone(&metrics));
        Context {
            inner: Arc::new(ContextInner {
                config,
                metrics,
                memory,
                spill: OnceLock::new(),
                active_jobs: AtomicUsize::new(0),
                next_stage: AtomicU64::new(0),
                cancel: CancellationToken::new(),
            }),
        }
    }

    /// Creates a context with default configuration (one worker per core).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Creates a context with a fixed worker-thread budget.
    pub fn with_parallelism(parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        Self::with_config(EngineConfig {
            parallelism,
            default_partitions: parallelism,
            ..EngineConfig::default()
        })
    }

    /// The configured worker-thread budget.
    pub fn parallelism(&self) -> usize {
        self.inner.config.parallelism
    }

    /// The configured default partition count.
    pub fn default_partitions(&self) -> usize {
        self.inner.config.default_partitions
    }

    /// Whether narrow-operator fusion is on (see
    /// [`EngineConfig::fusion_enabled`]).
    pub fn fusion_enabled(&self) -> bool {
        self.inner.config.fusion_enabled
    }

    /// Whether the columnar filter path is on (see
    /// [`EngineConfig::columnar_enabled`]).
    pub fn columnar_enabled(&self) -> bool {
        self.inner.config.columnar_enabled
    }

    /// Records a columnar sidecar build in
    /// [`MetricsSnapshot::columnar_batches_built`](crate::MetricsSnapshot).
    /// Called by consumers (the spatial filter chain) when a
    /// [`Partition::to_columns`](crate::Partition) builder actually runs.
    pub fn note_columnar_batch_built(&self) {
        self.inner.metrics.inc_columnar_batches_built(1);
    }

    /// Records `n` rows scanned by a columnar kernel in
    /// [`MetricsSnapshot::rows_scanned_columnar`](crate::MetricsSnapshot).
    pub fn note_rows_scanned_columnar(&self, n: u64) {
        self.inner.metrics.inc_rows_scanned_columnar(n);
    }

    /// The per-task retry budget (see [`EngineConfig::max_task_retries`]).
    pub fn max_task_retries(&self) -> u32 {
        self.inner.config.max_task_retries
    }

    /// The installed chaos injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.config.fault_injector.as_ref()
    }

    /// The root [`CancellationToken`] every job on this context chains
    /// under.
    pub fn cancel_token(&self) -> &Arc<CancellationToken> {
        &self.inner.cancel
    }

    /// Cancels every running and future job on this context: tasks abort
    /// cooperatively with a [`TaskErrorKind::Cancelled`](crate::TaskErrorKind)
    /// error. Sticky until [`Context::reset_cancellation`].
    pub fn cancel(&self) {
        self.inner.cancel.cancel();
    }

    /// Clears a previous [`Context::cancel`], re-arming the context for
    /// new jobs.
    pub fn reset_cancellation(&self) {
        self.inner.cancel.reset();
    }

    /// Installs an ambient deadline on the calling thread until the
    /// returned guard drops: every job started on this thread while the
    /// guard lives (and every nested shuffle job those spawn) fails with
    /// [`TaskErrorKind::DeadlineExceeded`](crate::TaskErrorKind) once
    /// `deadline` elapses. The scope chains under the thread's current
    /// token (or the context root), so [`Context::cancel`] still applies.
    pub fn deadline_scope(&self, deadline: Duration) -> CancelScope {
        let parent = cancel::current().unwrap_or_else(|| Arc::clone(&self.inner.cancel));
        cancel::scope(parent.child_with_deadline(Some(deadline)))
    }

    /// Draws the next stage ordinal for a partition sweep.
    pub(crate) fn next_stage_id(&self) -> u64 {
        self.inner.next_stage.fetch_add(1, Ordering::Relaxed)
    }

    /// Distributes a local collection into `num_partitions` chunks,
    /// mirroring `SparkContext.parallelize`.
    pub fn parallelize<T: crate::rdd::Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        Rdd::from_collection(self.clone(), data, num_partitions.max(1))
    }

    /// [`Context::parallelize`] with the context's default partition count.
    pub fn parallelize_default<T: crate::rdd::Data>(&self, data: Vec<T>) -> Rdd<T> {
        let n = self.default_partitions();
        self.parallelize(data, n)
    }

    /// Point-in-time copy of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    pub(crate) fn raw_metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The context's [`MemoryManager`] (see [`EngineConfig::memory_budget`]).
    pub fn memory(&self) -> &Arc<MemoryManager> {
        &self.inner.memory
    }

    /// The lazily created spill store for shuffle buckets that did not
    /// fit the memory budget. The backing directory is private to this
    /// context and removed when the context drops.
    pub(crate) fn spill_store(&self) -> &ObjectStore {
        self.inner.spill.get_or_init(|| {
            static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
            let base = self.inner.config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            // a crashed prior run never reached its Drop cleanup; its
            // spill blobs are garbage once the owning pid is gone
            crate::storage::sweep_orphan_dirs(&base, "stark-spill-");
            let dir = base.join(format!(
                "stark-spill-{}-{}",
                std::process::id(),
                SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            ObjectStore::open(&dir).expect("spill store directory could not be created")
        })
    }
}

impl Drop for ContextInner {
    fn drop(&mut self) {
        // Best-effort removal of the context-private spill directory;
        // blobs are already deleted as they are merged back, so in the
        // common case this removes an empty tree.
        if let Some(store) = self.spill.get() {
            let _ = std::fs::remove_dir_all(store.root());
        }
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = Context::new();
        assert!(c.parallelism() >= 1);
        assert!(c.default_partitions() >= 1);
    }

    #[test]
    fn parallelism_clamped_to_one() {
        let c = Context::with_parallelism(0);
        assert_eq!(c.parallelism(), 1);
    }

    #[test]
    fn parallelize_splits_into_partitions() {
        let c = Context::with_parallelism(4);
        let rdd = c.parallelize((0..10).collect(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().len(), 10);
    }
}
