//! The engine entry point, analogous to Spark's `SparkContext`.

use crate::fault::FaultInjector;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::rdd::Rdd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of worker threads per job (the "cluster size").
    pub parallelism: usize,
    /// Default number of partitions for new datasets.
    pub default_partitions: usize,
    /// Human-readable application name, surfaced in panics and logs.
    pub app_name: String,
    /// Whether chains of narrow transformations (`map`/`filter`/
    /// `flat_map`/`map_partitions`) fuse into a single per-partition
    /// pass. On by default; turning it off materialises one `Vec` per
    /// operator — the unfused baseline the S7 experiment measures.
    pub fusion_enabled: bool,
    /// Retries a failed partition task gets before its error becomes
    /// permanent — Spark's `spark.task.maxFailures - 1`. Each retry
    /// recomputes the partition from lineage (evicting any poisoned
    /// cache entry first); `0` restores fail-fast behaviour.
    pub max_task_retries: u32,
    /// Base delay between task retry attempts, doubled per attempt
    /// (exponential backoff). Zero (the default) retries immediately —
    /// in-process recomputation has no cluster to wait out.
    pub retry_backoff: Duration,
    /// Chaos-testing hook: a seeded [`FaultInjector`] the executor
    /// consults at the start of every task attempt. `None` (the
    /// default) injects nothing.
    pub fault_injector: Option<Arc<FaultInjector>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineConfig {
            parallelism: cores,
            default_partitions: cores,
            app_name: "stark".to_string(),
            fusion_enabled: true,
            max_task_retries: 3,
            retry_backoff: Duration::ZERO,
            fault_injector: None,
        }
    }
}

#[derive(Debug)]
pub(crate) struct ContextInner {
    pub(crate) config: EngineConfig,
    pub(crate) metrics: Metrics,
    /// Jobs currently executing on this context. The executor uses the
    /// depth at job entry to attribute wall-clock time only to
    /// top-level jobs (a nested shuffle job is already covered by the
    /// enclosing job's interval).
    pub(crate) active_jobs: AtomicUsize,
    /// Stage ordinal source: each partition sweep on this context draws
    /// a fresh ordinal, so fault injection targeted by stage (or drawn
    /// per `(stage, partition)`) strikes re-runs independently.
    pub(crate) next_stage: AtomicU64,
}

/// Handle to the engine; cheap to clone, shared by all datasets it creates.
#[derive(Debug, Clone)]
pub struct Context {
    pub(crate) inner: Arc<ContextInner>,
}

impl Context {
    /// Creates a context with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Context {
            inner: Arc::new(ContextInner {
                config,
                metrics: Metrics::default(),
                active_jobs: AtomicUsize::new(0),
                next_stage: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a context with default configuration (one worker per core).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Creates a context with a fixed worker-thread budget.
    pub fn with_parallelism(parallelism: usize) -> Self {
        let parallelism = parallelism.max(1);
        Self::with_config(EngineConfig {
            parallelism,
            default_partitions: parallelism,
            ..EngineConfig::default()
        })
    }

    /// The configured worker-thread budget.
    pub fn parallelism(&self) -> usize {
        self.inner.config.parallelism
    }

    /// The configured default partition count.
    pub fn default_partitions(&self) -> usize {
        self.inner.config.default_partitions
    }

    /// Whether narrow-operator fusion is on (see
    /// [`EngineConfig::fusion_enabled`]).
    pub fn fusion_enabled(&self) -> bool {
        self.inner.config.fusion_enabled
    }

    /// The per-task retry budget (see [`EngineConfig::max_task_retries`]).
    pub fn max_task_retries(&self) -> u32 {
        self.inner.config.max_task_retries
    }

    /// The installed chaos injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.config.fault_injector.as_ref()
    }

    /// Draws the next stage ordinal for a partition sweep.
    pub(crate) fn next_stage_id(&self) -> u64 {
        self.inner.next_stage.fetch_add(1, Ordering::Relaxed)
    }

    /// Distributes a local collection into `num_partitions` chunks,
    /// mirroring `SparkContext.parallelize`.
    pub fn parallelize<T: crate::rdd::Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        Rdd::from_collection(self.clone(), data, num_partitions.max(1))
    }

    /// [`Context::parallelize`] with the context's default partition count.
    pub fn parallelize_default<T: crate::rdd::Data>(&self, data: Vec<T>) -> Rdd<T> {
        let n = self.default_partitions();
        self.parallelize(data, n)
    }

    /// Point-in-time copy of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    pub(crate) fn raw_metrics(&self) -> &Metrics {
        &self.inner.metrics
    }
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = Context::new();
        assert!(c.parallelism() >= 1);
        assert!(c.default_partitions() >= 1);
    }

    #[test]
    fn parallelism_clamped_to_one() {
        let c = Context::with_parallelism(0);
        assert_eq!(c.parallelism(), 1);
    }

    #[test]
    fn parallelize_splits_into_partitions() {
        let c = Context::with_parallelism(4);
        let rdd = c.parallelize((0..10).collect(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().len(), 10);
    }
}
