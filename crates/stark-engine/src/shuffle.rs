//! Peer-to-peer remote shuffle: per-worker bucket serving and fetching.
//!
//! Under [`ShuffleMode::Remote`](crate::supervisor::ShuffleMode) each
//! worker keeps its map outputs in a private local [`ObjectStore`] and
//! serves them over its own **shuffle port**. Reducers fetch buckets
//! directly from the producing worker instead of reading a shared
//! directory — the layout a real cluster needs, where no common
//! filesystem exists.
//!
//! The fetch protocol is one STK1-framed request/response pair followed
//! by a *raw* byte stream:
//!
//! ```text
//! client → server   frame { Bucket { key, epoch, offset } }
//! server → client   frame { Bucket { len, crc } }  |  NotFound  |
//!                   StaleEpoch { have }            |  Refused
//! server → client   raw bytes payload[offset..]    (only after Bucket)
//! ```
//!
//! The payload intentionally travels *unframed*: a torn transfer leaves
//! the client holding a usable prefix, and the next attempt resumes from
//! `offset = bytes held` instead of refetching everything. Integrity
//! comes from the whole-payload CRC32 announced in the response header,
//! verified once the assembled buffer is complete — a flipped byte
//! discards the buffer and restarts from offset 0.
//!
//! Every bucket carries a **shuffle epoch**. Map outputs regenerated
//! after a worker loss register at a bumped epoch, and the server rejects
//! requests whose epoch does not match its registration
//! ([`FetchRsp::StaleEpoch`]) — a reducer built against a superseded
//! registry snapshot fails fast instead of consuming half-dead data.
//!
//! Failure handling is layered: connect/read timeouts bound every
//! blocking call, capped retries with jittered exponential backoff
//! absorb transient faults, and only then does a typed [`FetchFailure`]
//! escalate to the driver, which treats it as a lost-map-output signal
//! (see `WorkerPool::run_shuffle`).

use crate::fault::{splitmix64, FetchChaosState, FetchPolicy};
use crate::storage::{crc32, ObjectStore, StorageError, MAX_BLOB_LEN};
use crate::transport::{recv_msg, send_msg};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// One bucket a reduce task must fetch: where it lives, its store key,
/// and the shuffle epoch it was registered under.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct FetchSource {
    /// Shuffle address of the producing worker (`host:port`).
    pub addr: String,
    /// Bucket key in the producer's local store.
    pub key: String,
    /// Epoch the driver's registry holds for this output.
    pub epoch: u64,
}

/// A fetch that exhausted its retry budget (or was rejected as stale),
/// reported by the worker inside `TaskErr` so the driver can run
/// lost-output recovery instead of blind task retry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct FetchFailure {
    pub addr: String,
    pub key: String,
    pub epoch: u64,
    /// The server holds a different epoch for this key — the reducer's
    /// source list is outdated, not the output lost.
    pub stale: bool,
    pub reason: String,
}

impl std::fmt::Display for FetchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fetch of {:?} (epoch {}) from {} failed: {}",
            self.key, self.epoch, self.addr, self.reason
        )
    }
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
enum FetchReq {
    Bucket { key: String, epoch: u64, offset: u64 },
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
enum FetchRsp {
    /// The payload's total length and whole-payload CRC32; the bytes from
    /// the requested offset follow raw.
    Bucket {
        len: u64,
        crc: u32,
    },
    NotFound,
    StaleEpoch {
        have: u64,
    },
    Refused,
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Client/server knobs of the remote-shuffle data plane.
#[derive(Debug, Clone)]
pub struct FetchConfig {
    /// Bound on establishing a connection to a peer.
    pub connect_timeout: Duration,
    /// Bound on every blocking read (both sides): a hung peer surfaces
    /// as a timeout error, never a wedged thread.
    pub read_timeout: Duration,
    /// Re-attempts after the first failed fetch of a bucket.
    pub max_retries: u32,
    /// Base retry backoff; doubled per attempt and jittered into
    /// `[0.5, 1.5)`.
    pub backoff_base: Duration,
    /// Seed for the backoff jitter.
    pub seed: u64,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            max_retries: 4,
            backoff_base: Duration::from_millis(10),
            seed: 0xFE7C,
        }
    }
}

// ---------------------------------------------------------------------------
// Shuffle environment
// ---------------------------------------------------------------------------

/// A worker's shuffle half: the local bucket store it serves from, the
/// epoch registry guarding those buckets, and the fetch client reducers
/// on this worker use to pull peers' buckets.
///
/// Shared (`Arc`) between the executing thread, the accept loop and the
/// per-connection handlers. The accept loop holds only a [`Weak`]
/// reference, so dropping every strong handle stops the server and
/// removes the backing directory.
pub struct ShuffleEnv {
    store: ObjectStore,
    /// Registered epoch per bucket key; requests must match exactly.
    epochs: Mutex<HashMap<String, u64>>,
    cfg: FetchConfig,
    chaos: Option<FetchChaosState>,
    fetch_retries: AtomicU64,
    bytes_fetched: AtomicU64,
    rng: AtomicU64,
}

impl ShuffleEnv {
    /// Creates the bucket store at `root` (private to this worker).
    pub fn new(
        root: impl AsRef<Path>,
        cfg: FetchConfig,
        chaos: Option<FetchChaosState>,
    ) -> Result<Arc<ShuffleEnv>, StorageError> {
        let store = ObjectStore::open(root)?;
        Ok(Arc::new(ShuffleEnv {
            store,
            epochs: Mutex::new(HashMap::new()),
            rng: AtomicU64::new(splitmix64(cfg.seed ^ 0x5A17_F00D)),
            cfg,
            chaos,
            fetch_retries: AtomicU64::new(0),
            bytes_fetched: AtomicU64::new(0),
        }))
    }

    /// The local bucket store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Writes a map-output bucket and registers it under `epoch`.
    pub fn put_bucket(&self, key: &str, epoch: u64, data: &[u8]) -> Result<(), StorageError> {
        self.store.put_bytes(key, data)?;
        self.epochs.lock().unwrap().insert(key.to_string(), epoch);
        Ok(())
    }

    /// The epoch a bucket is currently registered under, if any.
    pub fn registered_epoch(&self, key: &str) -> Option<u64> {
        self.epochs.lock().unwrap().get(key).copied()
    }

    /// Swaps out and returns the per-task fetch counters
    /// `(retries, bytes_fetched)` accumulated since the last call.
    pub fn take_counters(&self) -> (u64, u64) {
        (
            self.fetch_retries.swap(0, Ordering::Relaxed),
            self.bytes_fetched.swap(0, Ordering::Relaxed),
        )
    }

    /// Binds the shuffle port and starts the accept loop. Returns the
    /// bound port. The loop exits once every strong `Arc` is dropped.
    pub fn serve(self: &Arc<Self>) -> io::Result<u16> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let weak: Weak<ShuffleEnv> = Arc::downgrade(self);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let Some(env) = weak.upgrade() else { return };
                    std::thread::spawn(move || {
                        let _ = env.handle_conn(stream);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if weak.strong_count() == 0 {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        });
        Ok(port)
    }

    /// Serves fetch requests on one connection until the peer hangs up.
    fn handle_conn(self: &Arc<Self>, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.cfg.read_timeout)).ok();
        stream.set_write_timeout(Some(self.cfg.read_timeout)).ok();
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        loop {
            let Some(FetchReq::Bucket { key, epoch, offset }) = recv_msg(&mut reader)? else {
                return Ok(()); // clean hangup
            };
            match self.registered_epoch(&key) {
                None => {
                    send_msg(&mut writer, &FetchRsp::NotFound)?;
                    continue;
                }
                Some(have) if have != epoch => {
                    send_msg(&mut writer, &FetchRsp::StaleEpoch { have })?;
                    continue;
                }
                Some(_) => {}
            }
            let policy = self.chaos.as_ref().and_then(|c| c.draw(&key, epoch));
            match policy {
                Some(FetchPolicy::KillServingWorker) => {
                    // fail-stop: the worker (and all its map outputs)
                    // vanishes mid-shuffle
                    std::process::exit(1);
                }
                Some(FetchPolicy::RefuseFetch) => {
                    send_msg(&mut writer, &FetchRsp::Refused)?;
                    continue;
                }
                Some(FetchPolicy::DelayFetch(d)) => std::thread::sleep(d),
                _ => {}
            }
            let Ok(data) = self.store.get_bytes(&key) else {
                send_msg(&mut writer, &FetchRsp::NotFound)?;
                continue;
            };
            let off = (offset as usize).min(data.len());
            send_msg(&mut writer, &FetchRsp::Bucket { len: data.len() as u64, crc: crc32(&data) })?;
            match policy {
                Some(FetchPolicy::DropBucket) => {
                    // torn transfer: half the remaining bytes, then hang
                    // up — the client resumes from its new offset
                    let part = &data[off..off + (data.len() - off) / 2];
                    writer.write_all(part)?;
                    return Ok(());
                }
                Some(FetchPolicy::CorruptBucket) => {
                    // full-length transfer, one byte flipped after the
                    // CRC was announced — the client must reject it
                    let mut sent = data[off..].to_vec();
                    if !sent.is_empty() {
                        let mid = sent.len() / 2;
                        sent[mid] ^= 0x40;
                    }
                    writer.write_all(&sent)?;
                }
                _ => writer.write_all(&data[off..])?,
            }
            writer.flush()?;
        }
    }

    /// Fetches one bucket from a peer, with bounded timeouts, capped
    /// jittered retries and partial-fetch resume. A stale-epoch rejection
    /// escalates immediately (retrying cannot help); everything else
    /// retries until the budget is spent.
    pub fn fetch(&self, addr: &str, key: &str, epoch: u64) -> Result<Vec<u8>, FetchFailure> {
        let mut buf: Vec<u8> = Vec::new();
        let mut last = String::from("never attempted");
        let attempts = self.cfg.max_retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.fetch_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.jittered_backoff(attempt - 1));
            }
            match self.try_fetch(addr, key, epoch, &mut buf) {
                Ok(()) => {
                    self.bytes_fetched.fetch_add(buf.len() as u64, Ordering::Relaxed);
                    return Ok(buf);
                }
                Err(AttemptError::Stale { have }) => {
                    return Err(FetchFailure {
                        addr: addr.to_string(),
                        key: key.to_string(),
                        epoch,
                        stale: true,
                        reason: format!("stale epoch (server has {have})"),
                    });
                }
                Err(AttemptError::Transient(reason)) => last = reason,
            }
        }
        Err(FetchFailure {
            addr: addr.to_string(),
            key: key.to_string(),
            epoch,
            stale: false,
            reason: format!("{attempts} attempts exhausted; last: {last}"),
        })
    }

    /// One fetch attempt. Received bytes accumulate into `buf` (the
    /// resume state); a checksum mismatch clears it.
    fn try_fetch(
        &self,
        addr: &str,
        key: &str,
        epoch: u64,
        buf: &mut Vec<u8>,
    ) -> Result<(), AttemptError> {
        let io_err = |e: io::Error| AttemptError::Transient(e.to_string());
        let sock = addr
            .to_socket_addrs()
            .map_err(io_err)?
            .next()
            .ok_or_else(|| AttemptError::Transient(format!("unresolvable address {addr:?}")))?;
        let stream = TcpStream::connect_timeout(&sock, self.cfg.connect_timeout).map_err(io_err)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(self.cfg.read_timeout)).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().map_err(io_err)?;
        send_msg(
            &mut writer,
            &FetchReq::Bucket { key: key.to_string(), epoch, offset: buf.len() as u64 },
        )
        .map_err(io_err)?;
        let mut reader = BufReader::new(stream);
        let rsp: FetchRsp = recv_msg(&mut reader)
            .map_err(io_err)?
            .ok_or_else(|| AttemptError::Transient("server hung up before responding".into()))?;
        let (len, crc) = match rsp {
            FetchRsp::Refused => return Err(AttemptError::Transient("fetch refused".into())),
            FetchRsp::NotFound => {
                return Err(AttemptError::Transient("bucket not registered on server".into()))
            }
            FetchRsp::StaleEpoch { have } => return Err(AttemptError::Stale { have }),
            FetchRsp::Bucket { len, crc } => (len as usize, crc),
        };
        if len > MAX_BLOB_LEN {
            return Err(AttemptError::Transient(format!(
                "announced bucket length {len} exceeds blob cap"
            )));
        }
        if buf.len() > len {
            buf.clear(); // the server's view shrank; resume state is junk
        }
        let mut chunk = [0u8; 16 * 1024];
        while buf.len() < len {
            let n = reader.read(&mut chunk).map_err(io_err)?;
            if n == 0 {
                return Err(AttemptError::Transient(format!(
                    "connection closed mid-transfer at {}/{len} bytes",
                    buf.len()
                )));
            }
            let take = n.min(len - buf.len());
            buf.extend_from_slice(&chunk[..take]);
        }
        if crc32(buf) != crc {
            buf.clear();
            return Err(AttemptError::Transient("bucket checksum mismatch".into()));
        }
        Ok(())
    }

    fn jittered_backoff(&self, exp: u32) -> Duration {
        let scaled = self.cfg.backoff_base * (1u32 << exp.min(6));
        let draw = splitmix64(self.rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed));
        let factor = 0.5 + (draw >> 11) as f64 / (1u64 << 53) as f64;
        scaled.mul_f64(factor)
    }
}

impl Drop for ShuffleEnv {
    fn drop(&mut self) {
        // the bucket store is private to this worker's lifetime
        let _ = std::fs::remove_dir_all(self.store.root());
    }
}

enum AttemptError {
    /// Worth retrying (refused, torn, corrupt, timeout, unreachable).
    Transient(String),
    /// The server registered a different epoch — escalate immediately.
    Stale { have: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FetchChaos;

    fn env_with(tag: &str, chaos: Option<FetchChaosState>) -> Arc<ShuffleEnv> {
        let root =
            std::env::temp_dir().join(format!("stark-shuffle-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = FetchConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(1000),
            max_retries: 4,
            backoff_base: Duration::from_millis(2),
            seed: 7,
        };
        ShuffleEnv::new(root, cfg, chaos).unwrap()
    }

    fn addr(port: u16) -> String {
        format!("127.0.0.1:{port}")
    }

    #[test]
    fn put_serve_fetch_roundtrip() {
        let server = env_with("roundtrip", None);
        let data: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        server.put_bucket("sh/task-00000/bucket-00001", 0, &data).unwrap();
        let port = server.serve().unwrap();

        let client = env_with("roundtrip-client", None);
        let got = client.fetch(&addr(port), "sh/task-00000/bucket-00001", 0).unwrap();
        assert_eq!(got, data);
        let (retries, bytes) = client.take_counters();
        assert_eq!(retries, 0, "clean fetch must not retry");
        assert_eq!(bytes, data.len() as u64);
    }

    #[test]
    fn stale_epoch_is_rejected_without_burning_retries() {
        let server = env_with("stale", None);
        server.put_bucket("sh/task-00000/bucket-00000", 1, b"fresh").unwrap();
        let port = server.serve().unwrap();

        let client = env_with("stale-client", None);
        let err = client.fetch(&addr(port), "sh/task-00000/bucket-00000", 0).unwrap_err();
        assert!(err.stale, "an epoch mismatch is a stale fetch: {err}");
        assert!(err.reason.contains("server has 1"), "{err}");
        assert_eq!(client.take_counters().0, 0, "stale escalates before any retry");
        // the matching epoch still serves
        assert_eq!(client.fetch(&addr(port), "sh/task-00000/bucket-00000", 1).unwrap(), b"fresh");
    }

    #[test]
    fn missing_bucket_exhausts_the_budget() {
        let server = env_with("missing", None);
        let port = server.serve().unwrap();
        let client = env_with("missing-client", None);
        let err = client.fetch(&addr(port), "sh/task-00000/bucket-00000", 0).unwrap_err();
        assert!(!err.stale);
        assert!(err.reason.contains("attempts exhausted"), "{err}");
        assert_eq!(client.take_counters().0, 4, "every re-attempt counts as a retry");
    }

    #[test]
    fn torn_transfers_resume_from_the_received_offset() {
        let chaos =
            FetchChaosState::new(FetchChaos::once(FetchPolicy::DropBucket).with_max_strikes(2));
        let server = env_with("torn", Some(chaos));
        let data: Vec<u8> = (0..50_000u32).map(|x| x as u8).collect();
        server.put_bucket("sh/task-00000/bucket-00000", 0, &data).unwrap();
        let port = server.serve().unwrap();

        let client = env_with("torn-client", None);
        let got = client.fetch(&addr(port), "sh/task-00000/bucket-00000", 0).unwrap();
        assert_eq!(got, data, "resumed assembly must be byte-identical");
        assert_eq!(client.take_counters().0, 2, "each torn transfer costs one retry");
    }

    #[test]
    fn corrupt_transfers_are_rejected_and_refetched() {
        let chaos = FetchChaosState::new(FetchChaos::once(FetchPolicy::CorruptBucket));
        let server = env_with("corrupt", Some(chaos));
        let data = vec![0x5Au8; 9000];
        server.put_bucket("sh/task-00000/bucket-00000", 0, &data).unwrap();
        let port = server.serve().unwrap();

        let client = env_with("corrupt-client", None);
        let got = client.fetch(&addr(port), "sh/task-00000/bucket-00000", 0).unwrap();
        assert_eq!(got, data);
        assert_eq!(client.take_counters().0, 1);
    }

    #[test]
    fn refused_fetches_retry_until_the_policy_exhausts() {
        let chaos =
            FetchChaosState::new(FetchChaos::once(FetchPolicy::RefuseFetch).with_max_strikes(3));
        let server = env_with("refused", Some(chaos));
        server.put_bucket("sh/task-00000/bucket-00000", 0, b"payload").unwrap();
        let port = server.serve().unwrap();

        let client = env_with("refused-client", None);
        let got = client.fetch(&addr(port), "sh/task-00000/bucket-00000", 0).unwrap();
        assert_eq!(got, b"payload");
        assert_eq!(client.take_counters().0, 3);
    }

    #[test]
    fn unreachable_peer_fails_with_bounded_attempts() {
        let client = env_with("unreachable", None);
        // a port nothing listens on: every connect is refused promptly
        let err = client.fetch("127.0.0.1:1", "sh/task-00000/bucket-00000", 0).unwrap_err();
        assert!(!err.stale);
        assert_eq!(client.take_counters().0, 4);
    }
}
