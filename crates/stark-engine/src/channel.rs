//! Bounded MPSC channel with blocking backpressure.
//!
//! `std::sync::mpsc::sync_channel` exists, but gives no visibility into
//! queue depth and cannot time out on send. The streaming layer needs
//! both: a slow consumer must stall producers (backpressure, not
//! unbounded buffering), and sources want to observe occupancy to report
//! saturation. This is a small Condvar-based queue built for that.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a send did not enqueue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError<T> {
    /// Every receiver is gone; the value is returned to the caller.
    Disconnected(T),
    /// The queue stayed full past the timeout; the value is returned.
    Full(T),
}

/// Why a receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// Every sender is gone and the queue is drained.
    Disconnected,
    /// No value arrived within the timeout.
    TimedOut,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// Creates a bounded channel with room for `capacity` in-flight values.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Producer half; clonable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel poisoned").senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // wake the receiver so it can observe disconnection
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.receiver_alive = false;
        // wake all blocked senders so they can observe disconnection
        self.shared.not_full.notify_all();
    }
}

impl<T> Sender<T> {
    /// Blocks while the queue is full (backpressure), then enqueues.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.send_inner(value, None)
    }

    /// Like [`Sender::send`], giving up after `timeout`.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendError<T>> {
        self.send_inner(value, Some(timeout))
    }

    fn send_inner(&self, value: T, timeout: Option<Duration>) -> Result<(), SendError<T>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError::Disconnected(value));
            }
            if state.items.len() < self.shared.capacity {
                state.items.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = match deadline {
                None => self.shared.not_full.wait(state).expect("channel poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendError::Full(value));
                    }
                    let (guard, result) = self
                        .shared
                        .not_full
                        .wait_timeout(state, deadline - now)
                        .expect("channel poisoned");
                    if result.timed_out()
                        && guard.items.len() >= self.shared.capacity
                        && guard.receiver_alive
                    {
                        return Err(SendError::Full(value));
                    }
                    guard
                }
            };
        }
    }

    /// Enqueues `value` without ever blocking: if the queue already
    /// holds `max_queued` or more values, the *oldest* queued values are
    /// displaced to make room and returned to the caller — the
    /// `DropOldest` load-shedding primitive (freshest data survives,
    /// and the producer keeps pace with real time instead of stalling).
    /// `max_queued` is clamped to `1..=capacity`.
    pub fn send_or_displace(&self, value: T, max_queued: usize) -> Result<Vec<T>, SendError<T>> {
        let bound = max_queued.clamp(1, self.shared.capacity);
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if !state.receiver_alive {
            return Err(SendError::Disconnected(value));
        }
        let mut displaced = Vec::new();
        while state.items.len() >= bound {
            displaced.push(state.items.pop_front().expect("len >= bound >= 1"));
        }
        state.items.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(displaced)
    }

    /// Values currently queued (racy; for saturation reporting only).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel poisoned").items.len()
    }

    /// Whether the queue is empty right now (racy, like [`Sender::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total in-flight capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.recv_inner(None)
    }

    /// Like [`Receiver::recv`], giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        self.recv_inner(Some(timeout))
    }

    fn recv_inner(&self, timeout: Option<Duration>) -> Result<T, RecvError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            state = match deadline {
                None => self.shared.not_empty.wait(state).expect("channel poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvError::TimedOut);
                    }
                    let (guard, result) = self
                        .shared
                        .not_empty
                        .wait_timeout(state, deadline - now)
                        .expect("channel poisoned");
                    if result.timed_out() && guard.items.is_empty() && guard.senders > 0 {
                        return Err(RecvError::TimedOut);
                    }
                    guard
                }
            };
        }
    }

    /// Drains and returns everything queued right now without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        let drained: Vec<T> = state.items.drain(..).collect();
        if !drained.is_empty() {
            self.shared.not_full.notify_all();
        }
        drained
    }

    /// Values currently queued (racy; for saturation reporting only).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel poisoned").items.len()
    }

    /// Whether the queue is empty right now (racy, like [`Receiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn send_blocks_until_consumer_drains() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let handle = std::thread::spawn(move || {
            // blocks on the full queue until the main thread receives
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        handle.join().unwrap();
    }

    #[test]
    fn send_timeout_reports_full() {
        let (tx, _rx) = bounded(1);
        tx.send(1u32).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_on_empty() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvError::TimedOut));
    }

    #[test]
    fn recv_disconnected_after_senders_drop() {
        let (tx, rx) = bounded(2);
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn send_disconnected_after_receiver_drops() {
        let (tx, rx) = bounded(2);
        drop(rx);
        match tx.send(1u32) {
            Err(SendError::Disconnected(1)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let handle = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        match handle.join().unwrap() {
            Err(SendError::Disconnected(1)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn multi_producer_backpressure() {
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            assert!(rx.len() <= 2);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 200);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 200, "duplicate or lost items");
    }

    #[test]
    fn blocked_receiver_wakes_on_sender_drop() {
        let (tx, rx) = bounded::<u32>(4);
        let handle = std::thread::spawn(move || rx.recv());
        // the receiver is parked in a blocking recv on an empty queue;
        // dropping the last sender must wake it with Disconnected, not
        // leave it blocked forever
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError::Disconnected));
    }

    #[test]
    fn occupancy_stays_bounded_under_contention() {
        let (tx, rx) = bounded(3);
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        assert!(tx.len() <= tx.capacity(), "occupancy above capacity");
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut received = 0usize;
        while rx.recv().is_ok() {
            received += 1;
            assert!(rx.len() <= 3, "queue depth exceeded capacity");
        }
        for h in producers {
            h.join().unwrap();
        }
        assert_eq!(received, 256);
    }

    #[test]
    fn multi_producer_stress_no_loss_no_duplicates() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..8u64)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        tx.send(p * 10_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for h in producers {
            h.join().unwrap();
        }
        let mut got = consumer.join().unwrap();
        assert_eq!(got.len(), 4000);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 4000, "duplicate or lost items under stress");
    }

    #[test]
    fn send_or_displace_evicts_oldest_first() {
        let (tx, rx) = bounded(8);
        for i in 0..3 {
            assert_eq!(tx.send_or_displace(i, 3).unwrap(), vec![]);
        }
        // queue full at the shed bound: the oldest value makes room
        assert_eq!(tx.send_or_displace(3, 3).unwrap(), vec![0]);
        assert_eq!(tx.send_or_displace(4, 3).unwrap(), vec![1]);
        // tightening the bound displaces enough to get under it
        assert_eq!(tx.send_or_displace(5, 1).unwrap(), vec![2, 3, 4]);
        assert_eq!(rx.drain(), vec![5]);
    }

    #[test]
    fn send_or_displace_never_blocks_and_reports_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        // a plain send would block here; displace returns immediately
        assert_eq!(tx.send_or_displace(3, 2).unwrap(), vec![1]);
        drop(rx);
        match tx.send_or_displace(4, 2) {
            Err(SendError::Disconnected(4)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn drain_empties_queue() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert!(rx.is_empty());
    }
}
