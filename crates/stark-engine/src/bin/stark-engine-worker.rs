//! Minimal worker binary serving the engine's built-in `i64` schema.
//!
//! Exists so the engine's own distributed tests can fork real worker
//! processes without depending on downstream crates; the full-featured
//! worker (spatial event schemas) is the `stark-worker` crate.

use stark_engine::plan::int_registry;
use stark_engine::worker::{run_from_args, WorkerRuntime};

fn main() {
    let mut rt = WorkerRuntime::new();
    rt.register(Box::new(int_registry()));
    if let Err(e) = run_from_args(&rt, std::env::args().skip(1)) {
        eprintln!("stark-engine-worker: {e}");
        std::process::exit(1);
    }
}
