//! Spatio-temporal operations on pair datasets keyed by [`STObject`].
//!
//! This is the reproduction of STARK's `SpatialRDDFunctions` (paper §2.3):
//! in Scala an implicit conversion adds the operators to any
//! `RDD[(STObject, V)]`; here the [`SpatialRddExt`] extension trait plays
//! that role — `use stark::SpatialRddExt` and every `Rdd<(STObject, V)>`
//! gains `.intersects(..)`, `.contained_by(..)`, `.knn(..)` and friends.

use crate::columnar::ColumnarBatch;
use crate::partitioner::{PartitionCell, SpatialPartitioner};
use crate::predicate::STPredicate;
use crate::stobject::STObject;
use crate::temporal::TemporalExtent;
use stark_engine::{Data, Partition, Rdd, StoreData};
use stark_geo::kernels::SelectionBitmap;
use stark_geo::{DistanceFn, Envelope};
use std::sync::{Arc, OnceLock};

/// Partitioning metadata carried alongside a spatially partitioned
/// dataset: the partitioner (when available) plus the *fitted* cells —
/// bounds from the partitioner, extents recomputed from the actual
/// partition contents so pruning is always sound.
pub struct PartitioningInfo {
    /// The partitioner used to place records, when known. Loaded
    /// persistent indexes carry cells but no partitioner.
    pub partitioner: Option<Arc<dyn SpatialPartitioner>>,
    /// One cell per partition, extents fitted to the real contents.
    pub cells: Vec<PartitionCell>,
    /// Per-partition temporal extents (same order as `cells`). The
    /// temporal extension of §2.1's extent mechanism: filters with timed
    /// queries also prune on the time axis.
    pub time_extents: Vec<TemporalExtent>,
}

impl PartitioningInfo {
    /// Builds the partition mask for a filter with the given predicate:
    /// `true` = partition must be scanned. Combines the spatial extent
    /// test with the temporal one when temporal extents are available.
    pub fn mask_for(&self, pred: &STPredicate, query: &STObject) -> Vec<bool> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if !pred.partition_may_match(&c.extent, query) {
                    return false;
                }
                match self.time_extents.get(i) {
                    Some(te) => pred.partition_may_match_temporal(te, query),
                    None => true,
                }
            })
            .collect()
    }
}

/// A dataset of `(STObject, V)` pairs with optional spatial partitioning.
///
/// When the engine's columnar path is enabled
/// ([`EngineConfig::columnar_enabled`](stark_engine::EngineConfig)),
/// [`filter`](SpatialRdd::filter) does not lower to a row-at-a-time
/// `Rdd::filter` immediately: predicates queue in `pending` and the whole
/// chain lowers lazily into **one** `ColumnarFilter[..]` operator that
/// builds (or reuses) the partition's [`ColumnarBatch`] and narrows a
/// single [`SelectionBitmap`] across all predicates — filter→filter
/// chains evaluate without re-materialising rows in between. With the
/// flag off, filters take the original row path and produce
/// byte-identical results.
pub struct SpatialRdd<V: Data> {
    base: Rdd<(STObject, V)>,
    partitioning: Option<Arc<PartitioningInfo>>,
    /// Filter predicates queued for fused columnar evaluation.
    pending: Vec<(STPredicate, STObject)>,
    /// AND of the partition-pruning masks of all pending filters.
    pending_mask: Option<Vec<bool>>,
    /// Lazily lowered dataset (`base` + pending chain), built at most once.
    resolved: OnceLock<Rdd<(STObject, V)>>,
}

impl<V: Data> Clone for SpatialRdd<V> {
    fn clone(&self) -> Self {
        SpatialRdd {
            base: self.base.clone(),
            partitioning: self.partitioning.clone(),
            pending: self.pending.clone(),
            pending_mask: self.pending_mask.clone(),
            resolved: self.resolved.clone(),
        }
    }
}

/// Adds the spatio-temporal operators to any `Rdd<(STObject, V)>`,
/// mirroring STARK's implicit conversion.
pub trait SpatialRddExt<V: Data> {
    /// Wraps the dataset for spatio-temporal processing (no shuffle).
    fn spatial(&self) -> SpatialRdd<V>;

    /// Shorthand: `spatial().filter(query, Intersects)`.
    fn intersects(&self, query: &STObject) -> SpatialRdd<V>;
    /// Shorthand: `spatial().filter(query, Contains)`.
    fn contains(&self, query: &STObject) -> SpatialRdd<V>;
    /// Shorthand: `spatial().filter(query, ContainedBy)`.
    fn contained_by(&self, query: &STObject) -> SpatialRdd<V>;
}

impl<V: Data> SpatialRddExt<V> for Rdd<(STObject, V)> {
    fn spatial(&self) -> SpatialRdd<V> {
        SpatialRdd::with_info(self.clone(), None)
    }
    fn intersects(&self, query: &STObject) -> SpatialRdd<V> {
        self.spatial().filter(query, STPredicate::Intersects)
    }
    fn contains(&self, query: &STObject) -> SpatialRdd<V> {
        self.spatial().filter(query, STPredicate::Contains)
    }
    fn contained_by(&self, query: &STObject) -> SpatialRdd<V> {
        self.spatial().filter(query, STPredicate::ContainedBy)
    }
}

impl<V: Data> SpatialRdd<V> {
    /// Internal constructor preserving partitioning metadata across
    /// structure-preserving transformations.
    pub(crate) fn with_info(
        rdd: Rdd<(STObject, V)>,
        partitioning: Option<Arc<PartitioningInfo>>,
    ) -> Self {
        SpatialRdd {
            base: rdd,
            partitioning,
            pending: Vec::new(),
            pending_mask: None,
            resolved: OnceLock::new(),
        }
    }

    /// The underlying engine dataset. Lowers any pending columnar filter
    /// chain first (lazily, at most once per handle).
    pub fn rdd(&self) -> &Rdd<(STObject, V)> {
        self.resolved.get_or_init(|| self.lower())
    }

    /// Lowers `base` + the pending predicate chain into an engine
    /// dataset: one partition-mask stage (pruning metric included) and
    /// one `ColumnarFilter[..]` operator evaluating the whole chain over
    /// the partition's cached [`ColumnarBatch`].
    fn lower(&self) -> Rdd<(STObject, V)> {
        if self.pending.is_empty() {
            return self.base.clone();
        }
        let masked = match &self.pending_mask {
            Some(mask) => self.base.with_partition_mask(mask.clone()),
            None => self.base.clone(),
        };
        let ctx = self.base.context().clone();
        let chain = self.pending.clone();
        let label = format!(
            "ColumnarFilter[{}]",
            chain.iter().map(|(p, _)| p.to_string()).collect::<Vec<_>>().join("→")
        );
        masked.map_partition_handles(label, move |_, part: Partition<(STObject, V)>| {
            let rows = part.as_slice();
            let batch = part.to_columns(|rows| {
                ctx.note_columnar_batch_built();
                ColumnarBatch::build(rows)
            });
            let mut sel = SelectionBitmap::all_set(batch.len());
            for (pred, query) in &chain {
                let live = sel.count();
                if live == 0 {
                    break;
                }
                ctx.note_rows_scanned_columnar(live as u64);
                batch.apply_filter(pred, query, &mut sel, |i| pred.eval(&rows[i].0, query));
            }
            let mut out = Vec::with_capacity(sel.count());
            sel.for_each_set(|lane| out.push(rows[batch.payload_index(lane)].clone()));
            Partition::from_vec(out)
        })
    }

    /// Partitioning metadata, when spatially partitioned.
    pub fn partitioning(&self) -> Option<&Arc<PartitioningInfo>> {
        self.partitioning.as_ref()
    }

    /// Number of engine partitions.
    pub fn num_partitions(&self) -> usize {
        self.rdd().num_partitions()
    }

    /// Materialises all `(STObject, V)` pairs.
    pub fn collect(&self) -> Vec<(STObject, V)> {
        self.rdd().collect()
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.rdd().count()
    }

    /// Gathers the `(mbr, centroid)` summary a partitioner is built from
    /// (a single narrow pass, computed in parallel).
    pub fn summarize(&self) -> crate::partitioner::DataSummary {
        self.rdd()
            .run_partitions(|_, data| {
                data.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Spatially re-partitions the dataset with `partitioner` (a shuffle,
    /// mirroring `RDD.partitionBy(new SpatialPartitioner(...))`), then
    /// fits each partition's extent from its actual contents.
    pub fn partition_by(&self, partitioner: Arc<dyn SpatialPartitioner>) -> SpatialRdd<V>
    where
        V: StoreData,
    {
        let p = partitioner.clone();
        let shuffled = self
            .rdd()
            .partition_by(partitioner.num_partitions(), move |(o, _)| {
                match p.try_partition_of(o) {
                    Ok(idx) => idx,
                    // typed, non-retryable task failure: a NaN/infinite
                    // centroid is deterministic malformed input
                    Err(e) => stark_engine::abort_invalid_record(e.to_string()),
                }
            })
            .cache();

        // Fit spatial and temporal extents from what actually landed in
        // each partition.
        let extents: Vec<(Envelope, TemporalExtent)> = shuffled.run_partitions(|_, data| {
            let mut env = Envelope::empty();
            let mut te = TemporalExtent::empty();
            for (o, _) in &data {
                env.expand_to_include_envelope(&o.envelope());
                te.expand(o.time());
            }
            (env, te)
        });
        let mut cells = Vec::with_capacity(extents.len());
        let mut time_extents = Vec::with_capacity(extents.len());
        for (c, (extent, te)) in partitioner.cells().iter().zip(extents) {
            cells.push(PartitionCell { id: c.id, bounds: c.bounds, extent });
            time_extents.push(te);
        }

        SpatialRdd::with_info(
            shuffled,
            Some(Arc::new(PartitioningInfo {
                partitioner: Some(partitioner),
                cells,
                time_extents,
            })),
        )
    }

    /// Filters to elements `e` with `pred(e, query) == true`, pruning
    /// partitions whose extent cannot contain a match (paper §2.1).
    ///
    /// With the engine's columnar path enabled the predicate only queues:
    /// consecutive filters fuse into one columnar chain that is lowered
    /// lazily (see [`SpatialRdd`] docs). Results are byte-identical to
    /// the row path either way.
    pub fn filter(&self, query: &STObject, pred: STPredicate) -> SpatialRdd<V> {
        let mask = self.partitioning.as_ref().map(|info| info.mask_for(&pred, query));
        if self.base.context().columnar_enabled() {
            let pending_mask = match (&self.pending_mask, mask) {
                (Some(prev), Some(m)) => Some(prev.iter().zip(&m).map(|(a, b)| *a && *b).collect()),
                (Some(prev), None) => Some(prev.clone()),
                (None, m) => m,
            };
            let mut pending = self.pending.clone();
            pending.push((pred, query.clone()));
            return SpatialRdd {
                base: self.base.clone(),
                partitioning: self.partitioning.clone(),
                pending,
                pending_mask,
                resolved: OnceLock::new(),
            };
        }
        let masked = match mask {
            Some(m) => self.rdd().with_partition_mask(m),
            None => self.rdd().clone(),
        };
        let q = query.clone();
        let filtered = masked.filter(move |(o, _)| pred.eval(o, &q));
        SpatialRdd::with_info(filtered, self.partitioning.clone())
    }

    /// `withinDistance`: all elements within `max_dist` of `query` under
    /// `dist_fn` (paper §2.3).
    pub fn within_distance(
        &self,
        query: &STObject,
        max_dist: f64,
        dist_fn: DistanceFn,
    ) -> SpatialRdd<V> {
        self.filter(query, STPredicate::WithinDistance { max_dist, dist_fn })
    }

    /// k-nearest-neighbour search (paper §2.3): the `k` records closest
    /// to `query` under `dist_fn`, ascending by distance. Each partition
    /// computes a local top-k in parallel; the driver merges.
    pub fn knn(
        &self,
        query: &STObject,
        k: usize,
        dist_fn: DistanceFn,
    ) -> Vec<(f64, (STObject, V))> {
        if k == 0 {
            return Vec::new();
        }
        let q = query.clone();
        let partials = self.rdd().run_partitions(move |_, data| {
            let mut local: Vec<(f64, (STObject, V))> =
                data.into_iter().map(|(o, v)| (o.distance(&q, dist_fn), (o, v))).collect();
            // total_cmp: NaN distances sort last deterministically instead
            // of destabilising the comparator
            local.sort_by(|a, b| a.0.total_cmp(&b.0));
            local.truncate(k);
            local
        });
        let mut merged: Vec<(f64, (STObject, V))> = partials.into_iter().flatten().collect();
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        merged.truncate(k);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::GridPartitioner;
    use stark_engine::Context;

    fn events(ctx: &Context) -> Rdd<(STObject, u32)> {
        // a 10×10 lattice of timed point events
        let data: Vec<(STObject, u32)> = (0..100)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (STObject::point_at(x, y, i as i64), i)
            })
            .collect();
        ctx.parallelize(data, 8)
    }

    #[test]
    fn ext_trait_adds_operators() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        let qry = STObject::from_wkt("POLYGON((0 0, 3.5 0, 3.5 3.5, 0 3.5, 0 0))").unwrap();
        // timeless query never matches timed events (paper clause 2/3)
        assert_eq!(rdd.contained_by(&qry).count(), 0);

        let qry_timed =
            STObject::from_wkt_interval("POLYGON((0 0, 3.5 0, 3.5 3.5, 0 3.5, 0 0))", 0, 1000)
                .unwrap();
        // 4×4 lattice points inside
        assert_eq!(rdd.contained_by(&qry_timed).count(), 16);
        assert_eq!(rdd.intersects(&qry_timed).count(), 16);
    }

    #[test]
    fn filter_after_partitioning_prunes() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx).spatial();
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
        assert_eq!(part.num_partitions(), 16);

        let qry_timed =
            STObject::from_wkt_interval("POLYGON((0 0, 2.5 0, 2.5 2.5, 0 2.5, 0 0))", 0, 1000)
                .unwrap();
        let before = ctx.metrics();
        let hits = part.filter(&qry_timed, STPredicate::ContainedBy);
        assert_eq!(hits.count(), 9);
        let delta = ctx.metrics().diff(&before);
        assert!(delta.partitions_pruned > 0, "expected pruning, got {delta:?}");
    }

    #[test]
    fn partitioning_preserves_data() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx).spatial();
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(3, &rdd.summarize())));
        assert_eq!(part.count(), 100);
        let mut vals: Vec<u32> = part.collect().into_iter().map(|(_, v)| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn extents_fitted_from_contents() {
        let ctx = Context::with_parallelism(2);
        let rdd = events(&ctx).spatial();
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(2, &rdd.summarize())));
        let info = part.partitioning().unwrap();
        let glommed = part.rdd().glom();
        for (cell, data) in info.cells.iter().zip(glommed) {
            for (o, _) in data {
                assert!(cell.extent.contains_envelope(&o.envelope()));
            }
        }
    }

    #[test]
    fn within_distance_filter() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx).spatial();
        let q = STObject::point_at(5.0, 5.0, 55);
        // distance <= 1 covers the cross around (5,5): but the temporal
        // instants differ, so with timed query nothing matches except t=55
        let got = rdd.within_distance(&q, 1.0, DistanceFn::Euclidean);
        // withinDistance is spatial-only: 5 points (centre + 4 neighbours)
        assert_eq!(got.count(), 5);
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx).spatial();
        let q = STObject::point(4.9, 5.0);
        let nn = rdd.knn(&q, 3, DistanceFn::Euclidean);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].1 .1, 55); // (5, 5) at distance 0.1
        assert_eq!(nn[1].1 .1, 54); // (4, 5) at distance 0.9
        assert!(nn.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn knn_with_k_zero_or_large() {
        let ctx = Context::with_parallelism(2);
        let rdd = events(&ctx).spatial();
        assert!(rdd.knn(&STObject::point(0.0, 0.0), 0, DistanceFn::Euclidean).is_empty());
        assert_eq!(rdd.knn(&STObject::point(0.0, 0.0), 1000, DistanceFn::Euclidean).len(), 100);
    }

    #[test]
    fn filter_chains_compose() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx).spatial();
        let wide =
            STObject::from_wkt_interval("POLYGON((0 0, 9 0, 9 9, 0 9, 0 0))", 0, 1000).unwrap();
        let narrow =
            STObject::from_wkt_interval("POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))", 0, 50).unwrap();
        let result =
            rdd.filter(&wide, STPredicate::ContainedBy).filter(&narrow, STPredicate::ContainedBy);
        // lattice points in [0,2]^2 with t < 50: (x,y) with i = y*10+x <= 22
        let got = result.count();
        assert_eq!(got, 9);
    }
}
