//! Columnar partition layout for the hot filter predicates.
//!
//! A [`ColumnarBatch`] is the struct-of-arrays sidecar of one partition
//! of `(STObject, V)` rows: contiguous centroid (`cx`/`cy`) and envelope
//! (`min/max`) coordinate columns, `t_start`/`t_end` temporal columns
//! with companion bitmaps, a geometry-offsets + payload-index layout,
//! and lane-classification bitmaps. It is built once per partition via
//! [`Partition::to_columns`](stark_engine::Partition) and cached on the
//! shared allocation, so repeated filters over a cached dataset reuse
//! the same columns.
//!
//! [`ColumnarBatch::apply_filter`] evaluates one [`STPredicate`] against
//! the columns, consuming and producing a [`SelectionBitmap`]: chained
//! filters narrow the same bitmap and only the final survivors are
//! gathered back into rows.
//!
//! # Equivalence contract
//!
//! The columnar path must be **byte-identical** to the row path
//! ([`STPredicate::eval`] per row). That holds by construction:
//!
//! * every coarse envelope kernel mirrors an *exact* envelope
//!   short-circuit the row predicate itself performs first, so a lane
//!   the kernel clears is a lane the row path rejects;
//! * a lane is **decided** without refinement only in cases where the
//!   row path's outcome is forced: point rows against point or
//!   exact-rectangle queries (where the envelope test *is* the
//!   predicate), Haversine/Manhattan `withinDistance` (the row path
//!   measures centroids with the same arithmetic), and the temporal
//!   algebra (re-run exactly from the columns);
//! * every undecided lane is refined by calling the row predicate on
//!   the original row, so disagreement is impossible there;
//! * non-regular lanes (non-finite centroid or envelope) bypass the
//!   coarse kernels entirely and go straight to refinement.

use crate::predicate::STPredicate;
use crate::stobject::STObject;
use crate::temporal::Temporal;
use stark_geo::kernels::{
    retain_env_contains, retain_env_intersects, retain_env_within, retain_euclidean_gap,
    retain_haversine_within, retain_manhattan_within, SelectionBitmap,
};
use stark_geo::{Coord, DistanceFn, Geometry};

/// Struct-of-arrays view of one partition's `(STObject, V)` rows.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    len: usize,
    /// Centroid columns — the operands of the distance kernels.
    cx: Vec<f64>,
    cy: Vec<f64>,
    /// Envelope columns — the operands of the coarse spatial kernels.
    /// `NaN` for non-regular lanes so no coarse kernel can select them.
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
    /// Temporal columns; meaningful only where `timed` is set.
    t_start: Vec<i64>,
    t_end: Vec<i64>,
    /// Lane has a temporal component at all.
    timed: SelectionBitmap,
    /// Timed lane is an instant (`t_start`) rather than an interval.
    is_instant: SelectionBitmap,
    /// Timed interval lane is right-open (`[t_start, ∞)`).
    open_end: SelectionBitmap,
    /// Lane has a finite centroid and a finite, non-empty envelope —
    /// eligible for the coarse spatial kernels.
    regular: SelectionBitmap,
    /// Lane's geometry is exactly a `Point` (not merely point-like) —
    /// eligible for envelope-decided predicates.
    exact_point: SelectionBitmap,
    /// Prefix sums of per-row coordinate counts: row `i`'s geometry
    /// owns coordinate slots `geom_offsets[i]..geom_offsets[i + 1]` of
    /// a flattened coordinate store.
    geom_offsets: Vec<u32>,
    /// Lane → index of the backing row in the source partition.
    payload_idx: Vec<u32>,
}

impl ColumnarBatch {
    /// Builds the columns from one partition's rows (one pass).
    pub fn build<V>(rows: &[(STObject, V)]) -> ColumnarBatch {
        let n = rows.len();
        let mut b = ColumnarBatch {
            len: n,
            cx: Vec::with_capacity(n),
            cy: Vec::with_capacity(n),
            min_x: Vec::with_capacity(n),
            min_y: Vec::with_capacity(n),
            max_x: Vec::with_capacity(n),
            max_y: Vec::with_capacity(n),
            t_start: Vec::with_capacity(n),
            t_end: Vec::with_capacity(n),
            timed: SelectionBitmap::none_set(n),
            is_instant: SelectionBitmap::none_set(n),
            open_end: SelectionBitmap::none_set(n),
            regular: SelectionBitmap::none_set(n),
            exact_point: SelectionBitmap::none_set(n),
            geom_offsets: Vec::with_capacity(n + 1),
            payload_idx: Vec::with_capacity(n),
        };
        b.geom_offsets.push(0);
        let mut coords = 0u32;
        for (i, (obj, _)) in rows.iter().enumerate() {
            let c = obj.centroid();
            b.cx.push(c.x);
            b.cy.push(c.y);
            let env = obj.envelope();
            let env_regular = env.min_x().is_finite()
                && env.min_y().is_finite()
                && env.max_x().is_finite()
                && env.max_y().is_finite()
                && !env.is_empty();
            if env_regular && c.is_finite() {
                b.regular.set(i);
                b.min_x.push(env.min_x());
                b.min_y.push(env.min_y());
                b.max_x.push(env.max_x());
                b.max_y.push(env.max_y());
            } else {
                // poison the envelope columns: NaN fails every coarse
                // comparison, so only the refinement path sees the lane
                b.min_x.push(f64::NAN);
                b.min_y.push(f64::NAN);
                b.max_x.push(f64::NAN);
                b.max_y.push(f64::NAN);
            }
            if matches!(obj.geo(), Geometry::Point(_)) {
                b.exact_point.set(i);
            }
            match obj.time() {
                None => {
                    b.t_start.push(0);
                    b.t_end.push(0);
                }
                Some(Temporal::Instant(t)) => {
                    b.timed.set(i);
                    b.is_instant.set(i);
                    b.t_start.push(*t);
                    b.t_end.push(*t);
                }
                Some(Temporal::Interval { start, end }) => {
                    b.timed.set(i);
                    b.t_start.push(*start);
                    match end {
                        Some(e) => b.t_end.push(*e),
                        None => {
                            b.open_end.set(i);
                            b.t_end.push(i64::MAX);
                        }
                    }
                }
            }
            coords += obj.geo().num_coords() as u32;
            b.geom_offsets.push(coords);
            b.payload_idx.push(i as u32);
        }
        b
    }

    /// Number of lanes (rows) in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the backing row for lane `i`.
    pub fn payload_index(&self, i: usize) -> usize {
        self.payload_idx[i] as usize
    }

    /// Coordinate-slot range row `i`'s geometry occupies in a flattened
    /// coordinate store.
    pub fn geom_range(&self, i: usize) -> std::ops::Range<usize> {
        self.geom_offsets[i] as usize..self.geom_offsets[i + 1] as usize
    }

    /// Reconstructs the exact temporal component of lane `i`.
    fn temporal_at(&self, i: usize) -> Option<Temporal> {
        if !self.timed.get(i) {
            None
        } else if self.is_instant.get(i) {
            Some(Temporal::Instant(self.t_start[i]))
        } else if self.open_end.get(i) {
            Some(Temporal::Interval { start: self.t_start[i], end: None })
        } else {
            Some(Temporal::Interval { start: self.t_start[i], end: Some(self.t_end[i]) })
        }
    }

    /// Clears the lanes whose temporal component fails `pred` against
    /// `query` — exact (it re-runs the `Temporal` algebra on the
    /// columns), so it never needs refinement. Mirrors the paper's
    /// combination rule: an untimed query matches only untimed lanes,
    /// a timed query only timed ones.
    fn apply_temporal(&self, pred: &STPredicate, query: &STObject, sel: &mut SelectionBitmap) {
        match query.time() {
            None => sel.retain(|i| !self.timed.get(i)),
            Some(qt) => sel.retain(|i| match self.temporal_at(i) {
                None => false,
                Some(rt) => match pred {
                    STPredicate::Intersects => rt.intersects(qt),
                    STPredicate::Contains => rt.contains(qt),
                    STPredicate::ContainedBy => qt.contains(&rt),
                    STPredicate::WithinDistance { .. } => true,
                },
            }),
        }
    }

    /// Evaluates `pred(row, query)` over the batch, narrowing `sel` to
    /// the lanes where it holds. `refine` must be the row predicate
    /// (`|i| pred.eval(&rows[i].0, query)`); it is called exactly for
    /// the lanes the kernels cannot decide, which keeps the result
    /// byte-identical to the row path.
    pub fn apply_filter(
        &self,
        pred: &STPredicate,
        query: &STObject,
        sel: &mut SelectionBitmap,
        mut refine: impl FnMut(usize) -> bool,
    ) {
        assert_eq!(sel.len(), self.len, "selection bitmap length mismatch");
        match pred {
            STPredicate::Intersects | STPredicate::Contains | STPredicate::ContainedBy => {
                // 1. temporal kernel — exact, drops lanes outright
                self.apply_temporal(pred, query, sel);

                // 2. coarse spatial kernel over the envelope columns
                let q_env = query.envelope();
                if q_env.is_empty() {
                    // the row path's envelope short-circuits reject every
                    // row against an empty query envelope
                    sel.retain(|_| false);
                    return;
                }
                let mut cand = sel.clone();
                match pred {
                    STPredicate::Intersects => retain_env_intersects(
                        &mut cand,
                        &self.min_x,
                        &self.min_y,
                        &self.max_x,
                        &self.max_y,
                        &q_env,
                    ),
                    STPredicate::ContainedBy => retain_env_within(
                        &mut cand,
                        &self.min_x,
                        &self.min_y,
                        &self.max_x,
                        &self.max_y,
                        &q_env,
                    ),
                    STPredicate::Contains => retain_env_contains(
                        &mut cand,
                        &self.min_x,
                        &self.min_y,
                        &self.max_x,
                        &self.max_y,
                        &q_env,
                    ),
                    STPredicate::WithinDistance { .. } => unreachable!(),
                }

                // 3. decide or refine. For point rows the envelope test
                //    *is* the predicate when the query is a point or an
                //    exact axis-parallel rectangle (intersects /
                //    containedBy) or a point/multipoint (contains).
                let decide_points = match pred {
                    STPredicate::Intersects | STPredicate::ContainedBy => {
                        query_is_exact_rect(query.geo())
                    }
                    STPredicate::Contains => {
                        matches!(query.geo(), Geometry::Point(_) | Geometry::MultiPoint(_))
                    }
                    STPredicate::WithinDistance { .. } => unreachable!(),
                };
                sel.retain(|i| {
                    if !self.regular.get(i) {
                        // non-finite lanes never consult the kernels
                        return refine(i);
                    }
                    if !cand.get(i) {
                        // the row path rejects on the same exact envelope test
                        return false;
                    }
                    if decide_points && self.exact_point.get(i) {
                        true
                    } else {
                        refine(i)
                    }
                });
            }
            STPredicate::WithinDistance { max_dist, dist_fn } => match dist_fn {
                // Haversine and Manhattan measure centroids on the row
                // path too — same arithmetic, so the kernel decides every
                // lane (NaN centroids fail on both paths).
                DistanceFn::Haversine => {
                    let qc = query.centroid();
                    retain_haversine_within(sel, &self.cx, &self.cy, &qc, *max_dist);
                }
                DistanceFn::Manhattan => {
                    let qc = query.centroid();
                    retain_manhattan_within(sel, &self.cx, &self.cy, &qc, *max_dist);
                }
                // Euclidean measures exact geometry distance, which the
                // columns cannot reproduce: prune with a padded envelope
                // lower bound, then refine every survivor.
                DistanceFn::Euclidean => {
                    let q_env = query.envelope();
                    if !q_env.is_empty() {
                        // pad above the cutoff: the row path rounds
                        // sqrt(dx²+dy²) differently from hypot
                        let limit = max_dist + 1e-9 * (1.0 + max_dist.abs());
                        retain_euclidean_gap(
                            sel,
                            &self.min_x,
                            &self.min_y,
                            &self.max_x,
                            &self.max_y,
                            &q_env,
                            limit,
                        );
                    }
                    sel.retain(&mut refine);
                }
            },
        }
    }
}

/// Whether `geo` is a point, or a hole-free axis-parallel rectangle
/// whose four corners are exactly its envelope corners — the query
/// shapes for which "point in envelope" *exactly* decides
/// intersects/containedBy (the rectangle's closed region *is* its
/// envelope, and the ray-cast classifies every envelope point as
/// boundary or interior).
fn query_is_exact_rect(geo: &Geometry) -> bool {
    match geo {
        Geometry::Point(_) => true,
        Geometry::Polygon(pg) => {
            if !pg.holes().is_empty() {
                return false;
            }
            let c = pg.exterior().coords_open();
            if c.len() != 4 {
                return false;
            }
            let env = geo.envelope();
            if !(env.min_x() < env.max_x() && env.min_y() < env.max_y()) {
                return false;
            }
            let on_corner = |p: &Coord| {
                (p.x == env.min_x() || p.x == env.max_x())
                    && (p.y == env.min_y() || p.y == env.max_y())
            };
            if !c.iter().all(on_corner) {
                return false;
            }
            // pairwise distinct corners: degenerate revisits would trace
            // a zero-area path, not the rectangle
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if c[i].x == c[j].x && c[i].y == c[j].y {
                        return false;
                    }
                }
            }
            // closed ring must move axis-parallel between corners; with
            // the conditions above the only such cycles are the two
            // rectangle traversals
            (0..4).all(|i| {
                let a = &c[i];
                let b = &c[(i + 1) % 4];
                a.x == b.x || a.y == b.y
            })
        }
        _ => false,
    }
}

/// Convenience used by tests and the engine integration: evaluates a
/// whole predicate chain over one slice of rows columnar-ly, returning
/// the surviving row indices. The production path in
/// [`SpatialRdd`](crate::spatial_rdd::SpatialRdd) does the same but
/// reuses the partition-cached batch.
pub fn columnar_filter_indices<V>(
    rows: &[(STObject, V)],
    chain: &[(STPredicate, STObject)],
) -> Vec<usize> {
    let batch = ColumnarBatch::build(rows);
    let mut sel = SelectionBitmap::all_set(rows.len());
    for (pred, query) in chain {
        if sel.count() == 0 {
            break;
        }
        batch.apply_filter(pred, query, &mut sel, |i| pred.eval(&rows[i].0, query));
    }
    sel.to_indices().into_iter().map(|i| batch.payload_index(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> (STObject, u64) {
        (STObject::point(x, y), (x * 1000.0 + y) as u64)
    }

    fn rows_vs_columns(rows: &[(STObject, u64)], chain: &[(STPredicate, STObject)]) {
        let columnar = columnar_filter_indices(rows, chain);
        let row_path: Vec<usize> =
            (0..rows.len()).filter(|&i| chain.iter().all(|(p, q)| p.eval(&rows[i].0, q))).collect();
        assert_eq!(columnar, row_path, "columnar and row paths disagree");
    }

    #[test]
    fn layout_records_offsets_and_payload_indices() {
        let rows = vec![
            (STObject::point(1.0, 2.0), 0u64),
            (STObject::new(Geometry::from_wkt("POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap()), 1),
        ];
        let b = ColumnarBatch::build(&rows);
        assert_eq!(b.len(), 2);
        assert_eq!(b.geom_range(0), 0..1);
        assert_eq!(b.geom_range(1), 1..6, "closed polygon ring has 5 coords");
        assert_eq!(b.payload_index(0), 0);
        assert_eq!(b.payload_index(1), 1);
    }

    #[test]
    fn rect_query_chain_matches_row_path() {
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push(pt(i as f64 * 0.5, (i % 7) as f64));
        }
        // the boundary cases the exact-rectangle decision must honour
        rows.push(pt(2.0, 0.0)); // on the query's corner
        rows.push(pt(2.0, 3.5)); // on an edge
        let q = STObject::new(Geometry::from_wkt("POLYGON((2 0, 9 0, 9 6, 2 6, 2 0))").unwrap());
        rows_vs_columns(&rows, &[(STPredicate::Intersects, q.clone())]);
        rows_vs_columns(&rows, &[(STPredicate::ContainedBy, q.clone())]);
        rows_vs_columns(&rows, &[(STPredicate::Contains, q)]);
    }

    #[test]
    fn non_rect_queries_fall_back_to_refinement() {
        let rows: Vec<_> = (0..30).map(|i| pt(i as f64, i as f64 * 0.3)).collect();
        // a triangle is never envelope-decided
        let tri = STObject::new(Geometry::from_wkt("POLYGON((0 0, 10 0, 0 10, 0 0))").unwrap());
        assert!(!query_is_exact_rect(tri.geo()));
        rows_vs_columns(&rows, &[(STPredicate::Intersects, tri.clone())]);
        rows_vs_columns(&rows, &[(STPredicate::ContainedBy, tri)]);
    }

    #[test]
    fn degenerate_rectangles_are_not_exact() {
        // a zero-area "rectangle" revisiting corners must not be decided
        let degen = Geometry::from_wkt("POLYGON((0 0, 5 0, 0 0, 0 5, 0 0))")
            .map(|g| query_is_exact_rect(&g));
        if let Ok(flag) = degen {
            assert!(!flag);
        }
        let line_env = Geometry::from_wkt("POLYGON((0 0, 5 0, 5 0, 0 0, 0 0))")
            .map(|g| query_is_exact_rect(&g));
        if let Ok(flag) = line_env {
            assert!(!flag);
        }
    }

    #[test]
    fn temporal_kernel_is_exact() {
        let timed = |x: f64, s: i64, e: i64| {
            (STObject::with_time(Geometry::point(x, 0.0), Temporal::interval(s, e)), x as u64)
        };
        let rows = vec![
            (STObject::point(1.0, 0.0), 100u64), // untimed
            timed(2.0, 0, 10),
            timed(3.0, 5, 25),
            timed(4.0, 30, 40),
            (STObject::with_time(Geometry::point(5.0, 0.0), Temporal::instant(7)), 101),
            (STObject::with_time(Geometry::point(6.0, 0.0), Temporal::from_instant_on(20)), 102),
            (STObject::with_time(Geometry::point(7.0, 0.0), Temporal::instant(35)), 103),
        ];
        let q_rect = "POLYGON((0 0, 10 0, 10 1, 0 1, 0 0))";
        let q_timed = STObject::from_wkt_interval(q_rect, 5, 20).unwrap();
        let q_untimed = STObject::new(Geometry::from_wkt(q_rect).unwrap());
        for pred in [STPredicate::Intersects, STPredicate::Contains, STPredicate::ContainedBy] {
            rows_vs_columns(&rows, &[(pred, q_timed.clone())]);
            rows_vs_columns(&rows, &[(pred, q_untimed.clone())]);
        }
    }

    #[test]
    fn within_distance_kernels_match_row_path() {
        let rows: Vec<_> = (0..50).map(|i| pt((i % 10) as f64, (i / 10) as f64)).collect();
        let q = STObject::point(4.5, 2.5);
        for dist_fn in [DistanceFn::Euclidean, DistanceFn::Haversine, DistanceFn::Manhattan] {
            let pred = STPredicate::WithinDistance { max_dist: 250_000.0, dist_fn };
            rows_vs_columns(&rows, &[(pred, q.clone())]);
            let tight = STPredicate::WithinDistance { max_dist: 2.0, dist_fn };
            rows_vs_columns(&rows, &[(tight, q.clone())]);
        }
    }

    #[test]
    fn nan_rows_match_row_path_on_every_predicate() {
        let mut rows: Vec<_> = (0..10).map(|i| pt(i as f64, 1.0)).collect();
        rows.push(pt(f64::NAN, 3.0));
        rows.push(pt(2.0, f64::INFINITY));
        let q = STObject::new(Geometry::from_wkt("POLYGON((0 0, 5 0, 5 5, 0 5, 0 0))").unwrap());
        rows_vs_columns(&rows, &[(STPredicate::Intersects, q.clone())]);
        rows_vs_columns(&rows, &[(STPredicate::ContainedBy, q.clone())]);
        rows_vs_columns(&rows, &[(STPredicate::Contains, q.clone())]);
        for dist_fn in [DistanceFn::Euclidean, DistanceFn::Haversine, DistanceFn::Manhattan] {
            let pred = STPredicate::WithinDistance { max_dist: 3.0, dist_fn };
            rows_vs_columns(&rows, &[(pred, STObject::point(2.0, 2.0))]);
        }
    }

    #[test]
    fn chained_filters_narrow_one_bitmap() {
        let rows: Vec<_> = (0..100).map(|i| pt((i % 20) as f64, (i / 20) as f64)).collect();
        let big =
            STObject::new(Geometry::from_wkt("POLYGON((1 0, 15 0, 15 4, 1 4, 1 0))").unwrap());
        let near = STPredicate::within_distance(4.0);
        let chain = vec![(STPredicate::ContainedBy, big), (near, STObject::point(8.0, 2.0))];
        rows_vs_columns(&rows, &chain);
    }
}
