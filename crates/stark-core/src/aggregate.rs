//! Spatial aggregation: per-cell statistics over a fixed grid — the
//! "spatio-temporal join and aggregation" part of the paper's
//! demonstration scenarios (§4), and the input to the front end's
//! heatmap-style visualisations.

use crate::spatial_rdd::SpatialRdd;
use stark_engine::{Data, Rdd};
use stark_geo::Envelope;

/// Per-cell aggregate of a grid aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// Grid column (x) and row (y).
    pub col: usize,
    pub row: usize,
    /// The cell's spatial bounds.
    pub bounds: Envelope,
    /// Number of records whose centroid falls in the cell.
    pub count: u64,
    /// Earliest and latest event start among timed records, if any.
    pub time_range: Option<(i64, i64)>,
}

impl<V: Data> SpatialRdd<V> {
    /// Aggregates the dataset onto a `dims × dims` grid over `space`:
    /// per cell, the record count and covered time range. Returns only
    /// non-empty cells, ordered row-major. Records with centroids outside
    /// `space` clamp to the border cells, so totals always match.
    pub fn aggregate_by_grid(&self, dims: usize, space: &Envelope) -> Vec<CellStats> {
        let dims = dims.max(1);
        assert!(!space.is_empty(), "aggregation space must be non-empty");
        let cell_w = (space.width() / dims as f64).max(f64::MIN_POSITIVE);
        let cell_h = (space.height() / dims as f64).max(f64::MIN_POSITIVE);
        let (sx, sy) = (space.min_x(), space.min_y());

        // per-partition partial grids, merged on the driver
        type Partial = Vec<(u64, Option<(i64, i64)>)>;
        let partials: Vec<Partial> = {
            self.rdd().run_partitions(move |_, data| {
                let mut grid: Partial = vec![(0, None); dims * dims];
                for (o, _) in &data {
                    let c = o.centroid();
                    let col =
                        (((c.x - sx) / cell_w).floor() as i64).clamp(0, dims as i64 - 1) as usize;
                    let row =
                        (((c.y - sy) / cell_h).floor() as i64).clamp(0, dims as i64 - 1) as usize;
                    let slot = &mut grid[row * dims + col];
                    slot.0 += 1;
                    if let Some(t) = o.time() {
                        let s = t.start();
                        slot.1 = Some(match slot.1 {
                            Some((lo, hi)) => (lo.min(s), hi.max(s)),
                            None => (s, s),
                        });
                    }
                }
                grid
            })
        };

        let mut merged: Vec<(u64, Option<(i64, i64)>)> = vec![(0, None); dims * dims];
        for grid in partials {
            for (slot, (count, range)) in merged.iter_mut().zip(grid) {
                slot.0 += count;
                slot.1 = match (slot.1, range) {
                    (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                    (got, None) => got,
                    (None, got) => got,
                };
            }
        }

        merged
            .into_iter()
            .enumerate()
            .filter(|(_, (count, _))| *count > 0)
            .map(|(i, (count, time_range))| {
                let col = i % dims;
                let row = i / dims;
                let min_x = sx + col as f64 * cell_w;
                let min_y = sy + row as f64 * cell_h;
                CellStats {
                    col,
                    row,
                    bounds: Envelope::from_bounds(min_x, min_y, min_x + cell_w, min_y + cell_h),
                    count,
                    time_range,
                }
            })
            .collect()
    }

    /// Count of records per category produced by `key`, as a dataset —
    /// the distributed counterpart of Piglet's `GROUP ... BY`.
    pub fn count_by(
        &self,
        key: impl Fn(&crate::stobject::STObject, &V) -> String + Send + Sync + 'static,
    ) -> Rdd<(String, u64)> {
        self.rdd()
            .map(move |(o, v)| (key(&o, &v), 1u64))
            .reduce_by_key(self.rdd().context().default_partitions(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_rdd::SpatialRddExt;
    use crate::stobject::STObject;
    use stark_engine::Context;

    fn events(ctx: &Context) -> SpatialRdd<u32> {
        // 4 points in each quadrant of [0,10]^2, with distinct times
        let mut data = Vec::new();
        let mut id = 0u32;
        for &(qx, qy) in &[(1.0, 1.0), (6.0, 1.0), (1.0, 6.0), (6.0, 6.0)] {
            for i in 0..4 {
                data.push((STObject::point_at(qx + i as f64 * 0.5, qy, id as i64 * 10), id));
                id += 1;
            }
        }
        ctx.parallelize(data, 3).spatial()
    }

    #[test]
    fn quadrant_aggregation() {
        let ctx = Context::with_parallelism(2);
        let rdd = events(&ctx);
        let cells = rdd.aggregate_by_grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.count == 4));
        let total: u64 = cells.iter().map(|c| c.count).sum();
        assert_eq!(total, 16);
        // row-major ordering and coordinates
        assert_eq!((cells[0].col, cells[0].row), (0, 0));
        assert_eq!((cells[3].col, cells[3].row), (1, 1));
        assert_eq!(cells[0].bounds, Envelope::from_bounds(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn time_ranges_are_tracked() {
        let ctx = Context::with_parallelism(2);
        let rdd = events(&ctx);
        let cells = rdd.aggregate_by_grid(2, &Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        // first quadrant holds ids 0..4 → times 0..30
        let q0 = cells.iter().find(|c| (c.col, c.row) == (0, 0)).unwrap();
        assert_eq!(q0.time_range, Some((0, 30)));
        // last quadrant holds ids 12..16 → times 120..150
        let q3 = cells.iter().find(|c| (c.col, c.row) == (1, 1)).unwrap();
        assert_eq!(q3.time_range, Some((120, 150)));
    }

    #[test]
    fn out_of_space_points_clamp() {
        let ctx = Context::with_parallelism(2);
        let data =
            vec![(STObject::point(-100.0, -100.0), 0u32), (STObject::point(100.0, 100.0), 1)];
        let rdd = ctx.parallelize(data, 1).spatial();
        let cells = rdd.aggregate_by_grid(3, &Envelope::from_bounds(0.0, 0.0, 9.0, 9.0));
        let total: u64 = cells.iter().map(|c| c.count).sum();
        assert_eq!(total, 2, "clamped records are still counted");
    }

    #[test]
    fn untimed_records_have_no_time_range() {
        let ctx = Context::with_parallelism(2);
        let data = vec![(STObject::point(1.0, 1.0), 0u32)];
        let rdd = ctx.parallelize(data, 1).spatial();
        let cells = rdd.aggregate_by_grid(1, &Envelope::from_bounds(0.0, 0.0, 2.0, 2.0));
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].time_range, None);
    }

    #[test]
    fn count_by_category() {
        let ctx = Context::with_parallelism(2);
        let data: Vec<(STObject, String)> = (0..30)
            .map(|i| {
                (STObject::point(i as f64, 0.0), if i % 3 == 0 { "a" } else { "b" }.to_string())
            })
            .collect();
        let rdd = ctx.parallelize(data, 4).spatial();
        let mut counts = rdd.count_by(|_, cat| cat.clone()).collect();
        counts.sort();
        assert_eq!(counts, vec![("a".to_string(), 10), ("b".to_string(), 20)]);
    }
}
