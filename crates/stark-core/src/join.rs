//! Spatio-temporal joins (paper §2.3).
//!
//! The join evaluates a predicate over pairs drawn from two datasets.
//! Execution follows STARK's partition-pair scheme: every pair of
//! partitions whose *extents* could satisfy the predicate becomes one
//! task; each pair is evaluated exactly once, so — unlike replication
//! based approaches — no duplicate elimination is needed. Within a task
//! the right side can be live-indexed with an STR-tree.

use crate::predicate::STPredicate;
use crate::spatial_rdd::SpatialRdd;
use crate::stobject::STObject;
use stark_engine::{Data, Rdd, StoreData};
use stark_geo::{DistanceFn, Envelope};
use stark_index::{Entry, StrTree};

/// Per-task index mode for the join (paper §2.2's modes; persistent
/// indexes join through [`crate::IndexedSpatialRdd::filter`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinIndexMode {
    /// Nested-loop evaluation of each partition pair.
    NoIndex,
    /// Build an STR-tree of the given order over the right side of each
    /// pair and probe it with every left element.
    Live { order: usize },
}

/// Join configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinConfig {
    pub index: JoinIndexMode,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig { index: JoinIndexMode::Live { order: stark_index::DEFAULT_ORDER } }
    }
}

impl JoinConfig {
    pub fn nested_loop() -> Self {
        JoinConfig { index: JoinIndexMode::NoIndex }
    }
    pub fn live_index(order: usize) -> Self {
        JoinConfig { index: JoinIndexMode::Live { order } }
    }
}

/// Whether a partition pair with these extents can contain a matching
/// element pair under `pred`. Sound, possibly not tight.
fn pair_may_match(pred: &STPredicate, left: &Envelope, right: &Envelope) -> bool {
    if left.is_empty() || right.is_empty() {
        return false;
    }
    match pred {
        // intersects / contains / containedBy all require the element
        // MBRs to share a point, hence the extents must share one
        STPredicate::Intersects | STPredicate::Contains | STPredicate::ContainedBy => {
            left.intersects(right)
        }
        STPredicate::WithinDistance { max_dist, dist_fn } => {
            let (dx, dy) = left.axis_distances(right);
            dist_fn.lower_bound_from_axis_gaps(dx, dy) <= *max_dist
        }
    }
}

/// Extents of each engine partition (used when a side carries no spatial
/// partitioning metadata).
fn partition_extents<V: Data>(rdd: &Rdd<(STObject, V)>) -> Vec<Envelope> {
    rdd.run_partitions(|_, data| {
        let mut env = Envelope::empty();
        for (o, _) in &data {
            env.expand_to_include_envelope(&o.envelope());
        }
        env
    })
}

impl<V: Data> SpatialRdd<V> {
    /// Spatio-temporal join: all pairs `(l, r)` with `pred(l, r)` true.
    ///
    /// If this side is spatially partitioned and `other` is not, `other`
    /// is re-partitioned with the same partitioner first, so most
    /// partition pairs are pruned by their extents. Without partitioning
    /// the join degenerates to (pruned) all-pairs partition tasks —
    /// correct, just slower, exactly as in the paper's "No Partitioning"
    /// measurements.
    pub fn join<W: StoreData>(
        &self,
        other: &SpatialRdd<W>,
        pred: STPredicate,
        cfg: JoinConfig,
    ) -> Rdd<((STObject, V), (STObject, W))> {
        // Align the right side with the left's partitioner when possible.
        let aligned_right: SpatialRdd<W> = match (self.partitioning(), other.partitioning()) {
            (Some(info), None) => match &info.partitioner {
                Some(p) => other.partition_by(p.clone()),
                None => other.clone(),
            },
            _ => other.clone(),
        };

        let left_rdd = self.rdd().cache();
        let right_rdd = aligned_right.rdd().cache();

        let left_extents: Vec<Envelope> = match self.partitioning() {
            Some(info) => info.cells.iter().map(|c| c.extent).collect(),
            None => partition_extents(&left_rdd),
        };
        let right_extents: Vec<Envelope> = match aligned_right.partitioning() {
            Some(info) => info.cells.iter().map(|c| c.extent).collect(),
            None => partition_extents(&right_rdd),
        };

        let mut pairs = Vec::new();
        for (i, le) in left_extents.iter().enumerate() {
            for (j, re) in right_extents.iter().enumerate() {
                if pair_may_match(&pred, le, re) {
                    pairs.push((i, j));
                }
            }
        }

        let index_mode = cfg.index;
        left_rdd.join_partition_pairs(&right_rdd, pairs, move |ldata, rdata| {
            local_join(&pred, index_mode, &ldata, &rdata)
        })
    }

    /// Self join, the paper's Figure 4 workload: all pairs `(a, b)` of
    /// records of this dataset with `pred(a, b)` true (including `a = b`).
    pub fn self_join(
        &self,
        pred: STPredicate,
        cfg: JoinConfig,
    ) -> Rdd<((STObject, V), (STObject, V))>
    where
        V: StoreData,
    {
        self.join(self, pred, cfg)
    }

    /// Distance join sugar: pairs within `max_dist` under `dist_fn`.
    pub fn distance_join<W: StoreData>(
        &self,
        other: &SpatialRdd<W>,
        max_dist: f64,
        dist_fn: DistanceFn,
        cfg: JoinConfig,
    ) -> Rdd<((STObject, V), (STObject, W))> {
        self.join(other, STPredicate::WithinDistance { max_dist, dist_fn }, cfg)
    }
}

fn local_join<V: Data, W: Data>(
    pred: &STPredicate,
    index: JoinIndexMode,
    ldata: &[(STObject, V)],
    rdata: &[(STObject, W)],
) -> Vec<((STObject, V), (STObject, W))> {
    let mut out = Vec::new();
    match index {
        JoinIndexMode::NoIndex => {
            for l in ldata {
                for r in rdata {
                    if pred.eval(&l.0, &r.0) {
                        out.push((l.clone(), r.clone()));
                    }
                }
            }
        }
        JoinIndexMode::Live { order } => {
            let entries: Vec<Entry<usize>> =
                rdata.iter().enumerate().map(|(i, (o, _))| Entry::new(o.envelope(), i)).collect();
            let tree = StrTree::build(order, entries);
            for l in ldata {
                let probe = pred.index_probe(&l.0);
                tree.for_each_candidate(&probe, &mut |entry| {
                    let r = &rdata[entry.item];
                    if pred.eval(&l.0, &r.0) {
                        out.push((l.clone(), r.clone()));
                    }
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{BspPartitioner, GridPartitioner};
    use crate::spatial_rdd::SpatialRddExt;
    use stark_engine::Context;
    use std::sync::Arc;

    fn points(ctx: &Context, pts: &[(f64, f64)]) -> SpatialRdd<u32> {
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        ctx.parallelize(data, 4).spatial()
    }

    /// Reference nested-loop join over collected data.
    fn reference_join(
        a: &[(STObject, u32)],
        b: &[(STObject, u32)],
        pred: STPredicate,
    ) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (lo, lv) in a {
            for (ro, rv) in b {
                if pred.eval(lo, ro) {
                    out.push((*lv, *rv));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn ids(result: Vec<((STObject, u32), (STObject, u32))>) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = result.into_iter().map(|((_, a), (_, b))| (a, b)).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn self_join_no_partitioning_matches_reference() {
        let ctx = Context::with_parallelism(4);
        // duplicated coordinates → non-trivial intersects self-join
        let pts = [(0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (2.0, 2.0), (1.0, 1.0), (1.0, 1.0)];
        let rdd = points(&ctx, &pts);
        let expect = reference_join(&rdd.collect(), &rdd.collect(), STPredicate::Intersects);
        for cfg in [JoinConfig::nested_loop(), JoinConfig::live_index(4)] {
            let got = ids(rdd.self_join(STPredicate::Intersects, cfg).collect());
            assert_eq!(got, expect, "cfg {cfg:?}");
        }
    }

    #[test]
    fn partitioned_self_join_matches_unpartitioned() {
        let ctx = Context::with_parallelism(4);
        let pts: Vec<(f64, f64)> =
            (0..200).map(|i| (((i * 7) % 50) as f64 / 5.0, ((i * 13) % 50) as f64 / 5.0)).collect();
        let rdd = points(&ctx, &pts);
        let plain = ids(rdd.self_join(STPredicate::Intersects, JoinConfig::default()).collect());

        let grid = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
        let got_grid =
            ids(grid.self_join(STPredicate::Intersects, JoinConfig::default()).collect());
        assert_eq!(got_grid, plain);

        let bsp = rdd.partition_by(Arc::new(BspPartitioner::build(20, 0.5, &rdd.summarize())));
        let got_bsp = ids(bsp.self_join(STPredicate::Intersects, JoinConfig::default()).collect());
        assert_eq!(got_bsp, plain);
    }

    #[test]
    fn join_repartitions_unpartitioned_right_side() {
        let ctx = Context::with_parallelism(4);
        let left_pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64)).collect();
        let right_pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64)).collect();
        let left = points(&ctx, &left_pts).partition_by(Arc::new(GridPartitioner::build(
            3,
            &points(&ctx, &left_pts).summarize(),
        )));
        let right = points(&ctx, &right_pts);
        let got = ids(left.join(&right, STPredicate::Intersects, JoinConfig::default()).collect());
        // diagonal: each point matches exactly its twin
        let expect: Vec<(u32, u32)> = (0..50).map(|i| (i, i)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn distance_join() {
        let ctx = Context::with_parallelism(4);
        let a = points(&ctx, &[(0.0, 0.0), (10.0, 0.0)]);
        let b = points(&ctx, &[(0.5, 0.0), (20.0, 0.0)]);
        let got =
            ids(a.distance_join(&b, 1.0, DistanceFn::Euclidean, JoinConfig::default()).collect());
        assert_eq!(got, vec![(0, 0)]);
    }

    #[test]
    fn contains_join_directional() {
        let ctx = Context::with_parallelism(2);
        let regions: Vec<(STObject, u32)> = vec![
            (STObject::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap(), 0),
            (STObject::from_wkt("POLYGON((20 20, 30 20, 30 30, 20 30, 20 20))").unwrap(), 1),
        ];
        let pts: Vec<(STObject, u32)> = vec![
            (STObject::point(5.0, 5.0), 0),
            (STObject::point(25.0, 25.0), 1),
            (STObject::point(50.0, 50.0), 2),
        ];
        let regions = ctx.parallelize(regions, 2).spatial();
        let pts = ctx.parallelize(pts, 2).spatial();
        let got = ids(regions.join(&pts, STPredicate::Contains, JoinConfig::default()).collect());
        assert_eq!(got, vec![(0, 0), (1, 1)]);
        let rev =
            ids(pts.join(&regions, STPredicate::ContainedBy, JoinConfig::default()).collect());
        assert_eq!(rev, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn temporal_join_respects_time_rule() {
        let ctx = Context::with_parallelism(2);
        let a: Vec<(STObject, u32)> =
            vec![(STObject::point_at(0.0, 0.0, 10), 0), (STObject::point_at(0.0, 0.0, 99), 1)];
        let b: Vec<(STObject, u32)> = vec![(STObject::point_at(0.0, 0.0, 10), 0)];
        let a = ctx.parallelize(a, 1).spatial();
        let b = ctx.parallelize(b, 1).spatial();
        let got = ids(a.join(&b, STPredicate::Intersects, JoinConfig::default()).collect());
        assert_eq!(got, vec![(0, 0)], "same place, different instant must not join");
    }

    #[test]
    fn partition_pair_pruning_reduces_tasks() {
        let ctx = Context::with_parallelism(4);
        // two well-separated clusters
        let mut pts = Vec::new();
        for i in 0..100 {
            pts.push(((i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1));
        }
        for i in 0..100 {
            pts.push((1000.0 + (i % 10) as f64 * 0.1, 1000.0 + (i / 10) as f64 * 0.1));
        }
        let rdd = points(&ctx, &pts);
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
        let joined = part.self_join(STPredicate::Intersects, JoinConfig::default());
        // far fewer than 16×16 candidate pairs survive extent pruning
        assert!(joined.num_partitions() < 50, "pairs: {}", joined.num_partitions());
        assert_eq!(joined.count(), 200, "each point matches only itself");
    }
}
