//! Index modes (paper §2.2): live indexing and persistent indexing.
//!
//! *Live indexing* builds an STR-tree over each partition's content the
//! first time the partition is processed; queries probe the tree and then
//! refine the candidates with the exact spatio-temporal predicate —
//! including the temporal component, exactly as the paper describes the
//! candidate-pruning step.
//!
//! *Persistent indexing* additionally serialises the per-partition trees
//! (plus the partitioning metadata) to an [`ObjectStore`], so subsequent
//! programs can reload them without re-building.

use crate::error::StarkError;
use crate::partitioner::{PartitionCell, SpatialPartitioner};
use crate::predicate::STPredicate;
use crate::spatial_rdd::{PartitioningInfo, SpatialRdd};
use crate::stobject::STObject;
use serde::de::DeserializeOwned;
use serde::Serialize;
use stark_engine::{Context, Data, ObjectStore, Rdd, StoreData};
use stark_geo::DistanceFn;
use stark_index::{Entry, StrTree};
use std::sync::Arc;

/// A spatially (optionally) partitioned dataset whose partitions are
/// materialised as STR-trees.
pub struct IndexedSpatialRdd<V: Data> {
    trees: Rdd<Arc<StrTree<(STObject, V)>>>,
    partitioning: Option<Arc<PartitioningInfo>>,
    order: usize,
}

impl<V: Data> Clone for IndexedSpatialRdd<V> {
    fn clone(&self) -> Self {
        IndexedSpatialRdd {
            trees: self.trees.clone(),
            partitioning: self.partitioning.clone(),
            order: self.order,
        }
    }
}

impl<V: Data> SpatialRdd<V> {
    /// Live indexing (paper: `liveIndex(order)`): builds one STR-tree per
    /// partition. The returned handle answers the same queries as the
    /// un-indexed dataset; trees are cached so repeated queries reuse
    /// them.
    pub fn live_index(&self, order: usize) -> IndexedSpatialRdd<V> {
        let trees = self
            .rdd()
            .map_partitions(move |data| {
                let entries: Vec<Entry<(STObject, V)>> =
                    data.into_iter().map(|(o, v)| Entry::new(o.envelope(), (o, v))).collect();
                vec![Arc::new(StrTree::build(order, entries))]
            })
            .cache();
        IndexedSpatialRdd { trees, partitioning: self.partitioning().cloned(), order }
    }

    /// Live indexing with re-partitioning first (paper: the optional
    /// partitioner argument of `liveIndex`).
    pub fn live_index_with(
        &self,
        order: usize,
        partitioner: Arc<dyn SpatialPartitioner>,
    ) -> IndexedSpatialRdd<V>
    where
        V: StoreData,
    {
        self.partition_by(partitioner).live_index(order)
    }
}

impl<V: Data> IndexedSpatialRdd<V> {
    /// The per-partition trees as an engine dataset.
    pub fn trees(&self) -> &Rdd<Arc<StrTree<(STObject, V)>>> {
        &self.trees
    }

    /// Partitioning metadata, when spatially partitioned.
    pub fn partitioning(&self) -> Option<&Arc<PartitioningInfo>> {
        self.partitioning.as_ref()
    }

    /// The tree order the index was built with.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of partitions (= number of trees).
    pub fn num_partitions(&self) -> usize {
        self.trees.num_partitions()
    }

    /// Total number of indexed records.
    pub fn count(&self) -> usize {
        self.trees
            .run_partitions(|_, trees| trees.iter().map(|t| t.len()).sum::<usize>())
            .into_iter()
            .sum()
    }

    /// Index-accelerated filter: prunes partitions by extent, probes each
    /// surviving tree for MBR candidates, then refines with the exact
    /// spatio-temporal predicate (temporal check included — the paper's
    /// candidate-pruning step).
    pub fn filter(&self, query: &STObject, pred: STPredicate) -> Rdd<(STObject, V)> {
        let masked = match &self.partitioning {
            Some(info) => self.trees.with_partition_mask(info.mask_for(&pred, query)),
            None => self.trees.clone(),
        };
        let probe = pred.index_probe(query);
        let q = query.clone();
        masked.map_partitions(move |trees| {
            let mut out = Vec::new();
            for tree in trees {
                tree.for_each_candidate(&probe, &mut |entry| {
                    let (o, v) = &entry.item;
                    if pred.eval(o, &q) {
                        out.push((o.clone(), v.clone()));
                    }
                });
            }
            out
        })
    }

    /// Convenience: `filter(query, Intersects)` — the paper's
    /// `liveIndex(order = 5).intersect(qry)` example.
    pub fn intersects(&self, query: &STObject) -> Rdd<(STObject, V)> {
        self.filter(query, STPredicate::Intersects)
    }

    /// Convenience: `filter(query, Contains)`.
    pub fn contains(&self, query: &STObject) -> Rdd<(STObject, V)> {
        self.filter(query, STPredicate::Contains)
    }

    /// Convenience: `filter(query, ContainedBy)`.
    pub fn contained_by(&self, query: &STObject) -> Rdd<(STObject, V)> {
        self.filter(query, STPredicate::ContainedBy)
    }

    /// Convenience: `filter` with a `WithinDistance` predicate.
    pub fn within_distance(
        &self,
        query: &STObject,
        max_dist: f64,
        dist_fn: DistanceFn,
    ) -> Rdd<(STObject, V)> {
        self.filter(query, STPredicate::WithinDistance { max_dist, dist_fn })
    }

    /// Exact k-nearest-neighbour search through the index.
    ///
    /// Per partition, candidates are pulled from the tree in ascending
    /// envelope-distance order (a lower bound on the true distance) and
    /// the fetch is enlarged until the bound passes the provisional k-th
    /// exact distance, guaranteeing exactness for every geometry kind.
    pub fn knn(
        &self,
        query: &STObject,
        k: usize,
        dist_fn: DistanceFn,
    ) -> Vec<(f64, (STObject, V))> {
        if k == 0 {
            return Vec::new();
        }
        let q = query.clone();
        let target = query.centroid();
        let partials = self.trees.run_partitions(move |_, trees| {
            let mut local: Vec<(f64, (STObject, V))> = Vec::new();
            for tree in trees {
                let mut fetch = (k * 4).max(32).min(tree.len());
                loop {
                    let candidates = tree.nearest_k(&target, fetch);
                    let mut exact: Vec<(f64, &Entry<(STObject, V)>)> = candidates
                        .iter()
                        .map(|(_, e)| (e.item.0.distance(&q, dist_fn), *e))
                        .collect();
                    exact.sort_by(|a, b| a.0.total_cmp(&b.0));
                    exact.truncate(k);
                    let kth = exact.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY);
                    let frontier = candidates.last().map(|(lb, _)| *lb).unwrap_or(f64::INFINITY);
                    // Done when we have everything, or the next unseen
                    // lower bound cannot beat our provisional k-th.
                    // (Envelope distance lower-bounds Euclidean distance;
                    // for other metrics fall back to full enumeration.)
                    let sound_bound = matches!(dist_fn, DistanceFn::Euclidean);
                    if fetch >= tree.len() || (sound_bound && exact.len() == k && frontier >= kth) {
                        local.extend(exact.into_iter().map(|(d, e)| (d, e.item.clone())));
                        break;
                    }
                    fetch = (fetch * 2).min(tree.len().max(1));
                    if !sound_bound {
                        fetch = tree.len();
                    }
                }
            }
            local.sort_by(|a, b| a.0.total_cmp(&b.0));
            local.truncate(k);
            local
        });
        let mut merged: Vec<(f64, (STObject, V))> = partials.into_iter().flatten().collect();
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        merged.truncate(k);
        merged
    }
}

/// Serialised form of the persisted-index metadata.
#[derive(serde::Serialize, serde::Deserialize)]
struct PersistedMeta {
    num_partitions: usize,
    order: usize,
    cells: Option<Vec<PartitionCell>>,
    #[serde(default)]
    time_extents: Option<Vec<crate::temporal::TemporalExtent>>,
}

impl<V: Data + Serialize + DeserializeOwned> IndexedSpatialRdd<V> {
    /// Persists the index under `name` in the object store (paper:
    /// `index(order, partitioner)` followed by saving to HDFS). The same
    /// in-memory index remains usable — no extra pass is needed.
    pub fn persist(&self, store: &ObjectStore, name: &str) -> Result<(), StarkError> {
        let meta = PersistedMeta {
            num_partitions: self.num_partitions(),
            order: self.order,
            cells: self.partitioning.as_ref().map(|p| p.cells.clone()),
            time_extents: self.partitioning.as_ref().map(|p| p.time_extents.clone()),
        };
        store.put_json(&format!("{name}/meta.json"), &meta)?;

        // Serialise each partition's tree in parallel, then write.
        let blobs: Vec<Vec<u8>> = self.trees.run_partitions(|_, trees| {
            trees
                .first()
                .map(|t| serde_json::to_vec(t.as_ref()).expect("tree serialisation"))
                .unwrap_or_default()
        });
        for (i, blob) in blobs.iter().enumerate() {
            store.put_bytes(&format!("{name}/part-{i:05}.json"), blob)?;
        }
        Ok(())
    }

    /// Loads a previously persisted index. The loaded handle supports all
    /// queries including extent-based pruning; re-partitioning requires a
    /// live partitioner and is not restored.
    pub fn load(
        ctx: &Context,
        store: &ObjectStore,
        name: &str,
    ) -> Result<IndexedSpatialRdd<V>, StarkError> {
        let meta: PersistedMeta = store.get_json(&format!("{name}/meta.json"))?;
        let mut trees: Vec<Arc<StrTree<(STObject, V)>>> = Vec::with_capacity(meta.num_partitions);
        for i in 0..meta.num_partitions {
            let blob = store.get_bytes(&format!("{name}/part-{i:05}.json"))?;
            let tree: StrTree<(STObject, V)> =
                serde_json::from_slice(&blob).map_err(stark_engine::StorageError::from)?;
            trees.push(Arc::new(tree));
        }
        let n = trees.len().max(1);
        let trees = ctx.parallelize(trees, n);
        let time_extents = meta.time_extents.unwrap_or_default();
        let partitioning = meta
            .cells
            .map(|cells| Arc::new(PartitioningInfo { partitioner: None, cells, time_extents }));
        Ok(IndexedSpatialRdd { trees, partitioning, order: meta.order })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::GridPartitioner;
    use crate::spatial_rdd::SpatialRddExt;
    use stark_engine::Context;

    fn events(ctx: &Context) -> SpatialRdd<u32> {
        let data: Vec<(STObject, u32)> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                (STObject::point_at(x, y, i as i64), i)
            })
            .collect();
        ctx.parallelize(data, 6).spatial()
    }

    fn qry() -> STObject {
        STObject::from_wkt_interval("POLYGON((2 2, 6 2, 6 6, 2 6, 2 2))", 0, 10_000).unwrap()
    }

    #[test]
    fn live_index_filter_matches_unindexed() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        let plain: usize = rdd.filter(&qry(), STPredicate::ContainedBy).count();
        let indexed = rdd.live_index(5).contained_by(&qry()).count();
        assert_eq!(plain, indexed);
        assert!(plain > 0);
    }

    #[test]
    fn live_index_with_partitioner_matches_too() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        let part = Arc::new(GridPartitioner::build(4, &rdd.summarize()));
        let indexed = rdd.live_index_with(5, part);
        assert_eq!(indexed.num_partitions(), 16);
        let got = indexed.intersects(&qry()).count();
        let expect = rdd.filter(&qry(), STPredicate::Intersects).count();
        assert_eq!(got, expect);
        // pruning active through the index path as well
        let before = ctx.metrics();
        indexed.contained_by(&qry()).count();
        assert!(ctx.metrics().diff(&before).partitions_pruned > 0);
    }

    #[test]
    fn indexed_knn_matches_plain_knn() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        let q = STObject::point(7.3, 4.1);
        let plain = rdd.knn(&q, 7, DistanceFn::Euclidean);
        let indexed = rdd.live_index(4).knn(&q, 7, DistanceFn::Euclidean);
        assert_eq!(plain.len(), indexed.len());
        for (a, b) in plain.iter().zip(indexed.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9);
        }
    }

    #[test]
    fn indexed_within_distance() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        let q = STObject::point(10.0, 5.0);
        let got = rdd.live_index(5).within_distance(&q, 1.5, DistanceFn::Euclidean).count();
        let expect = rdd.within_distance(&q, 1.5, DistanceFn::Euclidean).count();
        assert_eq!(got, expect);
    }

    #[test]
    fn index_count() {
        let ctx = Context::with_parallelism(4);
        let rdd = events(&ctx);
        assert_eq!(rdd.live_index(5).count(), 200);
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let ctx = Context::with_parallelism(4);
        let dir = std::env::temp_dir().join(format!("stark-core-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ObjectStore::open(&dir).unwrap();

        let rdd = events(&ctx);
        let part = Arc::new(GridPartitioner::build(3, &rdd.summarize()));
        let indexed = rdd.live_index_with(5, part);
        indexed.persist(&store, "events-idx").unwrap();

        // the index is usable in the same "program" after persisting
        let here = indexed.contained_by(&qry()).count();

        // ... and in a fresh context, as another program would
        let ctx2 = Context::with_parallelism(2);
        let loaded: IndexedSpatialRdd<u32> =
            IndexedSpatialRdd::load(&ctx2, &store, "events-idx").unwrap();
        assert_eq!(loaded.count(), 200);
        assert_eq!(loaded.order(), 5);
        let there = loaded.contained_by(&qry()).count();
        assert_eq!(here, there);
        // pruning metadata survived persistence
        assert!(loaded.partitioning().is_some());
        let before = ctx2.metrics();
        loaded.contained_by(&qry()).count();
        assert!(ctx2.metrics().diff(&before).partitions_pruned > 0);
    }

    #[test]
    fn load_missing_index_fails() {
        let ctx = Context::new();
        let dir = std::env::temp_dir().join(format!("stark-core-missing-{}", std::process::id()));
        let store = ObjectStore::open(&dir).unwrap();
        let r: Result<IndexedSpatialRdd<u32>, _> =
            IndexedSpatialRdd::load(&ctx, &store, "no-such-index");
        assert!(r.is_err());
    }
}
