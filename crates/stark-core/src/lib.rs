//! # stark — spatio-temporal event processing
//!
//! A faithful Rust reproduction of **STARK** (Hagedorn & Räth, EDBT 2017):
//! spatio-temporal data types and operators layered on a partitioned
//! dataflow engine. The Scala original extends Spark RDDs through an
//! implicit conversion; here the [`SpatialRddExt`] trait plays that role.
//!
//! * [`STObject`] — geometry + optional [`Temporal`] component, with the
//!   paper's combined predicate semantics (eqs. 1–3).
//! * Filters with `intersects` / `contains` / `containedBy` /
//!   `withinDistance` predicates, [`SpatialRdd::knn`], spatio-temporal
//!   [`SpatialRdd::join`] and [`cluster::dbscan`] clustering.
//! * Spatial partitioning ([`GridPartitioner`], [`BspPartitioner`]) with
//!   per-partition bounds *and extents*, driving sound partition pruning.
//! * Index modes: none, live ([`SpatialRdd::live_index`]) and persistent
//!   ([`IndexedSpatialRdd::persist`] / [`IndexedSpatialRdd::load`]).
//!
//! ```
//! use stark::{SpatialRddExt, STObject};
//! use stark_engine::Context;
//!
//! let ctx = Context::with_parallelism(4);
//! // (id, category, time, wkt) records, as in the paper's example
//! let raw = vec![
//!     (0u32, "concert", 100i64, "POINT(10 10)"),
//!     (1, "protest", 200, "POINT(50 50)"),
//!     (2, "concert", 300, "POINT(12 11)"),
//! ];
//! let events = ctx.parallelize(raw, 2).map(|(id, ctgry, time, wkt)| {
//!     (STObject::from_wkt_instant(wkt, time).unwrap(), (id, ctgry))
//! });
//! let qry = STObject::from_wkt_interval("POLYGON((0 0, 20 0, 20 20, 0 20, 0 0))", 0, 250)
//!     .unwrap();
//! let contained = events.contained_by(&qry);
//! assert_eq!(contained.count(), 1); // only event 0 is inside in space AND time
//! ```

pub mod aggregate;
pub mod cluster;
pub mod columnar;
pub mod distributed;
pub mod error;
pub mod incremental;
mod indexed;
pub mod join;
mod knn_join;
pub mod partitioner;
pub mod predicate;
mod spatial_rdd;
pub mod stobject;
pub mod temporal;

pub use aggregate::CellStats;
pub use columnar::ColumnarBatch;
pub use distributed::{event_registry, EventRow, SelfJoinArg, StFilterArg, EVENT_SCHEMA};
pub use error::StarkError;
pub use incremental::{IncrementalIndex, RefreshStats, RemoveOutcome};
pub use indexed::IndexedSpatialRdd;
pub use join::{JoinConfig, JoinIndexMode};
pub use knn_join::KnnJoinRow;
pub use partitioner::{
    balance_stats, BalanceStats, BspPartitioner, DataSummary, GridPartitioner, PartitionCell,
    SpatialPartitioner, TemporalPartitioner,
};
pub use predicate::STPredicate;
pub use spatial_rdd::{PartitioningInfo, SpatialRdd, SpatialRddExt};
pub use stobject::STObject;
pub use temporal::{Temporal, TemporalExtent};
