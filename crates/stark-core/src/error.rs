//! Error type for STARK operations.

use stark_engine::StorageError;
use stark_geo::GeoError;
use std::fmt;

/// Errors produced by STARK operators and persistence.
#[derive(Debug)]
pub enum StarkError {
    /// Geometry construction or WKT parsing failed.
    Geo(GeoError),
    /// Index persistence / loading failed.
    Storage(StorageError),
    /// An operator was invoked with an unusable configuration.
    InvalidConfig(String),
    /// A record's centroid is NaN or infinite and cannot be assigned to
    /// any spatial partition. Silently routing such records (NaN used to
    /// land in partition 0) corrupts extents and pruning, so spatial
    /// partitioning rejects them with this typed error.
    NonFiniteCentroid { x: f64, y: f64 },
}

impl fmt::Display for StarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarkError::Geo(e) => write!(f, "geometry error: {e}"),
            StarkError::Storage(e) => write!(f, "storage error: {e}"),
            StarkError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StarkError::NonFiniteCentroid { x, y } => {
                write!(f, "non-finite centroid ({x}, {y}) cannot be spatially partitioned")
            }
        }
    }
}

impl std::error::Error for StarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StarkError::Geo(e) => Some(e),
            StarkError::Storage(e) => Some(e),
            StarkError::InvalidConfig(_) => None,
            StarkError::NonFiniteCentroid { .. } => None,
        }
    }
}

impl From<GeoError> for StarkError {
    fn from(e: GeoError) -> Self {
        StarkError::Geo(e)
    }
}

impl From<StorageError> for StarkError {
    fn from(e: StorageError) -> Self {
        StarkError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StarkError::from(GeoError::InvalidGeometry("x".into()));
        assert!(e.to_string().contains("geometry error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = StarkError::InvalidConfig("bad".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
