//! k-nearest-neighbour join: for every left record, the `k` nearest
//! right records. Rounds out the paper's kNN operator (§2.3) to the join
//! form shipped by later STARK versions.

use crate::spatial_rdd::SpatialRdd;
use crate::stobject::STObject;
use stark_engine::{Data, Rdd, StoreData};
use stark_geo::DistanceFn;
use stark_index::{Entry, StrTree};

/// One kNN-join result row: the left record plus its nearest right
/// records, ascending by distance.
pub type KnnJoinRow<V, W> = ((STObject, V), Vec<(f64, (STObject, W))>);

impl<V: Data> SpatialRdd<V> {
    /// For each left record, finds its `k` nearest right records under
    /// `dist_fn`, as `(left, Vec<(distance, right)>)` rows with the
    /// neighbour list ascending by distance.
    ///
    /// Execution: every left partition is paired with every right
    /// partition (local top-k against an STR-tree of the right side),
    /// then per-left-record candidate lists are merged with a shuffle on
    /// the left record id. Exact for Euclidean distances; other metrics
    /// fall back to exhaustive local scans.
    pub fn knn_join<W: StoreData>(
        &self,
        other: &SpatialRdd<W>,
        k: usize,
        dist_fn: DistanceFn,
    ) -> Rdd<KnnJoinRow<V, W>>
    where
        V: StoreData,
    {
        let left = self.rdd().zip_with_index().map(|(id, r)| (id, r)).cache();
        let right = other.rdd().cache();
        if k == 0 {
            return left.map(|(_, l)| (l, Vec::new()));
        }

        let ln = left.num_partitions();
        let rn = right.num_partitions();
        let mut pairs = Vec::with_capacity(ln * rn);
        for i in 0..ln {
            for j in 0..rn {
                pairs.push((i, j));
            }
        }

        // Per (left partition, right partition): local k nearest per left
        // record, keyed by the left record id for the merge shuffle.
        type Partial<V, W> = (u64, ((STObject, V), Vec<(f64, (STObject, W))>));
        let partials: Rdd<Partial<V, W>> =
            left.join_partition_pairs(&right, pairs, move |ldata, rdata| {
                let exhaustive = !matches!(dist_fn, DistanceFn::Euclidean);
                let entries: Vec<Entry<usize>> = rdata
                    .iter()
                    .enumerate()
                    .map(|(i, (o, _))| Entry::new(o.envelope(), i))
                    .collect();
                let tree = StrTree::build(8, entries);
                ldata
                    .into_iter()
                    .map(|(id, (lo, lv))| {
                        let mut best: Vec<(f64, (STObject, W))> = if exhaustive {
                            rdata
                                .iter()
                                .map(|(ro, rv)| {
                                    (lo.distance(ro, dist_fn), (ro.clone(), rv.clone()))
                                })
                                .collect()
                        } else {
                            // envelope-distance candidates, enlarged until
                            // the frontier bound passes the provisional kth
                            let target = lo.centroid();
                            let mut fetch = (k * 4).max(16).min(rdata.len());
                            loop {
                                let cands = tree.nearest_k(&target, fetch);
                                let mut exact: Vec<(f64, usize)> = cands
                                    .iter()
                                    .map(|(_, e)| (lo.distance(&rdata[e.item].0, dist_fn), e.item))
                                    .collect();
                                exact.sort_by(|a, b| a.0.total_cmp(&b.0));
                                exact.truncate(k);
                                let kth = exact.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY);
                                let frontier =
                                    cands.last().map(|(lb, _)| *lb).unwrap_or(f64::INFINITY);
                                if fetch >= rdata.len() || (exact.len() == k && frontier >= kth) {
                                    break exact
                                        .into_iter()
                                        .map(|(d, i)| (d, rdata[i].clone()))
                                        .collect();
                                }
                                fetch = (fetch * 2).min(rdata.len());
                            }
                        };
                        best.sort_by(|a, b| a.0.total_cmp(&b.0));
                        best.truncate(k);
                        (id, ((lo, lv), best))
                    })
                    .collect()
            });

        // Merge the per-pair candidate lists by left id.
        partials.group_by_key((ln).max(1)).map(move |(_, groups)| {
            let mut iter = groups.into_iter();
            let (left_rec, mut merged) = iter.next().expect("at least one partial");
            for (_, more) in iter {
                merged.extend(more);
            }
            merged.sort_by(|a, b| a.0.total_cmp(&b.0));
            merged.truncate(k);
            (left_rec, merged)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_rdd::SpatialRddExt;
    use stark_engine::Context;

    fn pts(ctx: &Context, coords: &[(f64, f64)], parts: usize) -> SpatialRdd<u32> {
        let data: Vec<(STObject, u32)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i as u32))
            .collect();
        ctx.parallelize(data, parts).spatial()
    }

    #[test]
    fn knn_join_matches_per_element_knn() {
        let ctx = Context::with_parallelism(4);
        let left_coords: Vec<(f64, f64)> =
            (0..40).map(|i| ((i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0)).collect();
        let right_coords: Vec<(f64, f64)> =
            (0..60).map(|i| ((i % 10) as f64 * 2.5, (i / 10) as f64 * 2.5)).collect();
        let left = pts(&ctx, &left_coords, 5);
        let right = pts(&ctx, &right_coords, 7);

        let joined = left.knn_join(&right, 3, DistanceFn::Euclidean).collect();
        assert_eq!(joined.len(), 40);
        let right_data: Vec<(STObject, u32)> = right.collect();
        for ((lo, _), neighbors) in joined {
            assert_eq!(neighbors.len(), 3);
            assert!(neighbors.windows(2).all(|w| w[0].0 <= w[1].0));
            // compare distances against a scan
            let mut expect: Vec<f64> =
                right_data.iter().map(|(ro, _)| lo.distance(ro, DistanceFn::Euclidean)).collect();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (got, want) in neighbors.iter().zip(expect.iter()) {
                assert!((got.0 - want).abs() < 1e-9, "{} vs {want}", got.0);
            }
        }
    }

    #[test]
    fn knn_join_with_small_right_side() {
        let ctx = Context::with_parallelism(2);
        let left = pts(&ctx, &[(0.0, 0.0), (10.0, 10.0)], 2);
        let right = pts(&ctx, &[(1.0, 0.0)], 1);
        let joined = left.knn_join(&right, 5, DistanceFn::Euclidean).collect();
        assert_eq!(joined.len(), 2);
        for (_, ns) in joined {
            assert_eq!(ns.len(), 1, "only one right record exists");
        }
    }

    #[test]
    fn knn_join_k_zero() {
        let ctx = Context::with_parallelism(2);
        let left = pts(&ctx, &[(0.0, 0.0)], 1);
        let right = pts(&ctx, &[(1.0, 0.0)], 1);
        let joined = left.knn_join(&right, 0, DistanceFn::Euclidean).collect();
        assert_eq!(joined.len(), 1);
        assert!(joined[0].1.is_empty());
    }

    #[test]
    fn knn_join_manhattan_exhaustive_path() {
        let ctx = Context::with_parallelism(2);
        let left = pts(&ctx, &[(0.0, 0.0)], 1);
        let right = pts(&ctx, &[(1.0, 1.0), (3.0, 0.0), (0.0, 2.5)], 2);
        let joined = left.knn_join(&right, 2, DistanceFn::Manhattan).collect();
        let ns = &joined[0].1;
        assert_eq!(ns.len(), 2);
        assert!((ns[0].0 - 2.0).abs() < 1e-9); // (1,1) at L1 distance 2
        assert!((ns[1].0 - 2.5).abs() < 1e-9); // (0,2.5)
    }
}
