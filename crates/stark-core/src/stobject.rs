//! `STObject` — STARK's spatio-temporal value type (paper §2.3).

use crate::temporal::Temporal;
use serde::{Deserialize, Serialize};
use stark_geo::{Coord, Envelope, GeoError, Geometry};
use std::fmt;

/// A spatio-temporal object: a spatial geometry plus an optional temporal
/// component, exactly mirroring the paper's two-field `STObject` class.
///
/// The combined predicates implement the paper's formal definition: for a
/// predicate θ and objects `o`, `p`,
///
/// ```text
/// θ(o, p) ⇔ θs(s(o), s(p)) ∧ (                       (1)
///     (t(o) = ⊥ ∧ t(p) = ⊥) ∨                        (2)
///     (t(o) ≠ ⊥ ∧ t(p) ≠ ⊥ ∧ θt(t(o), t(p))))       (3)
/// ```
///
/// i.e. the spatial predicate must hold, and either both objects carry no
/// time, or both carry time and the temporal predicate holds as well. A
/// timed object never matches an untimed one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct STObject {
    geo: Geometry,
    time: Option<Temporal>,
}

impl STObject {
    /// A purely spatial object (no temporal component).
    pub fn new(geo: Geometry) -> Self {
        STObject { geo, time: None }
    }

    /// A spatio-temporal object.
    pub fn with_time(geo: Geometry, time: Temporal) -> Self {
        STObject { geo, time: Some(time) }
    }

    /// Parses the spatial component from WKT; no temporal component.
    pub fn from_wkt(wkt: &str) -> Result<Self, GeoError> {
        Ok(STObject::new(Geometry::from_wkt(wkt)?))
    }

    /// Parses the spatial component from WKT and attaches an instant,
    /// mirroring the paper's `STObject(wkt, time)` constructor.
    pub fn from_wkt_instant(wkt: &str, time: i64) -> Result<Self, GeoError> {
        Ok(STObject::with_time(Geometry::from_wkt(wkt)?, Temporal::instant(time)))
    }

    /// Parses the spatial component from WKT and attaches the interval
    /// `[begin, end)`, mirroring `STObject(wkt, begin, end)`.
    pub fn from_wkt_interval(wkt: &str, begin: i64, end: i64) -> Result<Self, GeoError> {
        Ok(STObject::with_time(Geometry::from_wkt(wkt)?, Temporal::interval(begin, end)))
    }

    /// A point event at `(x, y)` occurring at instant `t`.
    pub fn point_at(x: f64, y: f64, t: i64) -> Self {
        STObject::with_time(Geometry::point(x, y), Temporal::instant(t))
    }

    /// A timeless point.
    pub fn point(x: f64, y: f64) -> Self {
        STObject::new(Geometry::point(x, y))
    }

    /// The spatial component.
    pub fn geo(&self) -> &Geometry {
        &self.geo
    }

    /// The optional temporal component.
    pub fn time(&self) -> Option<&Temporal> {
        self.time.as_ref()
    }

    /// Spatial minimum bounding rectangle.
    pub fn envelope(&self) -> Envelope {
        self.geo.envelope()
    }

    /// Spatial centroid (the partition-assignment point, paper §2.1).
    pub fn centroid(&self) -> Coord {
        self.geo.centroid()
    }

    /// Applies the papers' temporal combination rule (clauses 2 and 3)
    /// for a given temporal predicate.
    fn temporal_ok(&self, other: &STObject, pred: impl Fn(&Temporal, &Temporal) -> bool) -> bool {
        match (&self.time, &other.time) {
            (None, None) => true,
            (Some(a), Some(b)) => pred(a, b),
            _ => false,
        }
    }

    /// Spatio-temporal intersection (paper: `intersect(o)`).
    pub fn intersects(&self, other: &STObject) -> bool {
        self.geo.intersects(&other.geo) && self.temporal_ok(other, Temporal::intersects)
    }

    /// Spatio-temporal containment (paper: `contains(o)`): this object
    /// completely contains `other` in space and, when both are timed,
    /// in time.
    pub fn contains(&self, other: &STObject) -> bool {
        self.geo.contains(&other.geo) && self.temporal_ok(other, Temporal::contains)
    }

    /// Reverse containment (paper: `containedBy(o)`).
    pub fn contained_by(&self, other: &STObject) -> bool {
        other.contains(self)
    }

    /// Spatial distance under the given distance function. The temporal
    /// component does not participate (STARK's `withinDistance` is a
    /// spatial operator with a pluggable distance function).
    pub fn distance(&self, other: &STObject, dist_fn: stark_geo::DistanceFn) -> f64 {
        dist_fn.distance(&self.geo, &other.geo)
    }
}

impl From<Geometry> for STObject {
    fn from(geo: Geometry) -> Self {
        STObject::new(geo)
    }
}

impl fmt::Display for STObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.time {
            Some(t) => write!(f, "{} {}", self.geo, t),
            None => write!(f, "{}", self.geo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_only_objects_use_spatial_predicate() {
        let region = STObject::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap();
        let ev = STObject::point(5.0, 5.0);
        assert!(region.intersects(&ev));
        assert!(region.contains(&ev));
        assert!(ev.contained_by(&region));
        assert!(!ev.contains(&region));
    }

    #[test]
    fn timed_vs_untimed_never_match() {
        // clause (2)/(3): one ⊥ and one defined → predicate is false
        let timed = STObject::point_at(5.0, 5.0, 100);
        let untimed = STObject::point(5.0, 5.0);
        assert!(!timed.intersects(&untimed));
        assert!(!untimed.intersects(&timed));
        assert!(!untimed.contains(&timed));
    }

    #[test]
    fn both_timed_require_both_predicates() {
        let region =
            STObject::from_wkt_interval("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))", 0, 1000).unwrap();
        let hit = STObject::point_at(5.0, 5.0, 500);
        let wrong_time = STObject::point_at(5.0, 5.0, 2000);
        let wrong_place = STObject::point_at(50.0, 50.0, 500);
        assert!(region.intersects(&hit));
        assert!(region.contains(&hit));
        assert!(!region.intersects(&wrong_time));
        assert!(!region.contains(&wrong_time));
        assert!(!region.intersects(&wrong_place));
    }

    #[test]
    fn contained_by_matches_paper_example() {
        // paper: qry = polygon + [begin, end); events.containedBy(qry)
        let qry = STObject::from_wkt_interval("POLYGON((0 0, 100 0, 100 100, 0 100, 0 0))", 10, 20)
            .unwrap();
        let inside = STObject::point_at(50.0, 50.0, 15);
        let outside_time = STObject::point_at(50.0, 50.0, 25);
        assert!(inside.contained_by(&qry));
        assert!(!outside_time.contained_by(&qry));
    }

    #[test]
    fn distance_uses_distance_function() {
        let a = STObject::point(0.0, 0.0);
        let b = STObject::point(3.0, 4.0);
        assert_eq!(a.distance(&b, stark_geo::DistanceFn::Euclidean), 5.0);
        assert_eq!(a.distance(&b, stark_geo::DistanceFn::Manhattan), 7.0);
    }

    #[test]
    fn accessors_and_display() {
        let o = STObject::from_wkt_instant("POINT(1 2)", 42).unwrap();
        assert_eq!(o.time(), Some(&Temporal::instant(42)));
        assert_eq!(o.centroid(), Coord::new(1.0, 2.0));
        assert_eq!(o.to_string(), "POINT (1 2) @42");
        assert_eq!(STObject::point(1.0, 2.0).to_string(), "POINT (1 2)");
    }

    #[test]
    fn serde_roundtrip() {
        let o = STObject::from_wkt_interval("POINT(1 2)", 5, 10).unwrap();
        let json = serde_json::to_string(&o).unwrap();
        let back: STObject = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }
}
