//! First-class spatio-temporal predicates.
//!
//! The filter and join operators are parameterised by a predicate value so
//! that partition pruning, index lookup and final refinement can all
//! dispatch on the same description of the query.

use crate::stobject::STObject;
use serde::{Deserialize, Serialize};
use stark_geo::{DistanceFn, Envelope};
use std::fmt;

/// The spatio-temporal predicates supported by STARK's filter and join
/// operators (paper §2.3): `intersects`, `contains`, `containedBy`, and
/// `withinDistance` with a pluggable distance function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum STPredicate {
    /// Spatial and (when both defined) temporal intersection.
    Intersects,
    /// The left object completely contains the right one.
    Contains,
    /// The left object is completely contained by the right one.
    ContainedBy,
    /// The spatial distance between the objects is at most `max_dist`.
    WithinDistance { max_dist: f64, dist_fn: DistanceFn },
}

impl STPredicate {
    /// Shorthand for `WithinDistance` with the Euclidean metric.
    pub fn within_distance(max_dist: f64) -> Self {
        STPredicate::WithinDistance { max_dist, dist_fn: DistanceFn::Euclidean }
    }

    /// Evaluates the predicate on `(left, right)`.
    pub fn eval(&self, left: &STObject, right: &STObject) -> bool {
        match self {
            STPredicate::Intersects => left.intersects(right),
            STPredicate::Contains => left.contains(right),
            STPredicate::ContainedBy => left.contained_by(right),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                left.distance(right, *dist_fn) <= *max_dist
            }
        }
    }

    /// Whether a data partition whose member envelopes are all inside
    /// `extent` could possibly contain an element `e` with
    /// `pred(e, query) == true`. Sound (never prunes a match), not
    /// necessarily tight. This is the partition-pruning test of §2.1.
    pub fn partition_may_match(&self, extent: &Envelope, query: &STObject) -> bool {
        if extent.is_empty() {
            return false;
        }
        let q = query.envelope();
        match self {
            // any match must spatially intersect the query MBR
            STPredicate::Intersects | STPredicate::ContainedBy => extent.intersects(&q),
            // an element containing the query has an MBR covering the
            // query MBR; the partition extent then also covers it
            STPredicate::Contains => extent.contains_envelope(&q),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                // per-axis envelope gaps lower-bound the per-axis
                // coordinate deltas; convert into a bound under dist_fn
                let (dx, dy) = extent.axis_distances(&q);
                dist_fn.lower_bound_from_axis_gaps(dx, dy) <= *max_dist
            }
        }
    }

    /// Temporal analogue of [`STPredicate::partition_may_match`]: whether
    /// a partition with the given temporal extent could hold an element
    /// matching this predicate against `query`. Sound, not tight.
    ///
    /// `withinDistance` is a purely spatial operator, so it never prunes
    /// on time. For the combined predicates, eq. (2)/(3) make a timed
    /// query matchable only by timed elements with a satisfiable temporal
    /// relation, and an untimed query only by untimed elements.
    pub fn partition_may_match_temporal(
        &self,
        extent: &crate::temporal::TemporalExtent,
        query: &STObject,
    ) -> bool {
        let temporal_kind = match self {
            STPredicate::WithinDistance { .. } => return true,
            STPredicate::Intersects | STPredicate::ContainedBy => TemporalKind::Intersect,
            STPredicate::Contains => TemporalKind::Contain,
        };
        match query.time() {
            // untimed query: only untimed elements can match (eq. 2)
            None => extent.has_untimed(),
            Some(qt) => match temporal_kind {
                TemporalKind::Intersect => extent.may_intersect(qt),
                TemporalKind::Contain => extent.may_contain(qt),
            },
        }
    }

    /// The envelope an index must be probed with to obtain a candidate
    /// superset for this predicate against `query`.
    pub fn index_probe(&self, query: &STObject) -> Envelope {
        let q = query.envelope();
        match self {
            STPredicate::Intersects | STPredicate::Contains | STPredicate::ContainedBy => q,
            STPredicate::WithinDistance { max_dist, dist_fn } => match dist_fn {
                // planar metrics: buffering the MBR by max_dist is sound
                DistanceFn::Euclidean | DistanceFn::Manhattan => q.buffered(*max_dist),
                // Haversine: the spherical cap of angular radius
                // σ = d/R around the query. Latitude pads exactly by σ
                // (central angle ≥ |Δφ|). Longitude pads by the cap's
                // widest meridian crossing, asin(sin σ / cos φ) at the
                // query's most poleward latitude — and by the whole
                // longitude range once the cap reaches a pole, where a
                // nearby point may sit at any longitude.
                DistanceFn::Haversine => {
                    use stark_geo::EARTH_RADIUS_M;
                    let sigma = max_dist / EARTH_RADIUS_M; // radians
                    let lat_pad = sigma.to_degrees();
                    let lat_hi = q.min_y().abs().max(q.max_y().abs()).to_radians();
                    let mut lon_pad = if lat_hi + sigma >= std::f64::consts::FRAC_PI_2 {
                        360.0 // cap touches a pole: every longitude qualifies
                    } else {
                        let s = sigma.sin() / lat_hi.cos();
                        if s >= 1.0 {
                            360.0
                        } else {
                            s.asin().to_degrees()
                        }
                    };
                    // An envelope cannot represent an interval that wraps
                    // the antimeridian: a match just across ±180° sits at
                    // the far end of the planar axis. Cover all
                    // longitudes whenever the padded range would cross.
                    if q.min_x() - lon_pad < -180.0 || q.max_x() + lon_pad > 180.0 {
                        lon_pad = 360.0;
                    }
                    Envelope::from_bounds(
                        q.min_x() - lon_pad,
                        q.min_y() - lat_pad,
                        q.max_x() + lon_pad,
                        q.max_y() + lat_pad,
                    )
                }
            },
        }
    }
}

/// Which temporal relation the pruning test must preserve.
enum TemporalKind {
    Intersect,
    Contain,
}

impl fmt::Display for STPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STPredicate::Intersects => write!(f, "intersects"),
            STPredicate::Contains => write!(f, "contains"),
            STPredicate::ContainedBy => write!(f, "containedBy"),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                write!(f, "withinDistance({max_dist}, {dist_fn:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use stark_geo::Geometry;

    fn region() -> STObject {
        STObject::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap()
    }

    #[test]
    fn eval_dispatch() {
        let r = region();
        let p = STObject::point(5.0, 5.0);
        assert!(STPredicate::Intersects.eval(&r, &p));
        assert!(STPredicate::Contains.eval(&r, &p));
        assert!(!STPredicate::Contains.eval(&p, &r));
        assert!(STPredicate::ContainedBy.eval(&p, &r));
        assert!(STPredicate::within_distance(1.0).eval(&STObject::point(11.0, 5.0), &r));
        assert!(!STPredicate::within_distance(0.5).eval(&STObject::point(11.0, 5.0), &r));
    }

    #[test]
    fn pruning_is_sound_for_intersects() {
        let q = region();
        let near = Envelope::from_bounds(5.0, 5.0, 20.0, 20.0);
        let far = Envelope::from_bounds(100.0, 100.0, 110.0, 110.0);
        assert!(STPredicate::Intersects.partition_may_match(&near, &q));
        assert!(!STPredicate::Intersects.partition_may_match(&far, &q));
        assert!(!STPredicate::Intersects.partition_may_match(&Envelope::empty(), &q));
    }

    #[test]
    fn pruning_for_contains_needs_covering_extent() {
        let q = STObject::new(Geometry::rect(4.0, 4.0, 6.0, 6.0));
        let covering = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let partial = Envelope::from_bounds(5.0, 5.0, 10.0, 10.0);
        assert!(STPredicate::Contains.partition_may_match(&covering, &q));
        assert!(!STPredicate::Contains.partition_may_match(&partial, &q));
    }

    #[test]
    fn pruning_for_within_distance() {
        let q = STObject::point(0.0, 0.0);
        let pred = STPredicate::within_distance(5.0);
        let close = Envelope::from_bounds(3.0, 0.0, 10.0, 1.0);
        let far = Envelope::from_bounds(10.0, 0.0, 20.0, 1.0);
        assert!(pred.partition_may_match(&close, &q));
        assert!(!pred.partition_may_match(&far, &q));
    }

    #[test]
    fn index_probe_buffers_for_distance() {
        let q = STObject::point(0.0, 0.0);
        let probe = STPredicate::within_distance(3.0).index_probe(&q);
        assert_eq!(probe.min_x(), -3.0);
        assert_eq!(probe.max_y(), 3.0);
        let plain = STPredicate::Intersects.index_probe(&q);
        assert_eq!(plain.area(), 0.0);
    }

    #[test]
    fn haversine_probe_covers_spherical_cap() {
        use stark_geo::{haversine, Coord};
        let pred =
            STPredicate::WithinDistance { max_dist: 400_000.0, dist_fn: DistanceFn::Haversine };
        // mid-latitude: the probe must contain every point within range
        let q = STObject::point(10.0, 50.0);
        let probe = pred.index_probe(&q);
        for dlon in [-5.0, 0.0, 5.0] {
            for dlat in [-3.0, 0.0, 3.0] {
                let p = Coord::new(10.0 + dlon, 50.0 + dlat);
                if haversine(&Coord::new(10.0, 50.0), &p) <= 400_000.0 {
                    assert!(probe.contains_coord(&p), "probe missed in-range point {p:?}");
                }
            }
        }
        // near a pole the cap spans all longitudes
        let poleward = pred.index_probe(&STObject::point(0.0, 88.0));
        assert!(poleward.contains_coord(&Coord::new(179.0, 89.0)));
        // near the antimeridian the probe must cover the wrapped side
        let wrapped = pred.index_probe(&STObject::point(-178.0, 85.0));
        assert!(wrapped.contains_coord(&Coord::new(179.0, 85.0)), "{wrapped:?}");
    }

    #[test]
    fn eval_respects_temporal_rule() {
        let qry =
            STObject::with_time(Geometry::rect(0.0, 0.0, 10.0, 10.0), Temporal::interval(0, 100));
        let in_time = STObject::point_at(5.0, 5.0, 50);
        let out_of_time = STObject::point_at(5.0, 5.0, 200);
        assert!(STPredicate::ContainedBy.eval(&in_time, &qry));
        assert!(!STPredicate::ContainedBy.eval(&out_of_time, &qry));
    }

    #[test]
    fn display_names() {
        assert_eq!(STPredicate::Intersects.to_string(), "intersects");
        assert_eq!(STPredicate::ContainedBy.to_string(), "containedBy");
    }
}
