//! First-class spatio-temporal predicates.
//!
//! The filter and join operators are parameterised by a predicate value so
//! that partition pruning, index lookup and final refinement can all
//! dispatch on the same description of the query.

use crate::stobject::STObject;
use serde::{Deserialize, Serialize};
use stark_geo::{DistanceFn, Envelope};
use std::fmt;

/// The spatio-temporal predicates supported by STARK's filter and join
/// operators (paper §2.3): `intersects`, `contains`, `containedBy`, and
/// `withinDistance` with a pluggable distance function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum STPredicate {
    /// Spatial and (when both defined) temporal intersection.
    Intersects,
    /// The left object completely contains the right one.
    Contains,
    /// The left object is completely contained by the right one.
    ContainedBy,
    /// The spatial distance between the objects is at most `max_dist`.
    WithinDistance { max_dist: f64, dist_fn: DistanceFn },
}

impl STPredicate {
    /// Shorthand for `WithinDistance` with the Euclidean metric.
    pub fn within_distance(max_dist: f64) -> Self {
        STPredicate::WithinDistance { max_dist, dist_fn: DistanceFn::Euclidean }
    }

    /// Evaluates the predicate on `(left, right)`.
    pub fn eval(&self, left: &STObject, right: &STObject) -> bool {
        match self {
            STPredicate::Intersects => left.intersects(right),
            STPredicate::Contains => left.contains(right),
            STPredicate::ContainedBy => left.contained_by(right),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                left.distance(right, *dist_fn) <= *max_dist
            }
        }
    }

    /// Whether a data partition whose member envelopes are all inside
    /// `extent` could possibly contain an element `e` with
    /// `pred(e, query) == true`. Sound (never prunes a match), not
    /// necessarily tight. This is the partition-pruning test of §2.1.
    pub fn partition_may_match(&self, extent: &Envelope, query: &STObject) -> bool {
        if extent.is_empty() {
            return false;
        }
        let q = query.envelope();
        match self {
            // any match must spatially intersect the query MBR
            STPredicate::Intersects | STPredicate::ContainedBy => extent.intersects(&q),
            // an element containing the query has an MBR covering the
            // query MBR; the partition extent then also covers it
            STPredicate::Contains => extent.contains_envelope(&q),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                // envelope separation lower-bounds the planar distance;
                // convert it into a lower bound under dist_fn
                let sep = extent.distance(&q);
                dist_fn.lower_bound_from_planar(sep) <= *max_dist
            }
        }
    }

    /// Temporal analogue of [`STPredicate::partition_may_match`]: whether
    /// a partition with the given temporal extent could hold an element
    /// matching this predicate against `query`. Sound, not tight.
    ///
    /// `withinDistance` is a purely spatial operator, so it never prunes
    /// on time. For the combined predicates, eq. (2)/(3) make a timed
    /// query matchable only by timed elements with a satisfiable temporal
    /// relation, and an untimed query only by untimed elements.
    pub fn partition_may_match_temporal(
        &self,
        extent: &crate::temporal::TemporalExtent,
        query: &STObject,
    ) -> bool {
        let temporal_kind = match self {
            STPredicate::WithinDistance { .. } => return true,
            STPredicate::Intersects | STPredicate::ContainedBy => TemporalKind::Intersect,
            STPredicate::Contains => TemporalKind::Contain,
        };
        match query.time() {
            // untimed query: only untimed elements can match (eq. 2)
            None => extent.has_untimed(),
            Some(qt) => match temporal_kind {
                TemporalKind::Intersect => extent.may_intersect(qt),
                TemporalKind::Contain => extent.may_contain(qt),
            },
        }
    }

    /// The envelope an index must be probed with to obtain a candidate
    /// superset for this predicate against `query`.
    pub fn index_probe(&self, query: &STObject) -> Envelope {
        let q = query.envelope();
        match self {
            STPredicate::Intersects | STPredicate::Contains | STPredicate::ContainedBy => q,
            STPredicate::WithinDistance { max_dist, dist_fn } => match dist_fn {
                // planar metrics: buffering the MBR by max_dist is sound
                DistanceFn::Euclidean | DistanceFn::Manhattan => q.buffered(*max_dist),
                // Haversine: metres → degrees, using the smallest
                // metres-per-degree (longitude at high latitude is
                // smaller, so be generous: 1 degree >= 111 km only for
                // latitude; buffer by max_dist / (111km * cos(lat_max)),
                // conservatively capped to the whole space for high
                // latitudes)
                DistanceFn::Haversine => {
                    let lat = q.min_y().abs().max(q.max_y().abs()).min(89.0);
                    let metres_per_deg = 111_320.0 * lat.to_radians().cos().max(0.02);
                    q.buffered(max_dist / metres_per_deg)
                }
            },
        }
    }
}

/// Which temporal relation the pruning test must preserve.
enum TemporalKind {
    Intersect,
    Contain,
}

impl fmt::Display for STPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            STPredicate::Intersects => write!(f, "intersects"),
            STPredicate::Contains => write!(f, "contains"),
            STPredicate::ContainedBy => write!(f, "containedBy"),
            STPredicate::WithinDistance { max_dist, dist_fn } => {
                write!(f, "withinDistance({max_dist}, {dist_fn:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Temporal;
    use stark_geo::Geometry;

    fn region() -> STObject {
        STObject::from_wkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap()
    }

    #[test]
    fn eval_dispatch() {
        let r = region();
        let p = STObject::point(5.0, 5.0);
        assert!(STPredicate::Intersects.eval(&r, &p));
        assert!(STPredicate::Contains.eval(&r, &p));
        assert!(!STPredicate::Contains.eval(&p, &r));
        assert!(STPredicate::ContainedBy.eval(&p, &r));
        assert!(STPredicate::within_distance(1.0).eval(&STObject::point(11.0, 5.0), &r));
        assert!(!STPredicate::within_distance(0.5).eval(&STObject::point(11.0, 5.0), &r));
    }

    #[test]
    fn pruning_is_sound_for_intersects() {
        let q = region();
        let near = Envelope::from_bounds(5.0, 5.0, 20.0, 20.0);
        let far = Envelope::from_bounds(100.0, 100.0, 110.0, 110.0);
        assert!(STPredicate::Intersects.partition_may_match(&near, &q));
        assert!(!STPredicate::Intersects.partition_may_match(&far, &q));
        assert!(!STPredicate::Intersects.partition_may_match(&Envelope::empty(), &q));
    }

    #[test]
    fn pruning_for_contains_needs_covering_extent() {
        let q = STObject::new(Geometry::rect(4.0, 4.0, 6.0, 6.0));
        let covering = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let partial = Envelope::from_bounds(5.0, 5.0, 10.0, 10.0);
        assert!(STPredicate::Contains.partition_may_match(&covering, &q));
        assert!(!STPredicate::Contains.partition_may_match(&partial, &q));
    }

    #[test]
    fn pruning_for_within_distance() {
        let q = STObject::point(0.0, 0.0);
        let pred = STPredicate::within_distance(5.0);
        let close = Envelope::from_bounds(3.0, 0.0, 10.0, 1.0);
        let far = Envelope::from_bounds(10.0, 0.0, 20.0, 1.0);
        assert!(pred.partition_may_match(&close, &q));
        assert!(!pred.partition_may_match(&far, &q));
    }

    #[test]
    fn index_probe_buffers_for_distance() {
        let q = STObject::point(0.0, 0.0);
        let probe = STPredicate::within_distance(3.0).index_probe(&q);
        assert_eq!(probe.min_x(), -3.0);
        assert_eq!(probe.max_y(), 3.0);
        let plain = STPredicate::Intersects.index_probe(&q);
        assert_eq!(plain.area(), 0.0);
    }

    #[test]
    fn eval_respects_temporal_rule() {
        let qry =
            STObject::with_time(Geometry::rect(0.0, 0.0, 10.0, 10.0), Temporal::interval(0, 100));
        let in_time = STObject::point_at(5.0, 5.0, 50);
        let out_of_time = STObject::point_at(5.0, 5.0, 200);
        assert!(STPredicate::ContainedBy.eval(&in_time, &qry));
        assert!(!STPredicate::ContainedBy.eval(&out_of_time, &qry));
    }

    #[test]
    fn display_names() {
        assert_eq!(STPredicate::Intersects.to_string(), "intersects");
        assert_eq!(STPredicate::ContainedBy.to_string(), "containedBy");
    }
}
