//! Incrementally maintained per-partition STR-tree index.
//!
//! The batch-oriented [`crate::indexed::IndexedSpatialRdd`] rebuilds every
//! partition tree when the data changes. A micro-batch stream cannot
//! afford that: each batch touches only the partitions its events fall
//! into, so only those trees need rebuilding. [`IncrementalIndex`] keeps
//! one record buffer + STR-tree per partitioner cell, tracks which
//! partitions a batch dirtied, and rebuilds trees lazily on
//! [`IncrementalIndex::refresh`] — the streaming layer calls it once per
//! micro-batch.
//!
//! Queries are always exact regardless of refresh schedule: a clean
//! partition is probed through its tree, a dirty one falls back to a
//! linear scan of its buffer. Partition pruning reuses the same
//! bounds/extent machinery as the batch path ([`STPredicate`'s
//! `partition_may_match` tests), with extents fitted to the records
//! actually inserted — sound even for records outside the partitioner's
//! build sample.
//!
//! The index also supports **removal** ([`IncrementalIndex::remove_batch`])
//! so the streaming IVM layer can retract records when a window expires
//! or an upstream correction arrives: a remove takes out one record
//! equal to the requested `(object, value)` pair, re-fits the touched
//! partition's extents, and marks it dirty like an insert. Removing a
//! record that was never inserted (or was already removed) is a counted
//! no-op, so retractions of shed or quarantined records are safe.

use crate::partitioner::SpatialPartitioner;
use crate::predicate::STPredicate;
use crate::stobject::STObject;
use crate::temporal::TemporalExtent;
use stark_engine::Data;
use stark_geo::{DistanceFn, Envelope};
use stark_index::{Entry, StrTree};
use std::sync::Arc;

/// Counters describing the work an [`IncrementalIndex`] has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// Tree rebuilds performed over the index lifetime.
    pub rebuilds: u64,
    /// Tree rebuilds skipped because the partition was untouched.
    pub rebuilds_skipped: u64,
    /// Records currently indexed.
    pub records: usize,
}

/// Outcome of an [`IncrementalIndex::remove_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoveOutcome {
    /// Records actually taken out of the index.
    pub removed: usize,
    /// Requested removals with no matching record (already removed,
    /// never inserted, or shed upstream) — no-ops.
    pub missing: usize,
    /// Distinct partitions whose buffer changed.
    pub partitions_touched: usize,
}

/// Cached tree for one partition; `None` until first refresh.
type PartitionTree<V> = Option<Arc<StrTree<(STObject, V)>>>;

/// Per-partition STR-trees with dirty tracking, for streaming updates.
pub struct IncrementalIndex<V: Data> {
    partitioner: Arc<dyn SpatialPartitioner>,
    order: usize,
    /// Record buffers, one per partitioner cell.
    records: Vec<Vec<(STObject, V)>>,
    /// Cached tree per partition; `None` until first refresh.
    trees: Vec<PartitionTree<V>>,
    /// Partitions whose buffer changed since their tree was built.
    dirty: Vec<bool>,
    /// Spatial extent fitted to the records actually inserted.
    extents: Vec<Envelope>,
    /// Temporal extent fitted to the records actually inserted.
    time_extents: Vec<TemporalExtent>,
    stats: RefreshStats,
}

impl<V: Data> IncrementalIndex<V> {
    /// Creates an empty index over the partitioner's cells.
    pub fn new(partitioner: Arc<dyn SpatialPartitioner>, order: usize) -> Self {
        let n = partitioner.num_partitions().max(1);
        IncrementalIndex {
            partitioner,
            order,
            records: vec![Vec::new(); n],
            trees: vec![None; n],
            dirty: vec![false; n],
            extents: vec![Envelope::empty(); n],
            time_extents: vec![TemporalExtent::empty(); n],
            stats: RefreshStats::default(),
        }
    }

    /// Number of partitions (= partitioner cells).
    pub fn num_partitions(&self) -> usize {
        self.records.len()
    }

    /// Total records indexed.
    pub fn len(&self) -> usize {
        self.stats.records
    }

    /// Whether the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.stats.records == 0
    }

    /// The STR-tree order used for rebuilt partitions.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Lifetime work counters.
    pub fn stats(&self) -> RefreshStats {
        self.stats
    }

    /// Indices of partitions currently awaiting a rebuild.
    pub fn dirty_partitions(&self) -> Vec<usize> {
        (0..self.dirty.len()).filter(|&i| self.dirty[i]).collect()
    }

    /// Routes each record to its partition, marking touched partitions
    /// dirty. Returns the number of distinct partitions touched.
    pub fn insert_batch(&mut self, batch: impl IntoIterator<Item = (STObject, V)>) -> usize {
        let mut touched = 0usize;
        for (obj, value) in batch {
            let p = self
                .partitioner
                .partition_for_centroid(&obj.centroid())
                .min(self.records.len() - 1);
            if !self.dirty[p] {
                self.dirty[p] = true;
                touched += 1;
            }
            self.extents[p].expand_to_include_envelope(&obj.envelope());
            self.time_extents[p].expand(obj.time());
            self.records[p].push((obj, value));
            self.stats.records += 1;
        }
        touched
    }

    /// Removes one record equal to each requested `(object, value)` pair,
    /// routing by centroid exactly like [`Self::insert_batch`] so a
    /// record is always removed from the partition it was inserted into.
    /// Touched partitions are marked dirty (their tree rebuilds on the
    /// next [`Self::refresh`]) and their extents are re-fitted to the
    /// surviving records, so pruning stays tight after retraction. A
    /// request with no matching record — a duplicate remove, or a
    /// retraction of a record that was shed before insertion — is a
    /// counted no-op.
    pub fn remove_batch(&mut self, batch: impl IntoIterator<Item = (STObject, V)>) -> RemoveOutcome
    where
        V: PartialEq,
    {
        let mut outcome = RemoveOutcome::default();
        let mut touched = vec![false; self.records.len()];
        for (obj, value) in batch {
            let p = self
                .partitioner
                .partition_for_centroid(&obj.centroid())
                .min(self.records.len() - 1);
            match self.records[p].iter().position(|(o, v)| *o == obj && *v == value) {
                Some(i) => {
                    self.records[p].remove(i);
                    self.stats.records -= 1;
                    outcome.removed += 1;
                    if !touched[p] {
                        touched[p] = true;
                        outcome.partitions_touched += 1;
                    }
                    self.dirty[p] = true;
                }
                None => outcome.missing += 1,
            }
        }
        for (p, t) in touched.into_iter().enumerate() {
            if t {
                self.refit_extents(p);
            }
        }
        outcome
    }

    /// Re-fits partition `p`'s spatial and temporal extents to the
    /// records it still holds (removal can only shrink them).
    fn refit_extents(&mut self, p: usize) {
        let mut extent = Envelope::empty();
        let mut time_extent = TemporalExtent::empty();
        for (o, _) in &self.records[p] {
            extent.expand_to_include_envelope(&o.envelope());
            time_extent.expand(o.time());
        }
        self.extents[p] = extent;
        self.time_extents[p] = time_extent;
    }

    /// Rebuilds the STR-tree of every dirty partition (and only those).
    /// Returns the number of trees rebuilt.
    pub fn refresh(&mut self) -> usize {
        let mut rebuilt = 0usize;
        for p in 0..self.records.len() {
            if !self.dirty[p] {
                if self.trees[p].is_some() {
                    self.stats.rebuilds_skipped += 1;
                }
                continue;
            }
            let entries: Vec<Entry<(STObject, V)>> = self.records[p]
                .iter()
                .map(|(o, v)| Entry::new(o.envelope(), (o.clone(), v.clone())))
                .collect();
            self.trees[p] = Some(Arc::new(StrTree::build(self.order, entries)));
            self.dirty[p] = false;
            rebuilt += 1;
        }
        self.stats.rebuilds += rebuilt as u64;
        rebuilt
    }

    /// Partition mask for `pred(e, query)`: `true` = must be scanned.
    fn mask_for(&self, pred: &STPredicate, query: &STObject) -> Vec<bool> {
        (0..self.records.len())
            .map(|p| {
                pred.partition_may_match(&self.extents[p], query)
                    && pred.partition_may_match_temporal(&self.time_extents[p], query)
            })
            .collect()
    }

    /// Exact filter: extent-pruned, tree-probed where clean, linear where
    /// dirty. Returns matching records in partition order.
    pub fn filter(&self, query: &STObject, pred: STPredicate) -> Vec<(STObject, V)> {
        let mask = self.mask_for(&pred, query);
        let probe = pred.index_probe(query);
        let mut out = Vec::new();
        for (p, keep) in mask.iter().enumerate() {
            if !keep {
                continue;
            }
            match (&self.trees[p], self.dirty[p]) {
                (Some(tree), false) => {
                    tree.for_each_candidate(&probe, &mut |entry| {
                        let (o, v) = &entry.item;
                        if pred.eval(o, query) {
                            out.push((o.clone(), v.clone()));
                        }
                    });
                }
                // dirty (or never refreshed): exact linear scan
                _ => {
                    for (o, v) in &self.records[p] {
                        if pred.eval(o, query) {
                            out.push((o.clone(), v.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of partitions the filter for `query` would scan.
    pub fn partitions_scanned(&self, query: &STObject, pred: &STPredicate) -> usize {
        self.mask_for(pred, query).into_iter().filter(|m| *m).count()
    }

    /// Exact k-nearest-neighbour search. Clean partitions are probed
    /// through the tree with an enlarging fetch (envelope distance lower
    /// bounds Euclidean distance); dirty ones are scanned linearly.
    pub fn knn(
        &self,
        query: &STObject,
        k: usize,
        dist_fn: DistanceFn,
    ) -> Vec<(f64, (STObject, V))> {
        if k == 0 {
            return Vec::new();
        }
        let target = query.centroid();
        let sound_bound = matches!(dist_fn, DistanceFn::Euclidean);
        let mut merged: Vec<(f64, (STObject, V))> = Vec::new();
        for p in 0..self.records.len() {
            match (&self.trees[p], self.dirty[p]) {
                (Some(tree), false) if sound_bound => {
                    let mut fetch = (k * 4).max(32).min(tree.len());
                    loop {
                        let candidates = tree.nearest_k(&target, fetch);
                        let mut exact: Vec<(f64, &Entry<(STObject, V)>)> = candidates
                            .iter()
                            .map(|(_, e)| (e.item.0.distance(query, dist_fn), *e))
                            .collect();
                        exact.sort_by(|a, b| a.0.total_cmp(&b.0));
                        exact.truncate(k);
                        let kth = exact.last().map(|(d, _)| *d).unwrap_or(f64::INFINITY);
                        let frontier =
                            candidates.last().map(|(lb, _)| *lb).unwrap_or(f64::INFINITY);
                        if fetch >= tree.len() || (exact.len() == k && frontier >= kth) {
                            merged.extend(exact.into_iter().map(|(d, e)| (d, e.item.clone())));
                            break;
                        }
                        fetch = (fetch * 2).min(tree.len().max(1));
                    }
                }
                _ => {
                    for (o, v) in &self.records[p] {
                        merged.push((o.distance(query, dist_fn), (o.clone(), v.clone())));
                    }
                }
            }
        }
        merged.sort_by(|a, b| a.0.total_cmp(&b.0));
        merged.truncate(k);
        merged
    }

    /// Convenience: filter with a `WithinDistance` predicate.
    pub fn within_distance(
        &self,
        query: &STObject,
        max_dist: f64,
        dist_fn: DistanceFn,
    ) -> Vec<(STObject, V)> {
        self.filter(query, STPredicate::WithinDistance { max_dist, dist_fn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::GridPartitioner;
    use stark_geo::Coord;

    fn grid_over_unit_square(dims: usize) -> Arc<dyn SpatialPartitioner> {
        let corners = [(0.0, 0.0), (100.0, 100.0)];
        let summary: Vec<(Envelope, Coord)> = corners
            .iter()
            .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
            .collect();
        Arc::new(GridPartitioner::build(dims, &summary))
    }

    fn points(n: usize) -> Vec<(STObject, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 10.0 + 1.0;
                let y = (i / 10) as f64 + 1.0;
                (STObject::point_at(x, y, i as i64), i)
            })
            .collect()
    }

    fn naive_filter(data: &[(STObject, usize)], query: &STObject, pred: STPredicate) -> Vec<usize> {
        let mut ids: Vec<usize> =
            data.iter().filter(|(o, _)| pred.eval(o, query)).map(|(_, i)| *i).collect();
        ids.sort_unstable();
        ids
    }

    fn query() -> STObject {
        STObject::from_wkt_interval("POLYGON((5 0, 35 0, 35 8, 5 8, 5 0))", 0, 10_000).unwrap()
    }

    #[test]
    fn filter_matches_naive_before_and_after_refresh() {
        let data = points(100);
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(data.clone());

        let expect = naive_filter(&data, &query(), STPredicate::Intersects);
        // dirty path (no refresh yet)
        let mut got: Vec<usize> =
            idx.filter(&query(), STPredicate::Intersects).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        assert_eq!(got, expect);

        // clean path
        idx.refresh();
        let mut got: Vec<usize> =
            idx.filter(&query(), STPredicate::Intersects).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(!expect.is_empty());
    }

    #[test]
    fn refresh_rebuilds_only_touched_partitions() {
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(points(100));
        let first = idx.refresh();
        assert!(first > 0);

        // a batch confined to one corner touches few partitions
        let corner: Vec<(STObject, usize)> =
            (0..20).map(|i| (STObject::point_at(2.0, 2.0, i as i64), 1000 + i as usize)).collect();
        let touched = idx.insert_batch(corner);
        assert_eq!(touched, 1);
        assert_eq!(idx.dirty_partitions().len(), 1);
        let rebuilt = idx.refresh();
        assert_eq!(rebuilt, 1);
        assert!(idx.stats().rebuilds_skipped > 0);
        assert_eq!(idx.len(), 120);
    }

    #[test]
    fn extent_pruning_scans_few_partitions() {
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(points(100));
        idx.refresh();
        let tiny = STObject::point(1.0, 1.0);
        let scanned = idx.partitions_scanned(&tiny, &STPredicate::Intersects);
        assert!(scanned < idx.num_partitions(), "{scanned} of {}", idx.num_partitions());
    }

    #[test]
    fn records_outside_build_sample_are_still_found() {
        // partitioner fitted to [0,100]^2 but records land outside it
        let mut idx = IncrementalIndex::new(grid_over_unit_square(3), 4);
        let stray = STObject::point(250.0, -40.0);
        idx.insert_batch(vec![(stray.clone(), 7usize)]);
        idx.refresh();
        let got = idx.filter(&stray, STPredicate::Intersects);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 7);
    }

    #[test]
    fn knn_matches_linear_scan() {
        let data = points(100);
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(data.clone());
        idx.refresh();
        let q = STObject::point(23.0, 4.5);
        let got = idx.knn(&q, 7, DistanceFn::Euclidean);
        let mut expect: Vec<f64> =
            data.iter().map(|(o, _)| o.distance(&q, DistanceFn::Euclidean)).collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got.len(), 7);
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g.0 - e).abs() < 1e-9);
        }
    }

    #[test]
    fn within_distance_convenience() {
        let data = points(100);
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(data.clone());
        idx.refresh();
        let q = STObject::point(50.0, 5.0);
        let got = idx.within_distance(&q, 3.0, DistanceFn::Euclidean).len();
        let expect =
            data.iter().filter(|(o, _)| o.distance(&q, DistanceFn::Euclidean) <= 3.0).count();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_round_trip_leaves_index_equivalent_to_fresh_build() {
        let data = points(100);
        let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 5);
        idx.insert_batch(data.clone());
        idx.refresh();

        // remove a scattered subset, including one duplicate and one
        // record that was never inserted
        let removed_ids: Vec<usize> = (0..100).filter(|i| i % 3 == 0).collect();
        let mut to_remove: Vec<(STObject, usize)> =
            data.iter().filter(|(_, i)| removed_ids.contains(i)).cloned().collect();
        to_remove.push(data[0].clone()); // duplicate remove: no-op
        to_remove.push((STObject::point_at(999.0, 999.0, 7), 4242)); // never inserted
        let dup_and_missing = 2;
        let outcome = idx.remove_batch(to_remove);
        assert_eq!(outcome.removed, removed_ids.len());
        assert_eq!(outcome.missing, dup_and_missing);
        assert!(outcome.partitions_touched > 0);
        idx.refresh();

        // fresh index over the surviving records only
        let survivors: Vec<(STObject, usize)> =
            data.iter().filter(|(_, i)| !removed_ids.contains(i)).cloned().collect();
        let mut fresh = IncrementalIndex::new(grid_over_unit_square(4), 5);
        fresh.insert_batch(survivors.clone());
        fresh.refresh();

        assert_eq!(idx.len(), fresh.len());
        // query equivalence: filter and knn agree with the fresh build
        let collect_ids = |got: Vec<(STObject, usize)>| {
            let mut v: Vec<usize> = got.into_iter().map(|(_, i)| i).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            collect_ids(idx.filter(&query(), STPredicate::Intersects)),
            collect_ids(fresh.filter(&query(), STPredicate::Intersects)),
        );
        let q = STObject::point(23.0, 4.5);
        let got = idx.knn(&q, 9, DistanceFn::Euclidean);
        let want = fresh.knn(&q, 9, DistanceFn::Euclidean);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-12);
        }
        // pruning stays sound and tight: the same partitions scan
        assert_eq!(
            idx.partitions_scanned(&query(), &STPredicate::Intersects),
            fresh.partitions_scanned(&query(), &STPredicate::Intersects),
        );
    }

    #[test]
    fn remove_everything_empties_the_index_and_its_extents() {
        let data = points(40);
        let mut idx = IncrementalIndex::new(grid_over_unit_square(3), 4);
        idx.insert_batch(data.clone());
        idx.refresh();
        let outcome = idx.remove_batch(data);
        assert_eq!(outcome.removed, 40);
        assert_eq!(outcome.missing, 0);
        assert!(idx.is_empty());
        idx.refresh();
        // re-fitted extents prune every partition for any query
        let anywhere =
            STObject::from_wkt_interval("POLYGON((0 0, 100 0, 100 100, 0 100, 0 0))", 0, 1 << 40)
                .unwrap();
        assert_eq!(idx.partitions_scanned(&anywhere, &STPredicate::Intersects), 0);
        assert!(idx.filter(&anywhere, STPredicate::Intersects).is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Random insert/remove interleavings (with duplicate and
        /// missing-key removes drawn in) leave the index
        /// query-equivalent to a fresh build over the survivors, on
        /// both the dirty (pre-refresh) and clean (refreshed) paths.
        #[test]
        fn random_insert_remove_round_trips_match_fresh_build(
            coords in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64, 0i64..5_000), 1..120),
            remove_mask in proptest::collection::vec(proptest::prelude::any::<bool>(), 120..121),
            double_remove in proptest::prelude::any::<bool>(),
            refresh_between in proptest::prelude::any::<bool>(),
        ) {
            use proptest::prelude::prop_assert_eq;
            let data: Vec<(STObject, usize)> = coords
                .iter()
                .enumerate()
                .map(|(i, (x, y, t))| (STObject::point_at(*x, *y, *t), i))
                .collect();
            let mut idx = IncrementalIndex::new(grid_over_unit_square(4), 4);
            idx.insert_batch(data.clone());
            if refresh_between {
                idx.refresh();
            }
            let removals: Vec<(STObject, usize)> = data
                .iter()
                .zip(&remove_mask)
                .filter(|(_, m)| **m)
                .map(|(r, _)| r.clone())
                .collect();
            let mut requests = removals.clone();
            if double_remove && !removals.is_empty() {
                requests.push(removals[0].clone()); // duplicate: no-op
            }
            requests.push((STObject::point_at(-7.0, 212.0, 99), usize::MAX)); // missing key
            let outcome = idx.remove_batch(requests);
            prop_assert_eq!(outcome.removed, removals.len());
            prop_assert_eq!(
                outcome.missing,
                1 + usize::from(double_remove && !removals.is_empty())
            );

            let survivors: Vec<(STObject, usize)> = data
                .iter()
                .zip(&remove_mask)
                .filter(|(_, m)| !**m)
                .map(|(r, _)| r.clone())
                .collect();
            let mut fresh = IncrementalIndex::new(grid_over_unit_square(4), 4);
            fresh.insert_batch(survivors);
            fresh.refresh();

            let ids = |got: Vec<(STObject, usize)>| {
                let mut v: Vec<usize> = got.into_iter().map(|(_, i)| i).collect();
                v.sort_unstable();
                v
            };
            let probe = query();
            // dirty path first, then the clean path after refresh
            prop_assert_eq!(
                ids(idx.filter(&probe, STPredicate::Intersects)),
                ids(fresh.filter(&probe, STPredicate::Intersects))
            );
            idx.refresh();
            prop_assert_eq!(idx.len(), fresh.len());
            prop_assert_eq!(
                ids(idx.filter(&probe, STPredicate::Intersects)),
                ids(fresh.filter(&probe, STPredicate::Intersects))
            );
            prop_assert_eq!(
                ids(idx.within_distance(&STObject::point(50.0, 5.0), 12.0, DistanceFn::Euclidean)),
                ids(fresh.within_distance(&STObject::point(50.0, 5.0), 12.0, DistanceFn::Euclidean))
            );
        }
    }

    #[test]
    fn temporal_pruning_is_exercised() {
        let mut idx = IncrementalIndex::new(grid_over_unit_square(2), 4);
        idx.insert_batch(points(50));
        idx.refresh();
        // query far in the future of every record timestamp
        let future = STObject::from_wkt_interval(
            "POLYGON((0 0, 100 0, 100 100, 0 100, 0 0))",
            1_000_000,
            2_000_000,
        )
        .unwrap();
        assert_eq!(idx.partitions_scanned(&future, &STPredicate::Intersects), 0);
        assert!(idx.filter(&future, STPredicate::Intersects).is_empty());
    }
}
