//! Spatial op registry for multi-process execution.
//!
//! Registers the spatio-temporal operations a `stark-worker` process can
//! execute on the engine's serializable plan fragments
//! ([`stark_engine::plan`]): predicate filters, grid/BSP spatial
//! partitioners (shipped whole inside the fragment — both are plain
//! data once built), and a per-partition self-join collector. Driver and
//! worker build the identical registry, so a plan runs byte-identically
//! in-process and across processes — the invariant the distributed
//! chaos suite pins.

use crate::partitioner::{BspPartitioner, GridPartitioner, SpatialPartitioner};
use crate::predicate::STPredicate;
use crate::stobject::STObject;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use stark_engine::plan::{KeyFn, OpRegistry, PlanError, PredFn};
use std::sync::Arc;

/// The row schema name spatial plan fragments dispatch on.
pub const EVENT_SCHEMA: &str = "event";

/// One spatio-temporal event row: geometry+time plus the paper's
/// `(id, category)` payload — the same shape the benchmarks use.
pub type EventRow = (STObject, (u64, String));

/// Argument of the `st_filter` op: evaluate `predicate(row, query)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StFilterArg {
    pub query: STObject,
    pub predicate: STPredicate,
}

/// Argument of the `self_join_pairs` collector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfJoinArg {
    pub predicate: STPredicate,
}

fn parse_arg<T: serde::de::DeserializeOwned>(op: &str, arg: &Value) -> Result<T, PlanError> {
    T::from_value(arg).map_err(|e| PlanError::BadArg { op: op.to_string(), message: e.to_string() })
}

/// Encodes a typed op argument as a plan-fragment `Value`.
pub fn to_arg<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Builds the spatial registry: every op a worker needs for the
/// distributed filter, shuffle and self-join paths.
///
/// * filter `st_filter` — keep rows where `predicate(obj, query)` holds
///   (the same orientation as `SpatialRdd::filter`);
/// * partitioner `grid` / `bsp` — route by the centroid of the row's
///   geometry through a fully-serialized partitioner;
/// * collector `self_join_pairs` — per-partition self-join under a
///   predicate, returning sorted `(id, id)` pairs.
pub fn event_registry() -> OpRegistry<EventRow> {
    let mut r = OpRegistry::new(EVENT_SCHEMA);

    r.register_filter("st_filter", |arg| {
        let StFilterArg { query, predicate } = parse_arg("st_filter", arg)?;
        Ok(Arc::new(move |row: &EventRow| predicate.eval(&row.0, &query)) as PredFn<EventRow>)
    });

    r.register_partitioner("grid", |arg| {
        let part: GridPartitioner = parse_arg("grid", arg)?;
        Ok(Arc::new(move |row: &EventRow| part.partition_of(&row.0)) as KeyFn<EventRow>)
    });

    r.register_partitioner("bsp", |arg| {
        let part: BspPartitioner = parse_arg("bsp", arg)?;
        Ok(Arc::new(move |row: &EventRow| part.partition_of(&row.0)) as KeyFn<EventRow>)
    });

    r.register_collector("self_join_pairs", |arg| {
        let SelfJoinArg { predicate } = parse_arg("self_join_pairs", arg)?;
        Ok(Arc::new(move |rows: Vec<EventRow>| Ok(self_join_pairs(&rows, predicate).to_value()))
            as stark_engine::plan::CollectFn<EventRow>)
    });

    r
}

/// Per-partition self-join: unordered id pairs (`id_a < id_b`) whose
/// objects satisfy the predicate, sorted — the canonical result order
/// that makes distributed and local runs byte-comparable.
pub fn self_join_pairs(rows: &[EventRow], predicate: STPredicate) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    for (i, (oi, (idi, _))) in rows.iter().enumerate() {
        for (oj, (idj, _)) in rows.iter().skip(i + 1) {
            if predicate.eval(oi, oj) {
                pairs.push((*idi.min(idj), *idi.max(idj)));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use stark_engine::plan::{encode_rows, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput};

    fn rows() -> Vec<EventRow> {
        vec![
            (STObject::point_at(1.0, 1.0, 10), (1, "bus".into())),
            (STObject::point_at(1.0, 1.0, 10), (2, "bus".into())),
            (STObject::point_at(50.0, 50.0, 30), (3, "taxi".into())),
            (STObject::point_at(90.0, 90.0, 40), (4, "bus".into())),
        ]
    }

    fn query_box() -> STObject {
        // timed rows only match a timed query (paper temporal rule)
        STObject::from_wkt_interval("POLYGON((0 0, 40 0, 40 40, 0 40, 0 0))", 0, 100).unwrap()
    }

    #[test]
    fn st_filter_matches_direct_predicate_eval() {
        let r = event_registry();
        let arg = to_arg(&StFilterArg { query: query_box(), predicate: STPredicate::ContainedBy });
        let fragment = PlanFragment {
            schema: EVENT_SCHEMA.into(),
            input: PlanInput::Inline,
            ops: vec![PlanOp::Filter { op: "st_filter".into(), arg }],
            sink: PlanSink::Count,
        };
        let payload = encode_rows(&rows()).unwrap();
        let out = r.execute(&fragment, Some(&payload), None).unwrap();
        assert_eq!(out.output, TaskOutput::Count(2), "two points fall in the box");
    }

    #[test]
    fn grid_partitioner_ships_whole_and_routes_identically() {
        let space = stark_geo::Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
        let grid = GridPartitioner::with_space(4, space);
        let r = event_registry();
        let fragment = PlanFragment {
            schema: EVENT_SCHEMA.into(),
            input: PlanInput::Inline,
            ops: vec![],
            sink: PlanSink::ShuffleWrite {
                partitioner: "grid".into(),
                arg: to_arg(&grid),
                num_partitions: grid.num_partitions(),
                prefix: "sh/evt".into(),
                task: 0,
            },
        };
        let dir = std::env::temp_dir().join(format!("stark-dist-grid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = stark_engine::ObjectStore::open(&dir).unwrap();
        let payload = encode_rows(&rows()).unwrap();
        let out = r.execute(&fragment, Some(&payload), Some(&store)).unwrap();
        let TaskOutput::BucketCounts(counts) = out.output else { panic!("{out:?}") };
        assert_eq!(counts.iter().sum::<u64>(), 4, "every row routed");
        for (row, _) in rows().iter().zip(&counts) {
            let bucket = grid.partition_of(&row.0);
            assert!(counts[bucket] > 0, "bucket {bucket} must hold its row");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_join_collector_matches_reference_pairs() {
        let r = event_registry();
        let fragment = PlanFragment {
            schema: EVENT_SCHEMA.into(),
            input: PlanInput::Inline,
            ops: vec![],
            sink: PlanSink::CollectWith {
                op: "self_join_pairs".into(),
                arg: to_arg(&SelfJoinArg { predicate: STPredicate::Intersects }),
            },
        };
        let payload = encode_rows(&rows()).unwrap();
        let out = r.execute(&fragment, Some(&payload), None).unwrap();
        let TaskOutput::Json(v) = out.output else { panic!("{out:?}") };
        let got: Vec<(u64, u64)> = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(got, self_join_pairs(&rows(), STPredicate::Intersects));
        assert_eq!(got, vec![(1, 2)], "only the co-located points intersect");
    }

    #[test]
    fn bsp_partitioner_round_trips_through_serde() {
        let coords: Vec<stark_geo::Coord> = (0..200)
            .map(|i| stark_geo::Coord::new((i % 20) as f64 * 5.0, (i / 20) as f64 * 10.0))
            .collect();
        let summary: crate::partitioner::DataSummary =
            coords.iter().map(|c| (stark_geo::Envelope::from_point(*c), *c)).collect();
        let bsp = BspPartitioner::build(32, 5.0, &summary);
        let v = to_arg(&bsp);
        let back: BspPartitioner = serde::Deserialize::from_value(&v).unwrap();
        for c in &coords {
            assert_eq!(bsp.partition_for_centroid(c), back.partition_for_centroid(c));
        }
    }
}
