//! Clustering operators (paper §2.3: "An important data mining operation
//! is clustering. STARK implements the DBSCAN algorithm … inspired by
//! MR-DBSCAN").

mod colocation;
mod dbscan;
mod union_find;

pub use colocation::{colocation_patterns, ColocationParams, ColocationPattern};
pub use dbscan::{dbscan, dbscan_local, DbscanParams};
pub use union_find::UnionFind;
