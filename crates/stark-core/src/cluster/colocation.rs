//! Co-location pattern mining (paper §4: the demonstration queries
//! include "clustering/co-location").
//!
//! A co-location pattern `(A, B)` is a pair of event categories whose
//! instances frequently occur near each other. Following the standard
//! participation-index formulation: the *participation ratio* of `A` in
//! `(A, B)` is the fraction of `A` instances with at least one `B`
//! instance within the neighbourhood distance; the *participation index*
//! is the minimum of the two ratios. Patterns at or above the threshold
//! are reported.

use crate::join::JoinConfig;
use crate::predicate::STPredicate;
use crate::spatial_rdd::SpatialRdd;
use stark_engine::Data;
use stark_geo::DistanceFn;
use std::collections::{HashMap, HashSet};

/// Parameters for co-location mining.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColocationParams {
    /// Neighbourhood distance.
    pub distance: f64,
    /// Distance function for the neighbourhood test.
    pub dist_fn: DistanceFn,
    /// Minimum participation index for a pattern to be reported.
    pub min_participation: f64,
}

impl ColocationParams {
    pub fn new(distance: f64, min_participation: f64) -> Self {
        assert!(distance > 0.0, "distance must be positive");
        assert!((0.0..=1.0).contains(&min_participation), "participation index must be in [0, 1]");
        ColocationParams { distance, dist_fn: DistanceFn::Euclidean, min_participation }
    }
}

/// A mined co-location pattern between two categories.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocationPattern {
    /// The two categories, lexicographically ordered.
    pub categories: (String, String),
    /// Fraction of `categories.0` instances with a `categories.1`
    /// neighbour.
    pub participation_a: f64,
    /// Fraction of `categories.1` instances with a `categories.0`
    /// neighbour.
    pub participation_b: f64,
    /// `min(participation_a, participation_b)`.
    pub participation_index: f64,
    /// Number of neighbouring instance pairs observed.
    pub pair_count: usize,
}

/// Mines pairwise co-location patterns from a categorised event dataset.
///
/// `category` projects each record's category label. The neighbourhood
/// relation is evaluated with a `withinDistance` self-join, which uses
/// the dataset's spatial partitioning when present. Patterns are returned
/// sorted by descending participation index.
pub fn colocation_patterns<V: Data>(
    input: &SpatialRdd<V>,
    category: impl Fn(&V) -> String + Send + Sync + 'static,
    params: ColocationParams,
) -> Vec<ColocationPattern> {
    // Tag instances with ids and categories once.
    let tagged =
        input.rdd().zip_with_index().map(move |(id, (o, v))| (o, (id, category(&v)))).cache();

    // Instances per category (for the ratio denominators).
    let mut category_sizes: HashMap<String, usize> = HashMap::new();
    for (_, (_, cat)) in tagged.collect() {
        *category_sizes.entry(cat).or_default() += 1;
    }

    // Neighbour pairs via the distance self-join; same-category and
    // self pairs are dropped. id-tagging preserves partition structure,
    // so the input's partitioning metadata carries over.
    let srdd = SpatialRdd::with_info(tagged, input.partitioning().cloned());
    let pred = STPredicate::WithinDistance { max_dist: params.distance, dist_fn: params.dist_fn };
    let pairs = srdd.self_join(pred, JoinConfig::default());

    // participants[(A, B)] = set of A-instance ids with a B neighbour
    let mut participants: HashMap<(String, String), HashSet<u64>> = HashMap::new();
    let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
    for ((_, (lid, lcat)), (_, (rid, rcat))) in pairs.collect() {
        if lid == rid || lcat == rcat {
            continue;
        }
        participants.entry((lcat.clone(), rcat.clone())).or_default().insert(lid);
        // count each unordered pair once (the join emits both directions)
        if lcat < rcat {
            *pair_counts.entry((lcat, rcat)).or_default() += 1;
        }
    }

    let mut patterns = Vec::new();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    for (a, b) in participants.keys() {
        let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !seen.insert(key.clone()) {
            continue;
        }
        let (a, b) = key.clone();
        let count_a = participants.get(&(a.clone(), b.clone())).map_or(0, HashSet::len);
        let count_b = participants.get(&(b.clone(), a.clone())).map_or(0, HashSet::len);
        let total_a = *category_sizes.get(&a).unwrap_or(&0);
        let total_b = *category_sizes.get(&b).unwrap_or(&0);
        if total_a == 0 || total_b == 0 {
            continue;
        }
        let pa = count_a as f64 / total_a as f64;
        let pb = count_b as f64 / total_b as f64;
        let pi = pa.min(pb);
        if pi >= params.min_participation {
            patterns.push(ColocationPattern {
                categories: (a.clone(), b.clone()),
                participation_a: pa,
                participation_b: pb,
                participation_index: pi,
                pair_count: pair_counts.get(&(a, b)).copied().unwrap_or(0),
            });
        }
    }
    patterns.sort_by(|x, y| {
        y.participation_index
            .partial_cmp(&x.participation_index)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.categories.cmp(&y.categories))
    });
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_rdd::SpatialRddExt;
    use crate::stobject::STObject;
    use stark_engine::Context;

    fn events(ctx: &Context, spec: &[(&str, f64, f64)]) -> SpatialRdd<String> {
        let data: Vec<(STObject, String)> =
            spec.iter().map(|&(cat, x, y)| (STObject::point(x, y), cat.to_string())).collect();
        ctx.parallelize(data, 3).spatial()
    }

    #[test]
    fn perfect_colocation() {
        let ctx = Context::with_parallelism(2);
        // every cafe has a bakery next door, and vice versa
        let spec: Vec<(&str, f64, f64)> = (0..10)
            .flat_map(|i| {
                let x = i as f64 * 10.0;
                vec![("cafe", x, 0.0), ("bakery", x + 0.5, 0.0)]
            })
            .collect();
        let rdd = events(&ctx, &spec);
        let got = colocation_patterns(&rdd, |c| c.clone(), ColocationParams::new(1.0, 0.5));
        assert_eq!(got.len(), 1);
        let p = &got[0];
        assert_eq!(p.categories, ("bakery".to_string(), "cafe".to_string()));
        assert_eq!(p.participation_index, 1.0);
        assert_eq!(p.pair_count, 10);
    }

    #[test]
    fn partial_participation() {
        let ctx = Context::with_parallelism(2);
        // 4 parks; only 2 have a fountain nearby; fountains always near a park
        let spec = [
            ("park", 0.0, 0.0),
            ("park", 100.0, 0.0),
            ("park", 200.0, 0.0),
            ("park", 300.0, 0.0),
            ("fountain", 0.4, 0.0),
            ("fountain", 100.4, 0.0),
        ];
        let rdd = events(&ctx, &spec);
        let got = colocation_patterns(&rdd, |c| c.clone(), ColocationParams::new(1.0, 0.0));
        assert_eq!(got.len(), 1);
        let p = &got[0];
        // participation of "fountain" is 1.0, of "park" is 0.5
        assert!((p.participation_index - 0.5).abs() < 1e-9);
        let (a, _b) = &p.categories;
        let (pa, pb) = (p.participation_a, p.participation_b);
        let park_ratio = if a == "park" { pa } else { pb };
        let fountain_ratio = if a == "fountain" { pa } else { pb };
        assert!((park_ratio - 0.5).abs() < 1e-9);
        assert!((fountain_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_filters_weak_patterns() {
        let ctx = Context::with_parallelism(2);
        let spec = [("a", 0.0, 0.0), ("b", 0.5, 0.0), ("a", 100.0, 0.0), ("b", 200.0, 0.0)];
        let rdd = events(&ctx, &spec);
        // pattern PI = 0.5; threshold 0.6 filters it
        assert!(
            colocation_patterns(&rdd, |c| c.clone(), ColocationParams::new(1.0, 0.6)).is_empty()
        );
        assert_eq!(
            colocation_patterns(&rdd, |c| c.clone(), ColocationParams::new(1.0, 0.4)).len(),
            1
        );
    }

    #[test]
    fn same_category_neighbours_ignored() {
        let ctx = Context::with_parallelism(2);
        let spec = [("x", 0.0, 0.0), ("x", 0.1, 0.0), ("x", 0.2, 0.0)];
        let rdd = events(&ctx, &spec);
        assert!(
            colocation_patterns(&rdd, |c| c.clone(), ColocationParams::new(1.0, 0.0)).is_empty()
        );
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn params_validated() {
        ColocationParams::new(0.0, 0.5);
    }
}
