//! A sparse union-find over `u64` labels, used by the DBSCAN merge step.

use std::collections::HashMap;

/// Disjoint-set forest with path compression and union by size.
/// Elements spring into existence on first touch.
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: HashMap<u64, u64>,
    size: HashMap<u64, u64>,
}

impl UnionFind {
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical representative of `x`'s set.
    pub fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let sa = *self.size.get(&ra).unwrap_or(&1);
        let sb = *self.size.get(&rb).unwrap_or(&1);
        let (big, small) = if sa >= sb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(small, big);
        self.size.insert(big, sa + sb);
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn connected(&mut self, a: u64, b: u64) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_root() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.find(7), 7);
        assert!(!uf.connected(1, 2));
    }

    #[test]
    fn union_transitivity() {
        let mut uf = UnionFind::new();
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(10, 11);
        assert!(uf.connected(1, 3));
        assert!(uf.connected(3, 2));
        assert!(!uf.connected(1, 10));
        uf.union(3, 10);
        assert!(uf.connected(1, 11));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        uf.union(1, 2);
        uf.union(1, 2);
        uf.union(2, 1);
        assert!(uf.connected(1, 2));
    }
}
