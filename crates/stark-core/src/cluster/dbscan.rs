//! Distributed DBSCAN in the MR-DBSCAN style (paper §2.3, He et al. [1]).
//!
//! The implementation exploits the spatial partitioning exactly as the
//! paper describes: points within ε of a partition's border are
//! *replicated* into the neighbouring partitions, a local DBSCAN runs in
//! parallel on each partition, and a merge step unions local clusters
//! through the replicated points.
//!
//! Correctness relies on two invariants of ε-replication:
//!
//! 1. a point's **home** partition contains its complete ε-neighbourhood,
//!    so core/border/noise classification at home is globally exact;
//! 2. a *locally* core replica is also globally core (a local
//!    neighbourhood is a subset of the global one), so merging the
//!    clusters of core replicas never over-merges.

use crate::cluster::union_find::UnionFind;
use crate::partitioner::{BspPartitioner, SpatialPartitioner};
use crate::spatial_rdd::SpatialRdd;
use crate::stobject::STObject;
use stark_engine::{Rdd, StoreData};
use stark_index::{Entry, StrTree};
use std::collections::HashMap;
use std::sync::Arc;

/// DBSCAN parameters: neighbourhood radius and density threshold.
/// A point is *core* when its closed ε-neighbourhood (itself included)
/// holds at least `min_pts` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    pub eps: f64,
    pub min_pts: usize,
}

impl DbscanParams {
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(min_pts >= 1, "min_pts must be at least 1");
        DbscanParams { eps, min_pts }
    }
}

/// Single-threaded textbook DBSCAN over a record slice, used per
/// partition by the distributed algorithm and as the test oracle.
///
/// Distances are Euclidean between geometries. Returns, per record,
/// `(cluster, is_core)` where `cluster` is `None` for noise. Cluster ids
/// are dense from 0 in discovery order.
pub fn dbscan_local<V>(
    records: &[(STObject, V)],
    params: &DbscanParams,
) -> (Vec<Option<usize>>, Vec<bool>) {
    let n = records.len();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut core = vec![false; n];
    if n == 0 {
        return (labels, core);
    }

    let entries: Vec<Entry<usize>> =
        records.iter().enumerate().map(|(i, (o, _))| Entry::new(o.envelope(), i)).collect();
    let tree = StrTree::build(8, entries);

    let neighbors = |i: usize| -> Vec<usize> {
        let probe = records[i].0.envelope().buffered(params.eps);
        let mut out = Vec::new();
        tree.for_each_candidate(&probe, &mut |e| {
            let j = e.item;
            if records[i].0.geo().distance(records[j].0.geo()) <= params.eps {
                out.push(j);
            }
        });
        out
    };

    let mut next_cluster = 0usize;
    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let ns = neighbors(i);
        if ns.len() < params.min_pts {
            continue; // noise for now; may become border later
        }
        // start a new cluster and expand it
        let cid = next_cluster;
        next_cluster += 1;
        core[i] = true;
        labels[i] = Some(cid);
        let mut queue: std::collections::VecDeque<usize> = ns.into_iter().collect();
        while let Some(j) = queue.pop_front() {
            if labels[j].is_none() {
                labels[j] = Some(cid);
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let njs = neighbors(j);
            if njs.len() >= params.min_pts {
                core[j] = true;
                queue.extend(njs);
            }
        }
    }
    (labels, core)
}

/// Intermediate row flowing through the distributed stages.
type Tagged<V> = (u64, STObject, V, bool /*home*/, bool /*replicated*/);
type Labeled<V> = (u64, STObject, V, bool, bool, Option<u64> /*label*/, bool /*core*/);

/// Distributed DBSCAN. Returns `(object, value, cluster)` with dense
/// cluster ids (`None` = noise), in the partitioned order.
///
/// Uses the input's spatial partitioning when present; otherwise builds a
/// cost-based BSP partitioning sized for the data (the paper's default
/// pairing of DBSCAN with spatial partitioning).
pub fn dbscan<V: StoreData>(
    input: &SpatialRdd<V>,
    params: DbscanParams,
) -> Rdd<(STObject, V, Option<u64>)> {
    // ε-replication needs *spatial* partition bounds; partitioners
    // without them (e.g. the temporal one) fall back to a fresh BSP.
    let existing = input
        .partitioning()
        .and_then(|info| info.partitioner.clone())
        .filter(|p| p.cells().iter().all(|c| !c.bounds.is_empty()));
    let partitioner: Arc<dyn SpatialPartitioner> = match existing {
        Some(p) => p,
        None => {
            let summary = input.summarize();
            let max_cost = (summary.len() / 8).max(64);
            Arc::new(BspPartitioner::build(max_cost, params.eps.max(1e-9) * 4.0, &summary))
        }
    };
    let num_parts = partitioner.num_partitions();
    let cells: Vec<_> = partitioner.cells().iter().map(|c| c.bounds).collect();
    let eps = params.eps;

    // 1. Tag with global ids and replicate ε-border points.
    let p = partitioner.clone();
    let cells_for_assign = cells.clone();
    let tagged: Rdd<(usize, Tagged<V>)> =
        input.rdd().zip_with_index().flat_map(move |(id, (o, v))| {
            let home = p.partition_of(&o);
            let env = o.envelope();
            let mut targets = vec![home];
            for (ci, bounds) in cells_for_assign.iter().enumerate() {
                if ci != home && bounds.distance(&env) <= eps {
                    targets.push(ci);
                }
            }
            let replicated = targets.len() > 1;
            targets
                .into_iter()
                .map(|t| (t, (id, o.clone(), v.clone(), t == home, replicated)))
                .collect::<Vec<_>>()
        });
    let placed = tagged.partition_by(num_parts, |(t, _)| *t).map(|(_, row)| row);

    // 2. Local DBSCAN per partition; labels become globally unique via
    //    (partition << 32) | local cluster id.
    let clustered: Rdd<Labeled<V>> = placed
        .map_partitions_with_index(move |part, rows| {
            let recs: Vec<(STObject, V)> =
                rows.iter().map(|(_, o, v, _, _)| (o.clone(), v.clone())).collect();
            let (labels, cores) = dbscan_local(&recs, &params);
            rows.into_iter()
                .zip(labels.into_iter().zip(cores))
                .map(|((id, o, v, home, repl), (label, core))| {
                    let global = label.map(|l| ((part as u64) << 32) | l as u64);
                    (id, o, v, home, repl, global, core)
                })
                .collect()
        })
        .cache();

    // 3. Merge step on the driver, using only the replicated points.
    let merge_info: Vec<(u64, bool, Option<u64>, bool)> = clustered
        .filter(|row| row.4)
        .map(|(id, _, _, home, _, label, core)| (id, home, label, core))
        .collect();

    let mut by_id: HashMap<u64, Vec<(bool, Option<u64>, bool)>> = HashMap::new();
    for (id, home, label, core) in merge_info {
        by_id.entry(id).or_default().push((home, label, core));
    }

    let mut uf = UnionFind::new();
    let mut overrides: HashMap<u64, u64> = HashMap::new();
    for (id, memberships) in &by_id {
        let is_core = memberships.iter().any(|(_, l, c)| *c && l.is_some());
        let labels: Vec<u64> = memberships.iter().filter_map(|(_, l, _)| *l).collect();
        if is_core {
            for w in labels.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        // Final assignment for this replicated point: prefer its home
        // label; otherwise adopt a label from some replica (border case).
        let home_label = memberships.iter().find(|(h, _, _)| *h).and_then(|(_, l, _)| *l);
        if let Some(l) = home_label.or_else(|| labels.first().copied()) {
            overrides.insert(*id, l);
        }
    }

    // 4. Canonical → dense cluster ids.
    let mut home_labels: Vec<u64> = clustered
        .run_partitions(|_, rows| {
            let mut ls: Vec<u64> = rows.iter().filter(|r| r.3).filter_map(|r| r.5).collect();
            ls.sort_unstable();
            ls.dedup();
            ls
        })
        .into_iter()
        .flatten()
        .collect();
    home_labels.extend(overrides.values().copied());
    home_labels.sort_unstable();
    home_labels.dedup();

    let mut canon_to_dense: HashMap<u64, u64> = HashMap::new();
    let mut label_to_dense: HashMap<u64, u64> = HashMap::new();
    let mut canonical: Vec<u64> = home_labels.iter().map(|&l| uf.find(l)).collect();
    canonical.sort_unstable();
    canonical.dedup();
    for (dense, c) in canonical.iter().enumerate() {
        canon_to_dense.insert(*c, dense as u64);
    }
    for l in home_labels {
        label_to_dense.insert(l, canon_to_dense[&uf.find(l)]);
    }
    let overrides_dense: HashMap<u64, u64> =
        overrides.into_iter().map(|(id, l)| (id, label_to_dense[&l])).collect();

    // 5. Emit home rows with final labels.
    let label_map = Arc::new(label_to_dense);
    let override_map = Arc::new(overrides_dense);
    clustered.filter(|row| row.3).map(move |(id, o, v, _, replicated, label, _)| {
        let fin = if replicated {
            override_map.get(&id).copied()
        } else {
            label.and_then(|l| label_map.get(&l).copied())
        };
        (o, v, fin)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::GridPartitioner;
    use crate::spatial_rdd::SpatialRddExt;
    use stark_engine::Context;

    fn to_rdd(ctx: &Context, pts: &[(f64, f64)], parts: usize) -> SpatialRdd<u32> {
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        ctx.parallelize(data, parts).spatial()
    }

    /// Three tight, well-separated blobs plus two isolated noise points.
    fn blobs() -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)] {
            for i in 0..12 {
                pts.push((cx + (i % 4) as f64 * 0.1, cy + (i / 4) as f64 * 0.1));
            }
        }
        pts.push((5.0, 5.0));
        pts.push((15.0, 5.0));
        pts
    }

    #[test]
    fn local_dbscan_finds_blobs() {
        let data: Vec<(STObject, u32)> = blobs()
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i as u32))
            .collect();
        let (labels, cores) = dbscan_local(&data, &DbscanParams::new(0.5, 4));
        // three clusters of 12, two noise points
        let mut sizes: HashMap<usize, usize> = HashMap::new();
        let mut noise = 0;
        for l in &labels {
            match l {
                Some(c) => *sizes.entry(*c).or_default() += 1,
                None => noise += 1,
            }
        }
        assert_eq!(noise, 2);
        assert_eq!(sizes.len(), 3);
        assert!(sizes.values().all(|&s| s == 12));
        // blob members with full neighbourhoods are core
        assert!(cores.iter().filter(|&&c| c).count() >= 3 * 4);
    }

    #[test]
    fn local_dbscan_all_noise_when_sparse() {
        let data: Vec<(STObject, u32)> =
            (0..10).map(|i| (STObject::point(i as f64 * 100.0, 0.0), i)).collect();
        let (labels, cores) = dbscan_local(&data, &DbscanParams::new(1.0, 3));
        assert!(labels.iter().all(|l| l.is_none()));
        assert!(cores.iter().all(|&c| !c));
    }

    #[test]
    fn local_dbscan_single_cluster_line() {
        // chain of points each 0.5 apart: one cluster with min_pts 2
        let data: Vec<(STObject, u32)> =
            (0..20).map(|i| (STObject::point(i as f64 * 0.5, 0.0), i)).collect();
        let (labels, _) = dbscan_local(&data, &DbscanParams::new(0.6, 2));
        assert!(labels.iter().all(|l| *l == Some(0)));
    }

    #[test]
    fn local_dbscan_empty() {
        let data: Vec<(STObject, u32)> = Vec::new();
        let (labels, cores) = dbscan_local(&data, &DbscanParams::new(1.0, 2));
        assert!(labels.is_empty());
        assert!(cores.is_empty());
    }

    /// Compare distributed and local DBSCAN as set partitions of ids.
    fn clusterings_agree(
        distributed: Vec<(STObject, u32, Option<u64>)>,
        reference: (&[(STObject, u32)], &DbscanParams),
    ) {
        let (data, params) = reference;
        let (ref_labels, _) = dbscan_local(data, params);
        let ref_map: HashMap<u32, Option<usize>> =
            data.iter().zip(ref_labels).map(|((_, v), l)| (*v, l)).collect();

        // noise sets must match exactly
        let dist_noise: std::collections::BTreeSet<u32> =
            distributed.iter().filter(|(_, _, l)| l.is_none()).map(|(_, v, _)| *v).collect();
        let ref_noise: std::collections::BTreeSet<u32> =
            ref_map.iter().filter(|(_, l)| l.is_none()).map(|(v, _)| *v).collect();
        assert_eq!(dist_noise, ref_noise, "noise sets differ");

        // cluster groupings must be identical up to renaming
        let mut pairing: HashMap<u64, usize> = HashMap::new();
        let mut reverse: HashMap<usize, u64> = HashMap::new();
        for (_, v, l) in &distributed {
            let (Some(dl), Some(rl)) = (*l, ref_map[v]) else { continue };
            match pairing.get(&dl) {
                Some(&expected) => assert_eq!(expected, rl, "cluster split for id {v}"),
                None => {
                    assert!(
                        reverse.insert(rl, dl).is_none(),
                        "two distributed clusters map to reference cluster {rl}"
                    );
                    pairing.insert(dl, rl);
                }
            }
        }
    }

    #[test]
    fn distributed_matches_local_on_blobs() {
        let ctx = Context::with_parallelism(4);
        let pts = blobs();
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        let params = DbscanParams::new(0.5, 4);
        let rdd = to_rdd(&ctx, &pts, 5);
        let result = dbscan(&rdd, params).collect();
        assert_eq!(result.len(), pts.len());
        clusterings_agree(result, (&data, &params));
    }

    #[test]
    fn distributed_matches_local_with_explicit_partitioning() {
        let ctx = Context::with_parallelism(4);
        let pts = blobs();
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        let params = DbscanParams::new(0.5, 4);
        let rdd = to_rdd(&ctx, &pts, 3);
        let grid = rdd.partition_by(Arc::new(GridPartitioner::build(3, &rdd.summarize())));
        let result = dbscan(&grid, params).collect();
        clusterings_agree(result, (&data, &params));
    }

    #[test]
    fn cluster_spanning_partition_borders_is_merged() {
        let ctx = Context::with_parallelism(4);
        // one long chain crossing the whole space — any grid cut splits it
        let pts: Vec<(f64, f64)> = (0..60).map(|i| (i as f64 * 0.4, 0.0)).collect();
        let data: Vec<(STObject, u32)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (STObject::point(x, y), i as u32)).collect();
        let params = DbscanParams::new(0.5, 2);
        let rdd = to_rdd(&ctx, &pts, 4);
        let grid = rdd.partition_by(Arc::new(GridPartitioner::build(4, &rdd.summarize())));
        let result = dbscan(&grid, params).collect();
        let labels: std::collections::BTreeSet<Option<u64>> =
            result.iter().map(|(_, _, l)| *l).collect();
        assert_eq!(labels.len(), 1, "expected one merged cluster, got {labels:?}");
        assert!(labels.iter().all(|l| l.is_some()));
        clusterings_agree(result, (&data, &params));
    }

    #[test]
    fn temporal_partitioning_falls_back_to_spatial_for_clustering() {
        use crate::partitioner::TemporalPartitioner;
        let ctx = Context::with_parallelism(4);
        // one spatial chain, but with times that scatter it across every
        // temporal bucket — a naive per-bucket clustering would shatter it
        let data: Vec<(STObject, u32)> = (0..40)
            .map(|i| (STObject::point_at(i as f64 * 0.4, 0.0, (i % 7) as i64 * 1000), i))
            .collect();
        let rdd = ctx.parallelize(data, 4).spatial();
        let times: Vec<Option<crate::temporal::Temporal>> =
            rdd.rdd().collect().iter().map(|(o, _)| o.time().copied()).collect();
        let temporal = rdd.partition_by(Arc::new(TemporalPartitioner::build(7, &times)));

        let result = dbscan(&temporal, DbscanParams::new(0.5, 2)).collect();
        let labels: std::collections::BTreeSet<Option<u64>> =
            result.iter().map(|(_, _, l)| *l).collect();
        assert_eq!(labels.len(), 1, "the chain must stay one cluster: {labels:?}");
        assert!(labels.iter().all(|l| l.is_some()));
    }

    #[test]
    fn dense_ids_are_contiguous_from_zero() {
        let ctx = Context::with_parallelism(4);
        let rdd = to_rdd(&ctx, &blobs(), 6);
        let result = dbscan(&rdd, DbscanParams::new(0.5, 4)).collect();
        let mut ids: Vec<u64> = result.iter().filter_map(|(_, _, l)| *l).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn params_validated() {
        DbscanParams::new(0.0, 3);
    }
}
