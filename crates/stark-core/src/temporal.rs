//! Temporal expressions and predicates.
//!
//! STARK's `STObject` carries an optional temporal component: either an
//! instant or an interval (the paper's query example builds an interval
//! from `begin`/`end` `Long` values). Timestamps here are `i64` ticks
//! (e.g. epoch seconds or milliseconds — the algebra is unit-agnostic).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A temporal component: a single instant or a (possibly right-open)
/// interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Temporal {
    /// One point in time.
    Instant(i64),
    /// A half-open interval `[start, end)`. `end = None` means the
    /// interval extends to infinity ("valid from `start` on").
    Interval { start: i64, end: Option<i64> },
}

impl Temporal {
    /// Creates an instant.
    pub fn instant(t: i64) -> Self {
        Temporal::Instant(t)
    }

    /// Creates a closed-start, open-end interval; panics if `end < start`.
    pub fn interval(start: i64, end: i64) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Temporal::Interval { start, end: Some(end) }
    }

    /// Creates an interval open to the right (`[start, ∞)`).
    pub fn from_instant_on(start: i64) -> Self {
        Temporal::Interval { start, end: None }
    }

    /// Earliest covered instant.
    pub fn start(&self) -> i64 {
        match self {
            Temporal::Instant(t) => *t,
            Temporal::Interval { start, .. } => *start,
        }
    }

    /// Exclusive upper bound; `None` for right-open intervals. An instant
    /// behaves as the degenerate interval `[t, t]` (closed).
    pub fn end_exclusive(&self) -> Option<i64> {
        match self {
            Temporal::Instant(t) => Some(*t),
            Temporal::Interval { end, .. } => *end,
        }
    }

    /// Length of the interval in ticks (0 for instants, `None` if open).
    pub fn length(&self) -> Option<i64> {
        match self {
            Temporal::Instant(_) => Some(0),
            Temporal::Interval { start, end } => end.map(|e| e - *start),
        }
    }

    /// Whether the instant `t` falls inside this temporal expression.
    pub fn covers_instant(&self, t: i64) -> bool {
        match self {
            Temporal::Instant(s) => *s == t,
            Temporal::Interval { start, end } => {
                t >= *start && end.is_none_or(|e| t < e || (e == *start && t == e))
            }
        }
    }

    /// Whether the two temporal expressions share at least one instant.
    pub fn intersects(&self, other: &Temporal) -> bool {
        match (self, other) {
            (Temporal::Instant(a), Temporal::Instant(b)) => a == b,
            (Temporal::Instant(a), iv @ Temporal::Interval { .. })
            | (iv @ Temporal::Interval { .. }, Temporal::Instant(a)) => iv.covers_instant(*a),
            (
                a @ Temporal::Interval { start: s1, end: e1 },
                b @ Temporal::Interval { start: s2, end: e2 },
            ) => {
                // A degenerate interval [s, s) stands for the instant s.
                let deg1 = *e1 == Some(*s1);
                let deg2 = *e2 == Some(*s2);
                match (deg1, deg2) {
                    (true, _) => b.covers_instant(*s1),
                    (_, true) => a.covers_instant(*s2),
                    (false, false) => {
                        let upper1 = e1.unwrap_or(i64::MAX);
                        let upper2 = e2.unwrap_or(i64::MAX);
                        (*s1).max(*s2) < upper1.min(upper2)
                    }
                }
            }
        }
    }

    /// Whether this expression temporally contains `other` entirely.
    pub fn contains(&self, other: &Temporal) -> bool {
        match (self, other) {
            (Temporal::Instant(a), Temporal::Instant(b)) => a == b,
            (Temporal::Instant(a), Temporal::Interval { start, end }) => {
                // an instant contains only the degenerate interval at a
                *start == *a && *end == Some(*a)
            }
            (iv @ Temporal::Interval { .. }, Temporal::Instant(b)) => iv.covers_instant(*b),
            (
                Temporal::Interval { start: s1, end: e1 },
                Temporal::Interval { start: s2, end: e2 },
            ) => {
                if s2 < s1 {
                    return false;
                }
                match (e1, e2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => b <= a,
                }
            }
        }
    }

    /// Reverse of [`Temporal::contains`].
    pub fn contained_by(&self, other: &Temporal) -> bool {
        other.contains(self)
    }
}

/// Summary of the temporal components inside one partition — the
/// time-axis analogue of the spatial extent (§2.1). The paper notes that
/// "in its current version, STARK only considers the spatial component
/// for partitioning"; this type is the building block of the temporal
/// extension: it lets filters prune partitions on the time axis too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalExtent {
    /// Earliest start among timed members; `None` when no member is timed.
    pub min_start: Option<i64>,
    /// Latest (exclusive) end among timed members; `Some(i64::MAX)`
    /// stands for an open-ended member.
    pub max_end: Option<i64>,
    /// Number of members without a temporal component. Needed because an
    /// untimed query can only ever match untimed members (eq. 2).
    pub untimed: u64,
    /// Number of timed members.
    pub timed: u64,
}

impl TemporalExtent {
    /// Extent of an empty partition.
    pub fn empty() -> Self {
        TemporalExtent { min_start: None, max_end: None, untimed: 0, timed: 0 }
    }

    /// Folds one record's temporal component into the extent.
    pub fn expand(&mut self, time: Option<&Temporal>) {
        match time {
            None => self.untimed += 1,
            Some(t) => {
                self.timed += 1;
                let start = t.start();
                // instants count as the degenerate closed range [t, t+1)
                let end = match t.end_exclusive() {
                    Some(e) if e > start => e,
                    Some(_) => start.saturating_add(1),
                    None => i64::MAX,
                };
                self.min_start = Some(self.min_start.map_or(start, |m| m.min(start)));
                self.max_end = Some(self.max_end.map_or(end, |m| m.max(end)));
            }
        }
    }

    /// Builds the extent of a record collection.
    pub fn of<'a, I: IntoIterator<Item = Option<&'a Temporal>>>(times: I) -> Self {
        let mut e = TemporalExtent::empty();
        for t in times {
            e.expand(t);
        }
        e
    }

    /// The covered closed-open time range of the timed members, if any.
    pub fn range(&self) -> Option<(i64, i64)> {
        self.min_start.zip(self.max_end)
    }

    /// Whether a member could *temporally intersect* `query_time` —
    /// necessary condition for `intersects` and `containedBy` matches
    /// against a timed query. Sound: never rules out a real match.
    pub fn may_intersect(&self, query_time: &Temporal) -> bool {
        let Some((lo, hi)) = self.range() else { return false };
        let q_lo = query_time.start();
        let q_hi = match query_time.end_exclusive() {
            Some(e) if e > q_lo => e,
            Some(_) => q_lo.saturating_add(1),
            None => i64::MAX,
        };
        lo < q_hi && q_lo < hi
    }

    /// Whether a member could *temporally contain* `query_time` —
    /// necessary condition for `contains` matches against a timed query.
    pub fn may_contain(&self, query_time: &Temporal) -> bool {
        let Some((lo, hi)) = self.range() else { return false };
        let q_lo = query_time.start();
        let q_hi = query_time.end_exclusive().unwrap_or(i64::MAX);
        lo <= q_lo && hi >= q_hi
    }

    /// Whether the partition holds any untimed member (the only kind an
    /// untimed query can match, per eq. 2).
    pub fn has_untimed(&self) -> bool {
        self.untimed > 0
    }
}

impl Default for TemporalExtent {
    fn default() -> Self {
        TemporalExtent::empty()
    }
}

impl fmt::Display for Temporal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporal::Instant(t) => write!(f, "@{t}"),
            Temporal::Interval { start, end: Some(e) } => write!(f, "[{start}, {e})"),
            Temporal::Interval { start, end: None } => write!(f, "[{start}, ∞)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_relations() {
        let a = Temporal::instant(5);
        let b = Temporal::instant(5);
        let c = Temporal::instant(6);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(&b));
        assert!(!a.contains(&c));
        assert!(a.contained_by(&b));
    }

    #[test]
    fn instant_vs_interval() {
        let iv = Temporal::interval(10, 20);
        assert!(iv.intersects(&Temporal::instant(10)));
        assert!(iv.intersects(&Temporal::instant(15)));
        assert!(!iv.intersects(&Temporal::instant(20)), "end is exclusive");
        assert!(!iv.intersects(&Temporal::instant(9)));
        assert!(iv.contains(&Temporal::instant(15)));
        assert!(!Temporal::instant(15).contains(&iv));
        assert!(Temporal::instant(15).contained_by(&iv));
    }

    #[test]
    fn interval_overlap() {
        let a = Temporal::interval(0, 10);
        let b = Temporal::interval(5, 15);
        let c = Temporal::interval(10, 20);
        let d = Temporal::interval(20, 30);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c), "half-open: [0,10) and [10,20) are disjoint");
        assert!(!a.intersects(&d));
        assert!(c.intersects(&b));
    }

    #[test]
    fn interval_containment() {
        let outer = Temporal::interval(0, 100);
        let inner = Temporal::interval(10, 20);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(inner.contained_by(&outer));
    }

    #[test]
    fn open_ended_intervals() {
        let open = Temporal::from_instant_on(50);
        assert!(open.intersects(&Temporal::interval(0, 51)));
        assert!(!open.intersects(&Temporal::interval(0, 50)));
        assert!(open.intersects(&Temporal::instant(1_000_000)));
        assert!(open.contains(&Temporal::interval(60, 70)));
        assert!(open.contains(&Temporal::from_instant_on(60)));
        assert!(!open.contains(&Temporal::from_instant_on(40)));
        assert!(!Temporal::interval(0, 100).contains(&open));
        assert_eq!(open.length(), None);
    }

    #[test]
    fn degenerate_empty_interval_acts_as_instant() {
        let deg = Temporal::interval(5, 5);
        assert!(deg.covers_instant(5));
        assert!(!deg.covers_instant(6));
        assert!(deg.intersects(&Temporal::instant(5)));
        assert!(Temporal::interval(0, 10).contains(&deg));
    }

    #[test]
    #[should_panic(expected = "interval end")]
    fn inverted_interval_panics() {
        Temporal::interval(10, 5);
    }

    #[test]
    fn length_and_accessors() {
        assert_eq!(Temporal::interval(10, 25).length(), Some(15));
        assert_eq!(Temporal::instant(3).length(), Some(0));
        assert_eq!(Temporal::interval(10, 25).start(), 10);
        assert_eq!(Temporal::interval(10, 25).end_exclusive(), Some(25));
    }

    #[test]
    fn extent_folds_members() {
        let times = [
            Some(Temporal::instant(10)),
            Some(Temporal::interval(20, 40)),
            None,
            Some(Temporal::instant(5)),
        ];
        let e = TemporalExtent::of(times.iter().map(|t| t.as_ref()));
        assert_eq!(e.range(), Some((5, 40)));
        assert_eq!(e.untimed, 1);
        assert_eq!(e.timed, 3);
        assert!(e.has_untimed());
    }

    #[test]
    fn extent_open_end_is_infinite() {
        let e = TemporalExtent::of([Some(&Temporal::from_instant_on(100))]);
        assert_eq!(e.range(), Some((100, i64::MAX)));
        assert!(e.may_intersect(&Temporal::instant(1_000_000)));
        assert!(!e.may_intersect(&Temporal::instant(99)));
        assert!(e.may_contain(&Temporal::from_instant_on(200)));
    }

    #[test]
    fn extent_pruning_is_sound_for_members() {
        let members =
            [Temporal::instant(10), Temporal::interval(50, 60), Temporal::interval(5, 15)];
        let e = TemporalExtent::of(members.iter().map(Some));
        let queries = [
            Temporal::instant(12),
            Temporal::interval(0, 100),
            Temporal::interval(55, 58),
            Temporal::instant(200),
            Temporal::interval(61, 70),
        ];
        for q in &queries {
            let any_intersect = members.iter().any(|m| m.intersects(q));
            let any_contain = members.iter().any(|m| m.contains(q));
            if any_intersect {
                assert!(e.may_intersect(q), "pruned an intersecting member for {q}");
            }
            if any_contain {
                assert!(e.may_contain(q), "pruned a containing member for {q}");
            }
        }
        // definitely-disjoint queries are pruned
        assert!(!e.may_intersect(&Temporal::instant(200)));
        assert!(!e.may_contain(&Temporal::interval(0, 1000)));
    }

    #[test]
    fn empty_extent_prunes_timed_queries() {
        let e = TemporalExtent::empty();
        assert!(!e.may_intersect(&Temporal::instant(5)));
        assert!(!e.may_contain(&Temporal::instant(5)));
        assert!(!e.has_untimed());
        assert_eq!(e.range(), None);
    }

    #[test]
    fn extent_instant_counts_as_unit_range() {
        let e = TemporalExtent::of([Some(&Temporal::instant(7))]);
        assert_eq!(e.range(), Some((7, 8)));
        assert!(e.may_intersect(&Temporal::instant(7)));
        assert!(!e.may_intersect(&Temporal::instant(8)));
        assert!(e.may_contain(&Temporal::instant(7)));
    }

    #[test]
    fn display() {
        assert_eq!(Temporal::instant(5).to_string(), "@5");
        assert_eq!(Temporal::interval(1, 2).to_string(), "[1, 2)");
        assert_eq!(Temporal::from_instant_on(9).to_string(), "[9, ∞)");
    }
}
