//! Cost-based binary space partitioner (paper §2.1, based on the
//! MR-DBSCAN partitioning scheme of He et al. [1]).
//!
//! The data space is recursively split into two regions of (near-)equal
//! *cost* — number of contained records — until a region's cost drops
//! below a threshold or the region reaches a minimum side length. Dense
//! areas therefore receive many small partitions while sparse areas are
//! covered by few large ones, fixing the skew problem of the fixed grid.

use super::{fit_extents, DataSummary, PartitionCell, SpatialPartitioner};
use serde::{Deserialize, Serialize};
use stark_geo::{Coord, Envelope};

/// Hard cap on histogram cells so adversarial side-length choices cannot
/// explode memory; the effective side length grows if the cap would be hit.
const MAX_HISTOGRAM_CELLS: usize = 1 << 20;

/// Cost-based binary space partitioner.
///
/// Serializable: once built, the partitioner is plain data (histogram
/// lookup table + cell geometry), so it can ship whole to worker
/// processes inside a plan fragment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BspPartitioner {
    space: Envelope,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    /// histogram-cell → partition id
    lookup: Vec<u32>,
    cells: Vec<PartitionCell>,
}

impl BspPartitioner {
    /// Builds a partitioning from the data summary.
    ///
    /// * `max_cost` — recursion stops once a region holds at most this
    ///   many records (the paper's cost threshold);
    /// * `side_length` — granularity threshold: regions are never split
    ///   below this side length.
    pub fn build(max_cost: usize, side_length: f64, data: &DataSummary) -> Self {
        let max_cost = max_cost.max(1);
        assert!(side_length > 0.0, "side_length must be positive");

        let mut space = Envelope::empty();
        for (_, centroid) in data {
            space.expand_to_include(centroid);
        }
        if space.is_empty() {
            space = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        }

        // Histogram resolution: one cell per side_length, capped.
        let mut side = side_length;
        let (mut nx, mut ny) = grid_dims(&space, side);
        while (nx as u128) * (ny as u128) > MAX_HISTOGRAM_CELLS as u128 {
            side *= 2.0;
            let d = grid_dims(&space, side);
            nx = d.0;
            ny = d.1;
        }
        let cell_w = positive(space.width() / nx as f64);
        let cell_h = positive(space.height() / ny as f64);

        // Count records per histogram cell.
        let mut counts = vec![0u64; nx * ny];
        for (_, c) in data {
            let (cx, cy) = locate(&space, cell_w, cell_h, nx, ny, c);
            counts[cy * nx + cx] += 1;
        }

        // 2D prefix sums for O(1) range cost.
        let mut prefix = vec![0u64; (nx + 1) * (ny + 1)];
        for y in 0..ny {
            for x in 0..nx {
                prefix[(y + 1) * (nx + 1) + (x + 1)] = counts[y * nx + x]
                    + prefix[y * (nx + 1) + (x + 1)]
                    + prefix[(y + 1) * (nx + 1) + x]
                    - prefix[y * (nx + 1) + x];
            }
        }
        let cost = |x0: usize, y0: usize, x1: usize, y1: usize| -> u64 {
            prefix[y1 * (nx + 1) + x1] + prefix[y0 * (nx + 1) + x0]
                - prefix[y0 * (nx + 1) + x1]
                - prefix[y1 * (nx + 1) + x0]
        };

        // Recursive binary splitting over histogram-cell rectangles.
        let mut leaves: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut stack = vec![(0usize, 0usize, nx, ny)];
        while let Some((x0, y0, x1, y1)) = stack.pop() {
            let c = cost(x0, y0, x1, y1);
            let splittable = (x1 - x0 > 1) || (y1 - y0 > 1);
            if c <= max_cost as u64 || !splittable {
                leaves.push((x0, y0, x1, y1));
                continue;
            }
            // Find the split (on either axis) with the most even halves.
            let mut best: Option<(u64, bool, usize)> = None; // (imbalance, vertical?, pos)
            for sx in (x0 + 1)..x1 {
                let left = cost(x0, y0, sx, y1);
                let imbalance = (2 * left).abs_diff(c);
                if best.is_none_or(|(b, _, _)| imbalance < b) {
                    best = Some((imbalance, true, sx));
                }
            }
            for sy in (y0 + 1)..y1 {
                let low = cost(x0, y0, x1, sy);
                let imbalance = (2 * low).abs_diff(c);
                if best.is_none_or(|(b, _, _)| imbalance < b) {
                    best = Some((imbalance, false, sy));
                }
            }
            match best {
                Some((_, true, sx)) => {
                    stack.push((x0, y0, sx, y1));
                    stack.push((sx, y0, x1, y1));
                }
                Some((_, false, sy)) => {
                    stack.push((x0, y0, x1, sy));
                    stack.push((x0, sy, x1, y1));
                }
                None => leaves.push((x0, y0, x1, y1)),
            }
        }

        // Materialise cells and the histogram-cell → partition lookup.
        let mut cells = Vec::with_capacity(leaves.len());
        let mut lookup = vec![0u32; nx * ny];
        for (id, &(x0, y0, x1, y1)) in leaves.iter().enumerate() {
            let min_x = space.min_x() + x0 as f64 * cell_w;
            let min_y = space.min_y() + y0 as f64 * cell_h;
            // leaves touching the space's max edge must end exactly on it:
            // `min + i*cell` accumulates rounding error and can leave the
            // space's max corner outside every leaf's stated bounds
            let max_x = if x1 == nx {
                space.max_x().max(min_x)
            } else {
                space.min_x() + x1 as f64 * cell_w
            };
            let max_y = if y1 == ny {
                space.max_y().max(min_y)
            } else {
                space.min_y() + y1 as f64 * cell_h
            };
            let bounds = Envelope::from_bounds(min_x, min_y, max_x, max_y);
            cells.push(PartitionCell::new(id, bounds));
            for y in y0..y1 {
                for x in x0..x1 {
                    lookup[y * nx + x] = id as u32;
                }
            }
        }

        let mut bsp = BspPartitioner { space, nx, ny, cell_w, cell_h, lookup, cells };
        let probe = bsp.clone();
        fit_extents(&mut bsp.cells, |c| probe.partition_for_centroid(c), data);
        bsp
    }
}

fn grid_dims(space: &Envelope, side: f64) -> (usize, usize) {
    let nx = (space.width() / side).ceil().max(1.0) as usize;
    let ny = (space.height() / side).ceil().max(1.0) as usize;
    (nx, ny)
}

fn positive(v: f64) -> f64 {
    if v > 0.0 {
        v
    } else {
        1.0
    }
}

fn locate(
    space: &Envelope,
    cell_w: f64,
    cell_h: f64,
    nx: usize,
    ny: usize,
    c: &Coord,
) -> (usize, usize) {
    let cx = (((c.x - space.min_x()) / cell_w).floor() as i64).clamp(0, nx as i64 - 1) as usize;
    let cy = (((c.y - space.min_y()) / cell_h).floor() as i64).clamp(0, ny as i64 - 1) as usize;
    (cx, cy)
}

impl SpatialPartitioner for BspPartitioner {
    fn num_partitions(&self) -> usize {
        self.cells.len()
    }

    fn partition_for_centroid(&self, c: &Coord) -> usize {
        let (cx, cy) = locate(&self.space, self.cell_w, self.cell_h, self.nx, self.ny, c);
        self.lookup[cy * self.nx + cx] as usize
    }

    fn cells(&self) -> &[PartitionCell] {
        &self.cells
    }

    fn name(&self) -> &'static str {
        "bsp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::balance_stats;

    fn summary(pts: &[(f64, f64)]) -> DataSummary {
        pts.iter()
            .map(|&(x, y)| {
                let c = Coord::new(x, y);
                (Envelope::from_point(c), c)
            })
            .collect()
    }

    /// Skewed data: a dense blob plus a few far-away stragglers.
    fn skewed_data(n_dense: usize) -> DataSummary {
        let mut pts = Vec::new();
        for i in 0..n_dense {
            let f = i as f64 / n_dense as f64;
            pts.push((f * 0.9, (i % 97) as f64 / 97.0 * 0.9));
        }
        pts.push((100.0, 100.0));
        pts.push((99.0, 98.0));
        summary(&pts)
    }

    #[test]
    fn respects_cost_threshold() {
        let data = skewed_data(1000);
        let bsp = BspPartitioner::build(100, 0.05, &data);
        // count per partition must be <= max_cost unless at granularity
        let mut counts = vec![0usize; bsp.num_partitions()];
        for (_, c) in &data {
            counts[bsp.partition_for_centroid(c)] += 1;
        }
        // the dense region must have been split into many partitions
        assert!(bsp.num_partitions() > 5, "only {} partitions", bsp.num_partitions());
        let over: Vec<usize> = counts.iter().copied().filter(|&c| c > 150).collect();
        assert!(over.is_empty(), "oversized partitions: {over:?}");
    }

    #[test]
    fn sparse_region_is_one_partition() {
        let data = skewed_data(1000);
        let bsp = BspPartitioner::build(100, 0.05, &data);
        // the two far-away points share a partition (cheap region)
        let a = bsp.partition_for_centroid(&Coord::new(100.0, 100.0));
        let b = bsp.partition_for_centroid(&Coord::new(99.0, 98.0));
        assert_eq!(a, b);
    }

    #[test]
    fn beats_grid_on_skewed_balance() {
        use crate::partitioner::GridPartitioner;
        let data = skewed_data(5000);
        let bsp = BspPartitioner::build(500, 0.02, &data);
        let grid =
            GridPartitioner::build((bsp.num_partitions() as f64).sqrt().ceil() as usize, &data);

        let count_for = |p: &dyn SpatialPartitioner| {
            let mut counts = vec![0usize; p.num_partitions()];
            for (_, c) in &data {
                counts[p.partition_for_centroid(c)] += 1;
            }
            counts
        };
        let bsp_max = count_for(&bsp).into_iter().max().unwrap();
        let grid_max = count_for(&grid).into_iter().max().unwrap();
        assert!(bsp_max < grid_max, "bsp max partition {bsp_max} should beat grid max {grid_max}");
        let s = balance_stats(&count_for(&bsp));
        assert!(s.non_empty >= 2);
    }

    #[test]
    fn total_assignment_covers_all_points() {
        let data = skewed_data(500);
        let bsp = BspPartitioner::build(50, 0.01, &data);
        for (env, c) in &data {
            let id = bsp.partition_for_centroid(c);
            assert!(id < bsp.num_partitions());
            assert!(bsp.cells()[id].extent.contains_envelope(env));
        }
    }

    #[test]
    fn leaf_bounds_tile_space() {
        let data = skewed_data(300);
        let bsp = BspPartitioner::build(30, 0.05, &data);
        let total_area: f64 = bsp.cells().iter().map(|c| c.bounds.area()).sum();
        let space_area = bsp.space.area();
        assert!(
            (total_area - space_area).abs() < space_area * 1e-6,
            "leaves {total_area} vs space {space_area}"
        );
    }

    #[test]
    fn max_corner_is_inside_a_leaf_bounds() {
        // an irrational-ish span makes `min + n*cell` land short of max
        let data = summary(&[(0.0, 0.0), (1.0, 1.0), (0.3, 0.7), (0.6, 0.2)]);
        let bsp = BspPartitioner::build(1, 0.3, &data);
        let corner = Coord::new(1.0, 1.0);
        let id = bsp.partition_for_centroid(&corner);
        assert!(
            bsp.cells()[id].bounds.contains_coord(&corner),
            "max corner {:?} outside leaf bounds {:?}",
            corner,
            bsp.cells()[id].bounds
        );
        // no leaf may overhang the space
        for c in bsp.cells() {
            assert!(c.bounds.max_x() <= bsp.space.max_x());
            assert!(c.bounds.max_y() <= bsp.space.max_y());
        }
    }

    #[test]
    fn single_partition_when_under_cost() {
        let data = summary(&[(0.0, 0.0), (1.0, 1.0)]);
        let bsp = BspPartitioner::build(100, 0.5, &data);
        assert_eq!(bsp.num_partitions(), 1);
        assert_eq!(bsp.name(), "bsp");
    }

    #[test]
    fn empty_data() {
        let bsp = BspPartitioner::build(10, 1.0, &Vec::new());
        assert_eq!(bsp.num_partitions(), 1);
        // arbitrary coordinates still map somewhere valid
        assert_eq!(bsp.partition_for_centroid(&Coord::new(5.0, -3.0)), 0);
    }

    #[test]
    fn histogram_cap_is_enforced() {
        // pathological side length far finer than the data span
        let data = summary(&[(0.0, 0.0), (1e6, 1e6)]);
        let bsp = BspPartitioner::build(1, 1e-6, &data);
        assert!(bsp.nx * bsp.ny <= super::MAX_HISTOGRAM_CELLS);
        assert!(bsp.num_partitions() >= 1);
    }
}
