//! Fixed-grid spatial partitioner (paper §2.1, "Grid Partitioner").

use super::{fit_extents, DataSummary, PartitionCell, SpatialPartitioner};
use serde::{Deserialize, Serialize};
use stark_geo::{Coord, Envelope};

/// Divides the data space into `dims × dims` rectangular cells of equal
/// size. Cell bounds are computed up-front; a single pass assigns each
/// record by locating its centroid's cell.
///
/// Serializable: a built grid is plain data (space + cell geometry), so
/// a driver can ship the whole partitioner to worker processes inside a
/// plan fragment and every worker routes records identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridPartitioner {
    dims: usize,
    space: Envelope,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<PartitionCell>,
}

impl GridPartitioner {
    /// Builds a grid over the given space without fitting extents;
    /// extents stay at the cell bounds intersected with nothing (empty)
    /// until [`GridPartitioner::build`] style fitting is applied.
    pub fn with_space(dims: usize, space: Envelope) -> Self {
        let dims = dims.max(1);
        assert!(!space.is_empty(), "grid space must be non-empty");
        let cell_w = positive(space.width() / dims as f64);
        let cell_h = positive(space.height() / dims as f64);
        let mut cells = Vec::with_capacity(dims * dims);
        for row in 0..dims {
            for col in 0..dims {
                let min_x = space.min_x() + col as f64 * cell_w;
                let min_y = space.min_y() + row as f64 * cell_h;
                // the last row/column must end exactly at the space's max
                // edge: accumulating `min + i*cell` rounds and can leave
                // `max_x/max_y` outside every cell's stated bounds
                let max_x = if col + 1 == dims { space.max_x().max(min_x) } else { min_x + cell_w };
                let max_y = if row + 1 == dims { space.max_y().max(min_y) } else { min_y + cell_h };
                let bounds = Envelope::from_bounds(min_x, min_y, max_x, max_y);
                cells.push(PartitionCell::new(row * dims + col, bounds));
            }
        }
        GridPartitioner { dims, space, cell_w, cell_h, cells }
    }

    /// Builds a `dims × dims` grid covering the data's bounding box and
    /// fits the per-partition extents from the data summary.
    pub fn build(dims: usize, data: &DataSummary) -> Self {
        let mut space = Envelope::empty();
        for (_, centroid) in data {
            space.expand_to_include(centroid);
        }
        if space.is_empty() {
            space = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        }
        let mut grid = Self::with_space(dims, space);
        let g = grid.clone();
        fit_extents(&mut grid.cells, |c| g.partition_for_centroid(c), data);
        grid
    }

    /// Cells per axis.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

fn positive(v: f64) -> f64 {
    if v > 0.0 {
        v
    } else {
        1.0
    }
}

impl SpatialPartitioner for GridPartitioner {
    fn num_partitions(&self) -> usize {
        self.cells.len()
    }

    fn partition_for_centroid(&self, c: &Coord) -> usize {
        let col = (((c.x - self.space.min_x()) / self.cell_w).floor() as i64)
            .clamp(0, self.dims as i64 - 1) as usize;
        let row = (((c.y - self.space.min_y()) / self.cell_h).floor() as i64)
            .clamp(0, self.dims as i64 - 1) as usize;
        row * self.dims + col
    }

    fn cells(&self) -> &[PartitionCell] {
        &self.cells
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stobject::STObject;

    fn summary(pts: &[(f64, f64)]) -> DataSummary {
        pts.iter()
            .map(|&(x, y)| {
                let c = Coord::new(x, y);
                (Envelope::from_point(c), c)
            })
            .collect()
    }

    #[test]
    fn cells_tile_the_space() {
        let g = GridPartitioner::with_space(4, Envelope::from_bounds(0.0, 0.0, 8.0, 8.0));
        assert_eq!(g.num_partitions(), 16);
        let area: f64 = g.cells().iter().map(|c| c.bounds.area()).sum();
        assert!((area - 64.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_locates_cell() {
        let g = GridPartitioner::with_space(2, Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        assert_eq!(g.partition_for_centroid(&Coord::new(1.0, 1.0)), 0);
        assert_eq!(g.partition_for_centroid(&Coord::new(9.0, 1.0)), 1);
        assert_eq!(g.partition_for_centroid(&Coord::new(1.0, 9.0)), 2);
        assert_eq!(g.partition_for_centroid(&Coord::new(9.0, 9.0)), 3);
    }

    #[test]
    fn out_of_space_centroids_clamp() {
        let g = GridPartitioner::with_space(2, Envelope::from_bounds(0.0, 0.0, 10.0, 10.0));
        assert_eq!(g.partition_for_centroid(&Coord::new(-5.0, -5.0)), 0);
        assert_eq!(g.partition_for_centroid(&Coord::new(100.0, 100.0)), 3);
    }

    #[test]
    fn every_point_lands_in_its_cell_bounds() {
        let data = summary(&[(0.5, 0.5), (3.3, 7.2), (9.9, 9.9), (5.0, 5.0)]);
        let g = GridPartitioner::build(3, &data);
        for (env, c) in &data {
            let id = g.partition_for_centroid(c);
            // the centroid is inside (or on the boundary of) its cell
            assert!(g.cells()[id].bounds.buffered(1e-9).contains_coord(c));
            // and the extent covers the record MBR
            assert!(g.cells()[id].extent.contains_envelope(env));
        }
    }

    #[test]
    fn extents_track_extended_objects() {
        // a polygon whose centroid is in one cell but which spills over
        let poly = STObject::from_wkt("POLYGON((4 4, 12 4, 12 6, 4 6, 4 4))").unwrap();
        let data: DataSummary = vec![(poly.envelope(), poly.centroid())];
        let g = GridPartitioner::build(2, &data);
        let id = g.partition_of(&poly);
        assert!(g.cells()[id].extent.contains_envelope(&poly.envelope()));
        // the extent exceeds the cell bounds — overlapping partitions
        assert!(!g.cells()[id].bounds.contains_envelope(&g.cells()[id].extent));
    }

    #[test]
    fn degenerate_single_point_data() {
        let data = summary(&[(5.0, 5.0), (5.0, 5.0)]);
        let g = GridPartitioner::build(4, &data);
        let id = g.partition_for_centroid(&Coord::new(5.0, 5.0));
        assert!(id < g.num_partitions());
        assert!(!g.cells()[id].extent.is_empty());
    }

    #[test]
    fn max_corner_is_inside_the_last_cell_bounds() {
        // 1/3 is inexact: 0 + 3*(1/3) = 0.9999999999999998 < 1.0, so the
        // accumulated last-column bound used to exclude the space's max
        // corner from every cell
        let g = GridPartitioner::with_space(3, Envelope::from_bounds(0.0, 0.0, 1.0, 1.0));
        let corner = Coord::new(1.0, 1.0);
        let id = g.partition_for_centroid(&corner);
        assert_eq!(id, g.num_partitions() - 1);
        assert!(
            g.cells()[id].bounds.contains_coord(&corner),
            "max corner {:?} outside its cell bounds {:?}",
            corner,
            g.cells()[id].bounds
        );
        // every last-row/column cell ends exactly on the space edge
        for c in g.cells() {
            assert!(c.bounds.max_x() <= 1.0 && c.bounds.max_y() <= 1.0);
        }
        assert_eq!(g.cells().last().unwrap().bounds.max_x(), 1.0);
        assert_eq!(g.cells().last().unwrap().bounds.max_y(), 1.0);
    }

    #[test]
    fn dims_clamped_to_one() {
        let g = GridPartitioner::with_space(0, Envelope::from_bounds(0.0, 0.0, 1.0, 1.0));
        assert_eq!(g.num_partitions(), 1);
        assert_eq!(g.name(), "grid");
    }
}
