//! Temporal range partitioner — the extension the paper flags as missing
//! ("in its current version, STARK only considers the spatial component
//! for partitioning", §2.1).
//!
//! Records are bucketed by the *start* of their temporal component into
//! equal-width time slices; untimed records go to a dedicated bucket.
//! Combined with the per-partition [`TemporalExtent`]s fitted by
//! [`SpatialRdd::partition_by`](crate::SpatialRdd::partition_by), timed
//! filters then prune whole time slices.

use super::{PartitionCell, SpatialPartitioner};
use crate::stobject::STObject;
use crate::temporal::Temporal;
use stark_geo::{Coord, Envelope};

/// Equal-width temporal range partitioner.
///
/// Implements [`SpatialPartitioner`] so it plugs into the same
/// `partition_by` machinery; its cells carry no meaningful spatial bounds
/// (pruning relies on the fitted extents, which are always sound).
#[derive(Debug, Clone)]
pub struct TemporalPartitioner {
    start: i64,
    end: i64,
    buckets: usize,
    cells: Vec<PartitionCell>,
}

impl TemporalPartitioner {
    /// Builds `buckets` equal time slices over the observed range of
    /// `times` plus one bucket for untimed records (the last partition).
    pub fn build(buckets: usize, times: &[Option<Temporal>]) -> Self {
        let buckets = buckets.max(1);
        let mut start = i64::MAX;
        let mut end = i64::MIN;
        for t in times.iter().flatten() {
            start = start.min(t.start());
            end = end.max(match t.end_exclusive() {
                Some(e) => e,
                None => t.start(),
            });
        }
        if start > end {
            // no timed records at all
            start = 0;
            end = 1;
        }
        if end == start {
            end = start + 1;
        }
        let cells = (0..=buckets).map(|i| PartitionCell::new(i, Envelope::empty())).collect();
        TemporalPartitioner { start, end, buckets, cells }
    }

    /// The bucket index for a temporal value.
    fn bucket_of(&self, t: &Temporal) -> usize {
        let span = (self.end - self.start).max(1) as i128;
        let offset = (t.start().saturating_sub(self.start)).max(0) as i128;
        let b = (offset * self.buckets as i128 / span) as usize;
        b.min(self.buckets - 1)
    }

    /// The dedicated partition for untimed records.
    pub fn untimed_partition(&self) -> usize {
        self.buckets
    }

    /// The covered time range.
    pub fn time_range(&self) -> (i64, i64) {
        (self.start, self.end)
    }
}

impl SpatialPartitioner for TemporalPartitioner {
    fn num_partitions(&self) -> usize {
        self.buckets + 1
    }

    /// Centroids carry no time; everything without a temporal component
    /// lands in the untimed bucket.
    fn partition_for_centroid(&self, _c: &Coord) -> usize {
        self.untimed_partition()
    }

    fn cells(&self) -> &[PartitionCell] {
        &self.cells
    }

    fn name(&self) -> &'static str {
        "temporal"
    }

    fn partition_of(&self, obj: &STObject) -> usize {
        match obj.time() {
            Some(t) => self.bucket_of(t),
            None => self.untimed_partition(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::STPredicate;
    use crate::spatial_rdd::SpatialRddExt;
    use stark_engine::Context;
    use std::sync::Arc;

    #[test]
    fn buckets_cover_range_in_order() {
        let times: Vec<Option<Temporal>> =
            (0..100).map(|i| Some(Temporal::instant(i * 10))).collect();
        let p = TemporalPartitioner::build(4, &times);
        assert_eq!(p.num_partitions(), 5);
        assert_eq!(p.time_range(), (0, 990));
        let b0 = p.partition_of(&STObject::point_at(0.0, 0.0, 0));
        let b_last = p.partition_of(&STObject::point_at(0.0, 0.0, 989));
        assert_eq!(b0, 0);
        assert_eq!(b_last, 3);
        // monotone bucketing
        let mut prev = 0;
        for t in (0..990).step_by(10) {
            let b = p.partition_of(&STObject::point_at(0.0, 0.0, t));
            assert!(b >= prev);
            assert!(b < 4);
            prev = b;
        }
    }

    #[test]
    fn untimed_records_get_their_own_bucket() {
        let times = vec![Some(Temporal::instant(5)), None];
        let p = TemporalPartitioner::build(3, &times);
        assert_eq!(p.partition_of(&STObject::point(0.0, 0.0)), p.untimed_partition());
        assert_ne!(p.partition_of(&STObject::point_at(0.0, 0.0, 5)), p.untimed_partition());
    }

    #[test]
    fn degenerate_inputs() {
        // no timed records
        let p = TemporalPartitioner::build(4, &[None, None]);
        assert_eq!(p.num_partitions(), 5);
        // a single instant
        let p = TemporalPartitioner::build(4, &[Some(Temporal::instant(42))]);
        assert_eq!(p.partition_of(&STObject::point_at(0.0, 0.0, 42)), 0);
        // out-of-range times clamp
        let b = p.partition_of(&STObject::point_at(0.0, 0.0, 1_000_000));
        assert!(b < p.num_partitions());
    }

    #[test]
    fn temporal_pruning_through_the_filter_path() {
        let ctx = Context::with_parallelism(4);
        // events spread over time but all in the same small area
        let data: Vec<(STObject, u32)> = (0..400)
            .map(|i| (STObject::point_at((i % 20) as f64, (i / 20) as f64, i as i64 * 10), i))
            .collect();
        let rdd = ctx.parallelize(data, 8).spatial();
        let times: Vec<Option<Temporal>> =
            rdd.rdd().collect().iter().map(|(o, _)| o.time().copied()).collect();
        let part = rdd.partition_by(Arc::new(TemporalPartitioner::build(8, &times)));

        // a query window covering all space but a narrow time slice
        let query =
            STObject::from_wkt_interval("POLYGON((-1 -1, 21 -1, 21 21, -1 21, -1 -1))", 0, 500)
                .unwrap();
        let before = ctx.metrics();
        let hits = part.filter(&query, STPredicate::ContainedBy).count();
        let delta = ctx.metrics().diff(&before);
        assert_eq!(hits, 50, "events with t in [0, 500)");
        assert!(
            delta.partitions_pruned >= 6,
            "time slices outside the window must be pruned, got {}",
            delta.partitions_pruned
        );
    }

    #[test]
    fn untimed_query_prunes_timed_buckets() {
        let ctx = Context::with_parallelism(2);
        let mut data: Vec<(STObject, u32)> =
            (0..100).map(|i| (STObject::point_at(1.0, 1.0, i as i64), i)).collect();
        data.push((STObject::point(1.0, 1.0), 100)); // one untimed record
        let rdd = ctx.parallelize(data, 4).spatial();
        let times: Vec<Option<Temporal>> =
            rdd.rdd().collect().iter().map(|(o, _)| o.time().copied()).collect();
        let part = rdd.partition_by(Arc::new(TemporalPartitioner::build(4, &times)));

        let query = STObject::from_wkt("POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap();
        let before = ctx.metrics();
        let hits = part.filter(&query, STPredicate::ContainedBy).count();
        let delta = ctx.metrics().diff(&before);
        assert_eq!(hits, 1, "only the untimed record matches an untimed query");
        assert!(delta.partitions_pruned >= 4, "all timed buckets pruned");
    }
}
