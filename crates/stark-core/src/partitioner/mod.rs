//! Spatial partitioners (paper §2.1).
//!
//! A spatial partitioner assigns every record to exactly one partition by
//! the *centroid* of its geometry. Because non-point geometries can stick
//! out of their partition's rectangular bounds, each partition carries an
//! additional **extent** — the union of the MBRs of everything assigned
//! to it — and query execution prunes partitions using the extent, never
//! the bounds. This is STARK's no-replication alternative to the
//! duplicate-and-prune scheme used by other systems.

mod bsp;
mod grid;
mod temporal;

pub use bsp::BspPartitioner;
pub use grid::GridPartitioner;
pub use temporal::TemporalPartitioner;

use crate::stobject::STObject;
use serde::{Deserialize, Serialize};
use stark_geo::{Coord, Envelope};

/// One spatial partition: its nominal rectangular `bounds` and the
/// `extent` actually covered by assigned records' MBRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionCell {
    pub id: usize,
    /// The region of space whose centroids map to this partition.
    pub bounds: Envelope,
    /// Union of member MBRs; pruning decisions use this. Empty when the
    /// partition received no records.
    pub extent: Envelope,
}

impl PartitionCell {
    pub fn new(id: usize, bounds: Envelope) -> Self {
        PartitionCell { id, bounds, extent: Envelope::empty() }
    }
}

/// A centroid-based spatial partitioner with per-partition extents.
pub trait SpatialPartitioner: Send + Sync {
    /// Number of partitions produced.
    fn num_partitions(&self) -> usize;

    /// Target partition for a centroid. Total: out-of-bounds centroids
    /// clamp to the nearest cell.
    fn partition_for_centroid(&self, c: &Coord) -> usize;

    /// Partition metadata (bounds and extents).
    fn cells(&self) -> &[PartitionCell];

    /// Short human-readable partitioner name (for benchmark tables).
    fn name(&self) -> &'static str;

    /// Target partition for a record (assignment by centroid, §2.1).
    fn partition_of(&self, obj: &STObject) -> usize {
        self.partition_for_centroid(&obj.centroid())
    }

    /// Fallible assignment: rejects NaN/infinite centroids with a typed
    /// error instead of silently routing them (a NaN coordinate fails
    /// every cell comparison and used to fall through to partition 0,
    /// corrupting that partition's extent). Finite out-of-space centroids
    /// still clamp to the nearest cell, as before.
    fn try_partition_for_centroid(&self, c: &Coord) -> Result<usize, crate::error::StarkError> {
        if !c.is_finite() {
            return Err(crate::error::StarkError::NonFiniteCentroid { x: c.x, y: c.y });
        }
        Ok(self.partition_for_centroid(c))
    }

    /// Fallible record assignment; see [`try_partition_for_centroid`]
    /// (SpatialPartitioner::try_partition_for_centroid).
    fn try_partition_of(&self, obj: &STObject) -> Result<usize, crate::error::StarkError> {
        self.try_partition_for_centroid(&obj.centroid())
    }
}

/// Summary statistics a partitioner is built from: one `(mbr, centroid)`
/// pair per record. Gathering this is a single narrow pass over the data.
pub type DataSummary = Vec<(Envelope, Coord)>;

/// Folds every record's MBR into the extent of its assigned cell.
/// Shared post-construction step for all partitioners.
pub(crate) fn fit_extents(
    cells: &mut [PartitionCell],
    assign: impl Fn(&Coord) -> usize,
    data: &[(Envelope, Coord)],
) {
    for (env, centroid) in data {
        let id = assign(centroid);
        cells[id].extent.expand_to_include_envelope(env);
    }
}

/// Load-balance statistics over the non-empty partitions of a
/// partitioning; used by the skew/balance experiment (A2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceStats {
    pub partitions: usize,
    pub non_empty: usize,
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Population standard deviation of per-partition record counts
    /// (all partitions, including empty ones).
    pub std_dev: f64,
}

/// Computes balance statistics from per-partition record counts.
pub fn balance_stats(counts: &[usize]) -> BalanceStats {
    let n = counts.len();
    if n == 0 {
        return BalanceStats {
            partitions: 0,
            non_empty: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let total: usize = counts.iter().sum();
    let mean = total as f64 / n as f64;
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    BalanceStats {
        partitions: n,
        non_empty: counts.iter().filter(|&&c| c > 0).count(),
        min: counts.iter().copied().min().unwrap_or(0),
        max: counts.iter().copied().max().unwrap_or(0),
        mean,
        std_dev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_stats_basics() {
        let s = balance_stats(&[10, 0, 20, 10]);
        assert_eq!(s.partitions, 4);
        assert_eq!(s.non_empty, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 20);
        assert!((s.mean - 10.0).abs() < 1e-9);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn balance_stats_empty() {
        let s = balance_stats(&[]);
        assert_eq!(s.partitions, 0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn uniform_counts_have_zero_deviation() {
        let s = balance_stats(&[5, 5, 5, 5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }
}
