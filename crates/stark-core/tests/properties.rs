//! Property-based tests for the STARK operator layer: the combined
//! predicate semantics (paper eqs. 1–3), partitioner invariants, and
//! operator-vs-oracle equivalence on randomised datasets.

use proptest::prelude::*;
use stark::{
    BspPartitioner, GridPartitioner, JoinConfig, STObject, STPredicate, SpatialPartitioner,
    SpatialRddExt, Temporal,
};
use stark_engine::Context;
use stark_geo::{Coord, DistanceFn, Envelope, Geometry};
use std::sync::Arc;

fn temporal_strategy() -> impl Strategy<Value = Option<Temporal>> {
    prop_oneof![
        Just(None),
        (-1000i64..1000).prop_map(|t| Some(Temporal::instant(t))),
        (-1000i64..1000, 0i64..500).prop_map(|(s, len)| Some(Temporal::interval(s, s + len))),
        (-1000i64..1000).prop_map(|s| Some(Temporal::from_instant_on(s))),
    ]
}

fn stobject_strategy() -> impl Strategy<Value = STObject> {
    let geom = prop_oneof![
        ((-100.0f64..100.0), (-100.0f64..100.0)).prop_map(|(x, y)| Geometry::point(x, y)),
        ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..40.0), (0.1f64..40.0))
            .prop_map(|(x, y, w, h)| Geometry::rect(x, y, x + w, y + h)),
    ];
    (geom, temporal_strategy()).prop_map(|(g, t)| match t {
        Some(t) => STObject::with_time(g, t),
        None => STObject::new(g),
    })
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(((-50.0f64..50.0), (-50.0f64..50.0)), 1..max)
}

/// Lon/lat points clustered in the polar caps (|lat| > 85°), where the
/// old planar Haversine pruning bound over-estimated longitude gaps.
fn polar_points_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(
        ((-180.0f64..180.0), prop_oneof![85.0f64..90.0, -90.0f64..-85.0]),
        1..max,
    )
}

/// The paper's formal definition, transcribed literally.
fn formal_predicate(
    spatial: impl Fn(&Geometry, &Geometry) -> bool,
    temporal: impl Fn(&Temporal, &Temporal) -> bool,
    o: &STObject,
    p: &STObject,
) -> bool {
    let clause1 = spatial(o.geo(), p.geo());
    let clause2 = o.time().is_none() && p.time().is_none();
    let clause3 = match (o.time(), p.time()) {
        (Some(a), Some(b)) => temporal(a, b),
        _ => false,
    };
    clause1 && (clause2 || clause3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn combined_predicates_match_formal_definition(
        o in stobject_strategy(),
        p in stobject_strategy(),
    ) {
        prop_assert_eq!(
            o.intersects(&p),
            formal_predicate(Geometry::intersects, Temporal::intersects, &o, &p)
        );
        prop_assert_eq!(
            o.contains(&p),
            formal_predicate(Geometry::contains, Temporal::contains, &o, &p)
        );
        prop_assert_eq!(o.contained_by(&p), p.contains(&o));
    }

    #[test]
    fn filter_equals_driver_side_scan(
        pts in points_strategy(120),
        (qx, qy, qw, qh) in ((-60.0f64..60.0), (-60.0f64..60.0), (1.0f64..60.0), (1.0f64..60.0)),
    ) {
        let ctx = Context::with_parallelism(3);
        let data: Vec<(STObject, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i))
            .collect();
        let rdd = ctx.parallelize(data.clone(), 5).spatial();
        let query = STObject::new(Geometry::rect(qx, qy, qx + qw, qy + qh));

        for pred in [STPredicate::Intersects, STPredicate::ContainedBy,
                     STPredicate::within_distance(5.0)] {
            let mut got: Vec<usize> = rdd
                .filter(&query, pred)
                .collect()
                .into_iter()
                .map(|(_, i)| i)
                .collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = data
                .iter()
                .filter(|(o, _)| pred.eval(o, &query))
                .map(|(_, i)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "predicate {}", pred);
        }
    }

    #[test]
    fn partitioners_are_total_and_extent_sound(
        pts in points_strategy(200),
        dims in 1usize..6,
        max_cost in 5usize..50,
    ) {
        let summary: Vec<(Envelope, Coord)> = pts
            .iter()
            .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
            .collect();
        let partitioners: Vec<Arc<dyn SpatialPartitioner>> = vec![
            Arc::new(GridPartitioner::build(dims, &summary)),
            Arc::new(BspPartitioner::build(max_cost, 1.0, &summary)),
        ];
        for p in partitioners {
            for (env, c) in &summary {
                let id = p.partition_for_centroid(c);
                prop_assert!(id < p.num_partitions(), "{} out of range", p.name());
                prop_assert!(
                    p.cells()[id].extent.contains_envelope(env),
                    "{} extent must cover member", p.name()
                );
            }
        }
    }

    #[test]
    fn partitioned_filter_equals_unpartitioned(
        pts in points_strategy(150),
        dims in 1usize..5,
        (qx, qy) in ((-60.0f64..60.0), (-60.0f64..60.0)),
    ) {
        let ctx = Context::with_parallelism(3);
        let data: Vec<(STObject, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i))
            .collect();
        let rdd = ctx.parallelize(data, 4).spatial();
        let query = STObject::new(Geometry::rect(qx, qy, qx + 30.0, qy + 30.0));

        let baseline = rdd.filter(&query, STPredicate::ContainedBy).count();
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(dims, &rdd.summarize())));
        prop_assert_eq!(part.filter(&query, STPredicate::ContainedBy).count(), baseline);
        prop_assert_eq!(part.live_index(4).contained_by(&query).count(), baseline);
    }

    #[test]
    fn knn_matches_sorted_scan(
        pts in points_strategy(150),
        k in 0usize..20,
        (qx, qy) in ((-60.0f64..60.0), (-60.0f64..60.0)),
    ) {
        let ctx = Context::with_parallelism(3);
        let data: Vec<(STObject, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i))
            .collect();
        let rdd = ctx.parallelize(data.clone(), 6).spatial();
        let q = STObject::point(qx, qy);

        let got = rdd.knn(&q, k, DistanceFn::Euclidean);
        let mut expect: Vec<f64> = data
            .iter()
            .map(|(o, _)| o.distance(&q, DistanceFn::Euclidean))
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g.0 - e).abs() < 1e-9);
        }
        // indexed path agrees too
        let idx = rdd.live_index(4).knn(&q, k, DistanceFn::Euclidean);
        prop_assert_eq!(idx.len(), got.len());
        for (g, e) in idx.iter().zip(&expect) {
            prop_assert!((g.0 - e).abs() < 1e-9);
        }
    }

    #[test]
    fn self_join_equals_reference(
        pts in points_strategy(60),
        dims in 1usize..4,
    ) {
        let ctx = Context::with_parallelism(3);
        let data: Vec<(STObject, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i))
            .collect();
        let rdd = ctx.parallelize(data.clone(), 3).spatial();
        let pred = STPredicate::within_distance(10.0);

        let mut expect: Vec<(usize, usize)> = Vec::new();
        for (lo, li) in &data {
            for (ro, ri) in &data {
                if pred.eval(lo, ro) {
                    expect.push((*li, *ri));
                }
            }
        }
        expect.sort_unstable();

        let part = rdd.partition_by(Arc::new(GridPartitioner::build(dims, &rdd.summarize())));
        for cfg in [JoinConfig::nested_loop(), JoinConfig::live_index(4)] {
            let mut got: Vec<(usize, usize)> = part
                .self_join(pred, cfg)
                .collect()
                .into_iter()
                .map(|((_, a), (_, b))| (a, b))
                .collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn polar_queries_agree_with_pruning_on_and_off(
        pts in polar_points_strategy(100),
        dims in 2usize..6,
        (qlon, qlat) in ((-180.0f64..180.0), 85.0f64..90.0),
        radius_km in 10.0f64..2000.0,
        k in 1usize..8,
    ) {
        // withinDistance and kNN at |lat| > 85° must return the same
        // records whether partition pruning is active (spatially
        // partitioned + masked, live-indexed) or not (plain filter).
        // The old scalar planar bound turned polar longitude-degree
        // gaps into metres and pruned partitions that still matched.
        let ctx = Context::with_parallelism(3);
        let data: Vec<(STObject, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(lon, lat))| (STObject::point(lon, lat), i))
            .collect();
        let rdd = ctx.parallelize(data, 4).spatial();
        let q = STObject::point(qlon, qlat);
        let max_dist = radius_km * 1000.0;

        let ids = |r: stark::SpatialRdd<usize>| {
            let mut v: Vec<usize> = r.collect().into_iter().map(|(_, i)| i).collect();
            v.sort_unstable();
            v
        };
        let unpruned = ids(rdd.within_distance(&q, max_dist, DistanceFn::Haversine));
        let part = rdd.partition_by(Arc::new(GridPartitioner::build(dims, &rdd.summarize())));
        let pruned = ids(part.within_distance(&q, max_dist, DistanceFn::Haversine));
        prop_assert_eq!(&pruned, &unpruned, "mask pruning changed withinDistance results");

        let mut indexed: Vec<usize> = part
            .live_index(4)
            .within_distance(&q, max_dist, DistanceFn::Haversine)
            .collect()
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        indexed.sort_unstable();
        prop_assert_eq!(&indexed, &unpruned, "live index changed withinDistance results");

        let k = k.min(pts.len());
        let plain_knn = rdd.knn(&q, k, DistanceFn::Haversine);
        let part_knn = part.knn(&q, k, DistanceFn::Haversine);
        let index_knn = part.live_index(4).knn(&q, k, DistanceFn::Haversine);
        prop_assert_eq!(plain_knn.len(), k);
        for (a, b) in plain_knn.iter().zip(&part_knn) {
            prop_assert!((a.0 - b.0).abs() < 1e-6, "partitioned kNN distance diverged");
        }
        for (a, b) in plain_knn.iter().zip(&index_knn) {
            prop_assert!((a.0 - b.0).abs() < 1e-6, "indexed kNN distance diverged");
        }
    }

    #[test]
    fn pruning_mask_is_sound(
        pts in points_strategy(150),
        dims in 2usize..6,
        (qx, qy, qs) in ((-60.0f64..60.0), (-60.0f64..60.0), (1.0f64..40.0)),
    ) {
        // Every element matching the predicate must live in an unmasked
        // partition — pruning may only remove non-matching partitions.
        let summary: Vec<(Envelope, Coord)> = pts
            .iter()
            .map(|&(x, y)| (Envelope::from_point(Coord::new(x, y)), Coord::new(x, y)))
            .collect();
        let grid = GridPartitioner::build(dims, &summary);
        let query = STObject::new(Geometry::rect(qx, qy, qx + qs, qy + qs));

        for pred in [STPredicate::Intersects, STPredicate::ContainedBy,
                     STPredicate::Contains, STPredicate::within_distance(3.0)] {
            for &(x, y) in &pts {
                let o = STObject::point(x, y);
                if pred.eval(&o, &query) {
                    let cell = &grid.cells()[grid.partition_of(&o)];
                    prop_assert!(
                        pred.partition_may_match(&cell.extent, &query),
                        "pruned a matching element under {}", pred
                    );
                }
            }
        }
    }
}
