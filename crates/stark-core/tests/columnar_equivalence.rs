//! Columnar-vs-row equivalence and the NaN hardening regressions.
//!
//! The columnar filter path ([`EngineConfig::columnar_enabled`]) must be
//! **byte-identical** to the row path on every pipeline shape the S12
//! ablation measures (S1 spatial filter, S2 temporal filter, S5
//! withinDistance) — including chained filters, spatially partitioned
//! inputs, and runs under the seeded fault injector. These tests compare
//! the two paths on randomised datasets.

use proptest::prelude::*;
use stark::{
    GridPartitioner, STObject, STPredicate, SpatialPartitioner, SpatialRddExt, StarkError, Temporal,
};
use stark_engine::{Context, EngineConfig, FaultInjector, TaskErrorKind};
use stark_geo::{Coord, DistanceFn, Geometry};
use std::sync::Arc;

type Row = (STObject, u32);

fn make_ctx(columnar: bool, injector: Option<Arc<FaultInjector>>) -> Context {
    Context::with_config(EngineConfig {
        parallelism: 4,
        default_partitions: 4,
        columnar_enabled: columnar,
        max_task_retries: 3,
        fault_injector: injector,
        ..EngineConfig::default()
    })
}

/// Runs `chain` as successive `filter` calls on one engine configuration
/// and materialises the result.
fn run_chain(
    columnar: bool,
    injector: Option<Arc<FaultInjector>>,
    data: &[Row],
    chain: &[(STPredicate, STObject)],
    partitioned: bool,
) -> Vec<Row> {
    let ctx = make_ctx(columnar, injector);
    let mut s = ctx.parallelize(data.to_vec(), 4).spatial();
    if partitioned {
        s = s.partition_by(Arc::new(GridPartitioner::build(3, &s.summarize())));
    }
    for (pred, q) in chain {
        s = s.filter(q, *pred);
    }
    s.collect()
}

fn assert_paths_agree(data: &[Row], chain: &[(STPredicate, STObject)], partitioned: bool) {
    let row = run_chain(false, None, data, chain, partitioned);
    let col = run_chain(true, None, data, chain, partitioned);
    assert_eq!(col, row, "columnar and row paths diverged (partitioned={partitioned})");
    // and under injected transient faults (PR 3 chaos harness): retries
    // must reproduce the same bytes on both paths
    let chaos = || Some(Arc::new(FaultInjector::transient(0xC0_1A12, 0.15)));
    let row_chaos = run_chain(false, chaos(), data, chain, partitioned);
    let col_chaos = run_chain(true, chaos(), data, chain, partitioned);
    assert_eq!(row_chaos, row, "row path not fault-transparent");
    assert_eq!(col_chaos, row, "columnar path not fault-transparent");
}

fn temporal_strategy() -> impl Strategy<Value = Option<Temporal>> {
    prop_oneof![
        Just(None),
        (-500i64..500).prop_map(|t| Some(Temporal::instant(t))),
        (-500i64..500, 0i64..300).prop_map(|(s, l)| Some(Temporal::interval(s, s + l))),
        (-500i64..500).prop_map(|s| Some(Temporal::from_instant_on(s))),
    ]
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    let geom = prop_oneof![
        ((-60.0f64..60.0), (-60.0f64..60.0)).prop_map(|(x, y)| Geometry::point(x, y)),
        ((-60.0f64..60.0), (-60.0f64..60.0)).prop_map(|(x, y)| Geometry::point(x, y)),
        ((-60.0f64..60.0), (-60.0f64..60.0)).prop_map(|(x, y)| Geometry::point(x, y)),
        ((-60.0f64..60.0), (-60.0f64..60.0), (0.1f64..25.0), (0.1f64..25.0))
            .prop_map(|(x, y, w, h)| Geometry::rect(x, y, x + w, y + h)),
    ];
    let row = (geom, temporal_strategy()).prop_map(|(g, t)| match t {
        Some(t) => STObject::with_time(g, t),
        None => STObject::new(g),
    });
    proptest::collection::vec(row, 1..max)
        .prop_map(|os| os.into_iter().enumerate().map(|(i, o)| (o, i as u32)).collect())
}

/// An S1/S2-shaped rectangle query (optionally timed) plus an off-grid
/// triangle so non-envelope-decidable queries are exercised too.
fn query_strategy() -> impl Strategy<Value = STObject> {
    let rect = ((-50.0f64..20.0), (-50.0f64..20.0), (5.0f64..60.0), (5.0f64..60.0))
        .prop_map(|(x, y, w, h)| Geometry::rect(x, y, x + w, y + h));
    let tri = ((-50.0f64..20.0), (-50.0f64..20.0), (5.0f64..60.0)).prop_map(|(x, y, s)| {
        Geometry::from_wkt(&format!("POLYGON(({x} {y}, {} {y}, {x} {}, {x} {y}))", x + s, y + s))
            .unwrap()
    });
    let geom = prop_oneof![rect, tri];
    (geom, temporal_strategy()).prop_map(|(g, t)| match t {
        Some(t) => STObject::with_time(g, t),
        None => STObject::new(g),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// S1/S2 shape: one topological filter, unpartitioned and
    /// grid-partitioned, plain and under chaos.
    #[test]
    fn single_filter_equivalence(
        data in rows_strategy(60),
        q in query_strategy(),
        pred_idx in 0usize..3,
    ) {
        let pred = [STPredicate::Intersects, STPredicate::Contains, STPredicate::ContainedBy]
            [pred_idx];
        let chain = vec![(pred, q)];
        assert_paths_agree(&data, &chain, false);
        assert_paths_agree(&data, &chain, true);
    }

    /// S5 shape: withinDistance under each metric.
    #[test]
    fn within_distance_equivalence(
        data in rows_strategy(60),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        d in 0.0f64..80.0,
        dist_idx in 0usize..3,
    ) {
        let dist_fn = [DistanceFn::Euclidean, DistanceFn::Haversine, DistanceFn::Manhattan]
            [dist_idx];
        // Haversine distances are metres; scale the cutoff up so some rows match
        let max_dist = if matches!(dist_fn, DistanceFn::Haversine) { d * 100_000.0 } else { d };
        let chain = vec![(
            STPredicate::WithinDistance { max_dist, dist_fn },
            STObject::point(qx, qy),
        )];
        assert_paths_agree(&data, &chain, false);
    }

    /// Fused chains: filter→filter→withinDistance narrowing one bitmap.
    #[test]
    fn chained_filter_equivalence(
        data in rows_strategy(60),
        wide in query_strategy(),
        narrow in query_strategy(),
        d in 1.0f64..60.0,
    ) {
        let chain = vec![
            (STPredicate::ContainedBy, wide),
            (STPredicate::Intersects, narrow),
            (
                STPredicate::WithinDistance { max_dist: d, dist_fn: DistanceFn::Euclidean },
                STObject::point(0.0, 0.0),
            ),
        ];
        assert_paths_agree(&data, &chain, false);
        assert_paths_agree(&data, &chain, true);
    }

    /// knn sorts must be deterministic with NaN distances in play
    /// (`total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`).
    #[test]
    fn knn_is_deterministic_with_nan_distances(
        pts in proptest::collection::vec(((-20.0f64..20.0), (-20.0f64..20.0)), 5..40),
        n_nan in 1usize..5,
        k in 1usize..10,
    ) {
        let mut data: Vec<Row> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (STObject::point(x, y), i as u32))
            .collect();
        for i in 0..n_nan {
            data.push((STObject::point(f64::NAN, i as f64), 1000 + i as u32));
        }
        let ctx = make_ctx(true, None);
        let s = ctx.parallelize(data, 4).spatial();
        let q = STObject::point(1.0, 1.0);
        let a = s.knn(&q, k, DistanceFn::Euclidean);
        let b = s.knn(&q, k, DistanceFn::Euclidean);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(x.0.total_cmp(&y.0).is_eq() && x.1 .1 == y.1 .1,
                "knn with NaN distances is not deterministic");
        }
        // finite neighbours sort ascending and ahead of any NaN
        let finite: Vec<f64> = a.iter().map(|e| e.0).take_while(|d| d.is_finite()).collect();
        prop_assert!(finite.windows(2).all(|w| w[0] <= w[1]));
        let n_finite_expected = k.min(pts.len());
        prop_assert!(finite.len() >= n_finite_expected.min(a.len()),
            "NaN distances displaced finite neighbours: {:?}", a.iter().map(|e| e.0).collect::<Vec<_>>());
    }
}

/// Rows whose centroid or envelope is non-finite must flow through the
/// columnar path's refinement lane byte-identically (unpartitioned — the
/// partitioners now reject them, see below).
#[test]
fn non_finite_rows_agree_on_both_paths() {
    let mut data: Vec<Row> =
        (0..20).map(|i| (STObject::point((i % 5) as f64, (i / 5) as f64), i as u32)).collect();
    data.push((STObject::point(f64::NAN, 2.0), 100));
    data.push((STObject::point(1.0, f64::INFINITY), 101));
    let q = STObject::new(Geometry::rect(0.5, -0.5, 3.5, 2.5));
    for pred in [STPredicate::Intersects, STPredicate::Contains, STPredicate::ContainedBy] {
        assert_paths_agree(&data, &[(pred, q.clone())], false);
    }
    for dist_fn in [DistanceFn::Euclidean, DistanceFn::Haversine, DistanceFn::Manhattan] {
        let pred = STPredicate::WithinDistance { max_dist: 2.0, dist_fn };
        assert_paths_agree(&data, &[(pred, STObject::point(1.0, 1.0))], false);
    }
}

/// The columnar metrics move only when the columnar path runs.
#[test]
fn columnar_metrics_report_batches_and_rows() {
    let data: Vec<Row> =
        (0..80).map(|i| (STObject::point((i % 10) as f64, (i / 10) as f64), i as u32)).collect();
    let q = STObject::new(Geometry::rect(1.0, 1.0, 6.0, 6.0));

    let ctx = make_ctx(true, None);
    let before = ctx.metrics();
    let n = ctx.parallelize(data.clone(), 4).spatial().filter(&q, STPredicate::ContainedBy).count();
    let delta = ctx.metrics().diff(&before);
    assert!(n > 0);
    assert!(delta.columnar_batches_built > 0, "no batches built: {delta:?}");
    assert_eq!(delta.rows_scanned_columnar, 80, "every row scanned columnar once");

    let ctx = make_ctx(false, None);
    let before = ctx.metrics();
    let m = ctx.parallelize(data, 4).spatial().filter(&q, STPredicate::ContainedBy).count();
    let delta = ctx.metrics().diff(&before);
    assert_eq!(m, n);
    assert_eq!(delta.columnar_batches_built, 0);
    assert_eq!(delta.rows_scanned_columnar, 0);
}

/// Satellite regression: NaN / infinite centroids are rejected with a
/// typed error at partition time instead of silently landing in
/// partition 0 and corrupting its extent.
#[test]
fn nan_centroid_is_rejected_by_partitioners() {
    let finite: Vec<Row> =
        (0..20).map(|i| (STObject::point(i as f64, i as f64), i as u32)).collect();
    let grid = Arc::new(GridPartitioner::build(
        3,
        &finite.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect(),
    ));

    // the trait-level fallible assignment is typed
    let nan_obj = STObject::point(f64::NAN, 1.0);
    match grid.try_partition_of(&nan_obj) {
        Err(StarkError::NonFiniteCentroid { x, .. }) => assert!(x.is_nan()),
        other => panic!("expected NonFiniteCentroid, got {other:?}"),
    }
    assert!(grid.try_partition_for_centroid(&Coord::new(1.0, f64::INFINITY)).is_err());
    // finite out-of-space centroids still clamp (unchanged behaviour)
    assert_eq!(
        grid.try_partition_for_centroid(&Coord::new(1e9, 1e9)).unwrap(),
        grid.partition_for_centroid(&Coord::new(1e9, 1e9))
    );

    // the engine surfaces it as a non-retryable InvalidRecord task error
    let ctx = make_ctx(true, None);
    let mut poisoned = finite.clone();
    poisoned.push((nan_obj, 999));
    let g = grid.clone();
    let shuffled =
        ctx.parallelize(poisoned.clone(), 2).partition_by(grid.num_partitions(), move |(o, _)| {
            match g.try_partition_of(o) {
                Ok(idx) => idx,
                Err(e) => stark_engine::abort_invalid_record(e.to_string()),
            }
        });
    let err = shuffled.try_collect().unwrap_err();
    assert_eq!(err.kind, TaskErrorKind::InvalidRecord);
    assert_eq!(err.attempts, 1, "malformed input must not burn the retry budget");
    assert!(err.message.contains("non-finite centroid"), "{}", err.message);

    // and the user-facing partition_by propagates the failure (panics)
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ctx.parallelize(poisoned, 2).spatial().partition_by(grid)
    }));
    assert!(result.is_err(), "partition_by must reject NaN centroids");
}
