//! Property tests for the temporal algebra and the temporal-extent
//! pruning bounds.

use proptest::prelude::*;
use stark::{Temporal, TemporalExtent};

fn temporal_strategy() -> impl Strategy<Value = Temporal> {
    prop_oneof![
        (-500i64..500).prop_map(Temporal::instant),
        (-500i64..500, 0i64..300).prop_map(|(s, len)| Temporal::interval(s, s + len)),
        (-500i64..500).prop_map(Temporal::from_instant_on),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersects_is_symmetric(a in temporal_strategy(), b in temporal_strategy()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersects_is_reflexive_for_nonempty(a in temporal_strategy()) {
        // all generated temporals denote non-empty point sets
        prop_assert!(a.intersects(&a));
        prop_assert!(a.contains(&a));
        prop_assert!(a.contained_by(&a));
    }

    #[test]
    fn contains_implies_intersects(a in temporal_strategy(), b in temporal_strategy()) {
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn contains_is_transitive(
        a in temporal_strategy(),
        b in temporal_strategy(),
        c in temporal_strategy(),
    ) {
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c), "{a} ⊇ {b} ⊇ {c} but not {a} ⊇ {c}");
        }
    }

    #[test]
    fn contains_is_antisymmetric_up_to_equality(
        a in temporal_strategy(),
        b in temporal_strategy(),
    ) {
        if a.contains(&b) && b.contains(&a) {
            // the two denote the same point set: instant t and the
            // degenerate interval [t, t] are the only distinct-repr case
            prop_assert_eq!(a.start(), b.start());
        }
    }

    #[test]
    fn intersects_agrees_with_instant_membership(
        a in temporal_strategy(),
        t in -600i64..600,
    ) {
        let instant = Temporal::instant(t);
        prop_assert_eq!(a.intersects(&instant), a.covers_instant(t));
    }

    #[test]
    fn interval_intersection_matches_range_overlap(
        (s1, l1) in (-500i64..500, 1i64..300),
        (s2, l2) in (-500i64..500, 1i64..300),
    ) {
        let a = Temporal::interval(s1, s1 + l1);
        let b = Temporal::interval(s2, s2 + l2);
        let overlap = s1.max(s2) < (s1 + l1).min(s2 + l2);
        prop_assert_eq!(a.intersects(&b), overlap);
    }

    #[test]
    fn extent_never_prunes_a_member_match(
        members in proptest::collection::vec(temporal_strategy(), 1..30),
        query in temporal_strategy(),
    ) {
        let extent = TemporalExtent::of(members.iter().map(Some));
        if members.iter().any(|m| m.intersects(&query)) {
            prop_assert!(extent.may_intersect(&query), "pruned an intersect match");
        }
        if members.iter().any(|m| m.contains(&query)) {
            prop_assert!(extent.may_contain(&query), "pruned a contains match");
        }
    }

    #[test]
    fn extent_counts_are_exact(
        members in proptest::collection::vec(
            prop_oneof![Just(None), temporal_strategy().prop_map(Some)],
            0..40,
        ),
    ) {
        let extent = TemporalExtent::of(members.iter().map(|m| m.as_ref()));
        let timed = members.iter().filter(|m| m.is_some()).count() as u64;
        prop_assert_eq!(extent.timed, timed);
        prop_assert_eq!(extent.untimed, members.len() as u64 - timed);
        prop_assert_eq!(extent.has_untimed(), timed != members.len() as u64);
        // the range covers every timed member's start
        if let Some((lo, hi)) = extent.range() {
            for m in members.iter().flatten() {
                prop_assert!(m.start() >= lo);
                // every member's end exceeds its start, and hi is the max
                // end, so each start lies strictly below hi
                prop_assert!(m.start() < hi);
            }
        } else {
            prop_assert_eq!(timed, 0);
        }
    }
}
