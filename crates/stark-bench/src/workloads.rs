//! Benchmark datasets, produced with fixed seeds for reproducibility.

use stark::{STObject, SpatialRdd, SpatialRddExt};
use stark_engine::{Context, Rdd};
use stark_eventsim::{world_bounds, EventGenerator};
use stark_geo::Envelope;

/// The value payload carried alongside each STObject in the benchmarks
/// (an id and a category, as in the paper's running example).
pub type Payload = (u64, String);

/// The benchmark space for non-world workloads.
pub fn space() -> Envelope {
    Envelope::from_bounds(0.0, 0.0, 1000.0, 1000.0)
}

/// Converts events into the paper's pair form.
pub fn to_pairs(
    ctx: &Context,
    events: Vec<stark_eventsim::Event>,
    partitions: usize,
) -> Rdd<(STObject, Payload)> {
    let pairs: Vec<(STObject, Payload)> = events
        .into_iter()
        .map(|e| {
            let (st, (id, cat)) = e.to_pair();
            (st, (id, cat))
        })
        .collect();
    ctx.parallelize(pairs, partitions.max(1))
}

/// Figure 4's dataset: `n` clustered points (hotspots make the self-join
/// non-trivial and the partitioning decisions matter).
pub fn figure4_points(ctx: &Context, n: usize, partitions: usize) -> Rdd<(STObject, Payload)> {
    let mut g = EventGenerator::new(4242);
    to_pairs(ctx, g.clustered_points(n, 40, 8.0, &space()), partitions)
}

/// Uniform points for filter/kNN experiments.
pub fn uniform_points(ctx: &Context, n: usize, partitions: usize) -> Rdd<(STObject, Payload)> {
    let mut g = EventGenerator::new(7);
    to_pairs(ctx, g.uniform_points(n, &space()), partitions)
}

/// The skewed land/sea workload motivating the BSP partitioner.
pub fn world_points(ctx: &Context, n: usize, partitions: usize) -> Rdd<(STObject, Payload)> {
    let mut g = EventGenerator::new(99);
    to_pairs(ctx, g.world_events(n), partitions)
}

/// Region (small rectangle) events for containment joins.
pub fn regions(ctx: &Context, n: usize, partitions: usize) -> Rdd<(STObject, Payload)> {
    let mut g = EventGenerator::new(2023);
    to_pairs(ctx, g.rect_regions(n, 10.0, &space()), partitions)
}

/// A query polygon covering roughly `fraction` of [`space`], centred.
pub fn query_polygon(fraction: f64) -> STObject {
    let s = space();
    let side = (fraction.clamp(0.0001, 1.0)).sqrt();
    let w = s.width() * side;
    let h = s.height() * side;
    let cx = s.center().x;
    let cy = s.center().y;
    STObject::from_wkt_interval(
        &format!(
            "POLYGON(({} {}, {} {}, {} {}, {} {}, {} {}))",
            cx - w / 2.0,
            cy - h / 2.0,
            cx + w / 2.0,
            cy - h / 2.0,
            cx + w / 2.0,
            cy + h / 2.0,
            cx - w / 2.0,
            cy + h / 2.0,
            cx - w / 2.0,
            cy - h / 2.0
        ),
        0,
        1_000_000,
    )
    .expect("well-formed query polygon")
}

/// Wraps a pair dataset for STARK operations.
pub fn spatial(rdd: &Rdd<(STObject, Payload)>) -> SpatialRdd<Payload> {
    rdd.spatial()
}

/// World-space bounds helper re-export for balance experiments.
pub fn world_space() -> Envelope {
    world_bounds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_requested_sizes() {
        let ctx = Context::with_parallelism(2);
        assert_eq!(figure4_points(&ctx, 1000, 4).count(), 1000);
        assert_eq!(uniform_points(&ctx, 500, 4).count(), 500);
        assert_eq!(world_points(&ctx, 300, 4).count(), 300);
        assert_eq!(regions(&ctx, 200, 4).count(), 200);
    }

    #[test]
    fn query_polygon_fraction_controls_area() {
        let q = query_polygon(0.25);
        let area = q.envelope().area();
        let total = space().area();
        assert!((area / total - 0.25).abs() < 0.01, "got fraction {}", area / total);
        // full-space query covers everything
        assert!(query_polygon(1.0).envelope().contains_envelope(&space()));
    }

    #[test]
    fn datasets_are_deterministic() {
        let ctx = Context::with_parallelism(2);
        let a = uniform_points(&ctx, 100, 2).collect();
        let b = uniform_points(&ctx, 100, 2).collect();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.0 == y.0 && x.1 == y.1));
    }
}
