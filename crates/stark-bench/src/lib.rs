//! # stark-bench — the paper's evaluation, regenerated
//!
//! One experiment per table/figure of the STARK paper plus the
//! `spatialbm` suite its Section 3 references, and ablations for the
//! design decisions of §2 (extent pruning, BSP-vs-grid, index modes).
//! The `repro` binary prints the tables; criterion benches
//! (`benches/figure4.rs`, `benches/spatialbm.rs`) track the same
//! operations at micro scale.

pub mod experiments;
pub mod service;
pub mod table;
pub mod workloads;

pub use table::{secs, timed, Table};
