//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!   repro all `[n]`          # every experiment (default scale)
//!   repro figure4 `[n]`      # the Figure 4 self-join comparison
//!   repro fusion `[n]`       # S7 fused-vs-unfused narrow chains (writes target/s7-fusion.json)
//!   repro chaos `[n]`        # S8 fault-tolerance ablation (writes target/s8-chaos.json;
//!                            # seed via STARK_CHAOS_SEED)
//!   repro stragglers `[n]`   # S9 straggler ablation (writes target/s9-stragglers.json;
//!                            # seed via STARK_CHAOS_SEED)
//!   repro memory `[n]`       # S10 memory-governance ablation (writes target/s10-memory.json;
//!                            # seed via STARK_CHAOS_SEED)
//!   repro service `[n]`      # S11 query-service load + fairness (writes target/s11-service.json;
//!                            # seed via STARK_CHAOS_SEED, session cap via S11_MAX_SESSIONS)
//!   repro columnar `[n]`     # S12 columnar-vs-row filter ablation (writes target/s12-columnar.json)
//!   repro ivm `[n]`          # S13 incremental-view-maintenance ablation: standing join at
//!                            # 10x the S6 rate, recompute vs delta (writes target/s13-ivm.json)
//!   repro distributed `[n]`  # S14 supervised multi-process ablation: A1/F4/A2 on forked
//!                            # workers over TCP, with a mid-shuffle worker kill
//!                            # (writes target/s14-distributed.json)
//!   repro shuffle `[n]`      # S15 remote-shuffle ablation: peer-served vs shared-store
//!                            # buckets, plus kill-mid-shuffle lineage recovery
//!                            # (writes target/s15-shuffle.json)
//!   repro features | filter | join | knn | dbscan | pruning | balance | indexmodes | stream
//!
//! `n` overrides the workload size. Figure 4's paper-scale run is
//! `repro figure4 1000000` (takes a while on a small machine).

use stark_bench::experiments;
use stark_engine::Context;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let n: Option<usize> = args.get(2).and_then(|s| s.parse().ok());
    let ctx = Context::new();

    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;

    if run("features") {
        ran = true;
        print!("{}", experiments::features().render());
        println!();
    }
    if run("figure4") {
        ran = true;
        print!("{}", experiments::figure4(&ctx, n.unwrap_or(100_000)).render());
        println!();
    }
    if run("filter") {
        ran = true;
        print!("{}", experiments::filter(&ctx, n.unwrap_or(200_000)).render());
        println!();
    }
    if run("join") {
        ran = true;
        print!("{}", experiments::join(&ctx, n.unwrap_or(20_000)).render());
        println!();
    }
    if run("knn") {
        ran = true;
        print!("{}", experiments::knn(&ctx, n.unwrap_or(200_000)).render());
        println!();
    }
    if run("dbscan") {
        ran = true;
        let base = n.unwrap_or(30_000);
        print!("{}", experiments::dbscan_scaling(&ctx, &[base / 4, base / 2, base]).render());
        println!();
    }
    if run("pruning") {
        ran = true;
        print!("{}", experiments::pruning(&ctx, n.unwrap_or(200_000)).render());
        println!();
    }
    if run("balance") {
        ran = true;
        print!("{}", experiments::balance(&ctx, n.unwrap_or(100_000)).render());
        println!();
    }
    if run("scaling") {
        ran = true;
        let base = n.unwrap_or(200_000);
        print!("{}", experiments::scaling(&ctx, &[base / 4, base / 2, base]).render());
        println!();
    }
    if run("temporal") {
        ran = true;
        print!("{}", experiments::temporal(&ctx, n.unwrap_or(200_000)).render());
        println!();
    }
    if run("indexmodes") {
        ran = true;
        print!("{}", experiments::index_modes(&ctx, n.unwrap_or(100_000), 10).render());
        println!();
    }
    if run("stream") {
        ran = true;
        let base = n.unwrap_or(4_000);
        print!("{}", experiments::stream(&ctx, &[base / 4, base / 2, base], 8).render());
        println!();
    }
    if run("fusion") {
        ran = true;
        let t = experiments::fusion(ctx.parallelism(), n.unwrap_or(200_000), 5);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S7 table");
        let path = std::env::var("S7_JSON").unwrap_or_else(|_| "target/s7-fusion.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S7 json");
        eprintln!("[s7] wrote {path}");
    }
    if run("columnar") {
        ran = true;
        let t = experiments::columnar(ctx.parallelism(), n.unwrap_or(200_000), 5);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S12 table");
        let path = std::env::var("S12_JSON").unwrap_or_else(|_| "target/s12-columnar.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S12 json");
        eprintln!("[s12] wrote {path}");
    }
    if run("ivm") {
        ran = true;
        // S6 streams 1 000 events per generator batch; S13 holds the
        // standing join at ten times that rate
        let t = experiments::ivm(&ctx, 8, n.unwrap_or(10_000));
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S13 table");
        let path = std::env::var("S13_JSON").unwrap_or_else(|_| "target/s13-ivm.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S13 json");
        eprintln!("[s13] wrote {path}");
    }
    if run("distributed") {
        ran = true;
        let workers: usize = std::env::var("S14_WORKERS")
            .ok()
            .map(|s| s.trim().parse().expect("S14_WORKERS must be a usize"))
            .unwrap_or(4);
        let t = experiments::distributed(n.unwrap_or(20_000), workers);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S14 table");
        let path =
            std::env::var("S14_JSON").unwrap_or_else(|_| "target/s14-distributed.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S14 json");
        eprintln!("[s14] wrote {path}");
    }
    if run("shuffle") {
        ran = true;
        let workers: usize = std::env::var("S15_WORKERS")
            .ok()
            .map(|s| s.trim().parse().expect("S15_WORKERS must be a usize"))
            .unwrap_or(4);
        let t = experiments::remote_shuffle(n.unwrap_or(20_000), workers);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S15 table");
        let path = std::env::var("S15_JSON").unwrap_or_else(|_| "target/s15-shuffle.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S15 json");
        eprintln!("[s15] wrote {path}");
    }
    if run("chaos") {
        ran = true;
        let seed: u64 = std::env::var("STARK_CHAOS_SEED")
            .ok()
            .map(|s| s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"))
            .unwrap_or(0xC4A05);
        let t = experiments::chaos(ctx.parallelism(), n.unwrap_or(100_000), seed);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S8 table");
        let path = std::env::var("S8_JSON").unwrap_or_else(|_| "target/s8-chaos.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S8 json");
        eprintln!("[s8] wrote {path}");
    }
    if run("stragglers") {
        ran = true;
        let seed: u64 = std::env::var("STARK_CHAOS_SEED")
            .ok()
            .map(|s| s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"))
            .unwrap_or(0xC4A05);
        let t = experiments::stragglers(ctx.parallelism(), n.unwrap_or(100_000), seed);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S9 table");
        let path = std::env::var("S9_JSON").unwrap_or_else(|_| "target/s9-stragglers.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S9 json");
        eprintln!("[s9] wrote {path}");
    }
    if run("memory") {
        ran = true;
        let seed: u64 = std::env::var("STARK_CHAOS_SEED")
            .ok()
            .map(|s| s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"))
            .unwrap_or(0xC4A05);
        let t = experiments::memory(ctx.parallelism(), n.unwrap_or(100_000), seed);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S10 table");
        let path = std::env::var("S10_JSON").unwrap_or_else(|_| "target/s10-memory.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S10 json");
        eprintln!("[s10] wrote {path}");
    }

    if run("service") {
        ran = true;
        let seed: u64 = std::env::var("STARK_CHAOS_SEED")
            .ok()
            .map(|s| s.trim().parse().expect("STARK_CHAOS_SEED must be a u64"))
            .unwrap_or(0xC4A05);
        let max_sessions: usize = std::env::var("S11_MAX_SESSIONS")
            .ok()
            .map(|s| s.trim().parse().expect("S11_MAX_SESSIONS must be a usize"))
            .unwrap_or(1024);
        let rows = n.unwrap_or(20_000) as i64;
        let t = stark_bench::service::service(ctx.parallelism(), rows, seed, max_sessions);
        print!("{}", t.render());
        println!();
        // machine-readable copy for CI artifacts
        let json = serde_json::to_string_pretty(&t).expect("serialise S11 table");
        let path = std::env::var("S11_JSON").unwrap_or_else(|_| "target/s11-service.json".into());
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, json).expect("write S11 json");
        eprintln!("[s11] wrote {path}");
    }

    if !ran {
        eprintln!(
            "unknown experiment {which:?}; try: all, features, figure4, filter, join, knn, dbscan, pruning, balance, scaling, temporal, indexmodes, stream, fusion, columnar, ivm, distributed, shuffle, chaos, stragglers, memory, service"
        );
        std::process::exit(2);
    }

    let m = ctx.metrics();
    eprintln!(
        "[engine] jobs={} tasks={} records={} pruned_partitions={} shuffles={} task_time={:.2}s job_time={:.2}s",
        m.jobs,
        m.tasks_launched,
        m.records_read,
        m.partitions_pruned,
        m.shuffles,
        m.task_nanos as f64 / 1e9,
        m.job_nanos as f64 / 1e9
    );
}
