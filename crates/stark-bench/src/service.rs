//! S11 — query-service load experiment.
//!
//! A closed-loop load generator drives the multi-tenant query service
//! over real TCP sessions and reports, per concurrency level:
//! sustained throughput, p50/p99 latency, shed rate and plan-cache hit
//! rate. A second scenario checks *fairness*: a light tenant's tail
//! latency while a heavy tenant saturates the service must stay within
//! a small factor of its latency on an otherwise idle server — the
//! weighted round-robin scheduler, not luck, provides that bound.

use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stark_engine::{Context, EngineConfig};
use stark_piglet::Value;
use stark_server::{Client, QueryServer, Response, ServerConfig, ServerHandle, TenantConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one closed-loop run.
#[derive(Debug, Default, Clone)]
struct LoadResult {
    requests: u64,
    ok: u64,
    shed: u64,
    other_errors: u64,
    /// Latencies of successful requests, microseconds.
    latencies_us: Vec<u64>,
    elapsed: Duration,
}

impl LoadResult {
    fn merge(&mut self, other: LoadResult) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.shed += other.shed;
        self.other_errors += other.other_errors;
        self.latencies_us.extend(other.latencies_us);
    }

    fn percentile_ms(&mut self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return f64::NAN;
        }
        self.latencies_us.sort_unstable();
        let rank = ((self.latencies_us.len() as f64 - 1.0) * p).round() as usize;
        self.latencies_us[rank] as f64 / 1000.0
    }

    fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }
}

fn start_service(parallelism: usize, rows: i64, tenants: Vec<TenantConfig>) -> ServerHandle {
    let ctx = Context::with_config(EngineConfig {
        parallelism,
        default_partitions: parallelism.max(2),
        ..EngineConfig::default()
    });
    let tuples: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 1000),
                Value::Str(format!("POINT({} {})", i % 100, (i * 13) % 100)),
            ]
        })
        .collect();
    let schema = Arc::new(vec!["id".to_string(), "t".to_string(), "wkt".to_string()]);
    let dataset = ("ev".to_string(), schema, ctx.parallelize(tuples, parallelism.max(2)));
    let config = ServerConfig {
        workers: parallelism.max(2),
        max_queue_depth: 32,
        default_deadline_ms: 30_000,
        tenants,
        ..ServerConfig::default()
    };
    QueryServer::start(ctx, vec![dataset], config).expect("service starts")
}

/// A light request: filter + dump over a handful of rows. The literal
/// varies per request, so the run also exercises plan-cache re-binding.
fn light_script(rng: &mut StdRng) -> String {
    let lo = rng.gen_range(0..900u32);
    format!("f = FILTER ev BY t == {lo};\nx = LIMIT f 5;\nDUMP x;")
}

/// A heavy-tenant request: pricier than a light one (filter + sort)
/// but moderate per query — the heavy tenant's weight is its *rate*
/// (many sessions flooding the queue), which is the pressure weighted
/// round-robin defends against. A tenant whose individual queries
/// monopolize the CPU is bounded by deadlines and budgets instead;
/// non-preemptive scheduling cannot shorten a job already running.
fn heavy_script(rng: &mut StdRng) -> String {
    let hi = rng.gen_range(40..80u32);
    let k = rng.gen_range(1..10u32);
    format!("h = FILTER ev BY t < {hi};\no = ORDER h BY t DESC;\nl = LIMIT o {k};\nDUMP l;")
}

/// Runs `sessions` closed-loop clients, each issuing `per_session`
/// requests of `make_script` as `tenant`, and aggregates the results.
fn closed_loop(
    addr: std::net::SocketAddr,
    tenant: &str,
    sessions: usize,
    per_session: usize,
    seed: u64,
    make_script: fn(&mut StdRng) -> String,
) -> LoadResult {
    let start = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
                let mut local = LoadResult::default();
                let Ok(mut client) = Client::connect(addr) else {
                    local.other_errors = per_session as u64;
                    local.requests = per_session as u64;
                    return local;
                };
                for _ in 0..per_session {
                    let script = make_script(&mut rng);
                    let t0 = Instant::now();
                    local.requests += 1;
                    match client.query(&tenant, &script, None) {
                        Ok(Response::Ok { .. }) => {
                            local.ok += 1;
                            local.latencies_us.push(t0.elapsed().as_micros() as u64);
                        }
                        Ok(Response::Overloaded { .. }) => local.shed += 1,
                        Ok(_) | Err(_) => local.other_errors += 1,
                    }
                }
                local
            })
        })
        .collect();
    let mut total = LoadResult::default();
    for h in handles {
        if let Ok(local) = h.join() {
            total.merge(local);
        }
    }
    total.elapsed = start.elapsed();
    total
}

/// The S11 experiment. `max_sessions` caps the concurrency sweep (CI
/// runs a reduced ladder); `seed` pins the request mix.
pub fn service(parallelism: usize, rows: i64, seed: u64, max_sessions: usize) -> Table {
    let mut table = Table::new(
        format!("S11: query service under closed-loop load ({rows} rows, seed {seed})"),
        &[
            "scenario",
            "sessions",
            "requests",
            "ok",
            "shed",
            "shed%",
            "thrpt(q/s)",
            "p50(ms)",
            "p99(ms)",
            "cache-hit%",
        ],
    );

    // --- throughput ladder -------------------------------------------------
    for &sessions in &[64usize, 256, 1024] {
        if sessions > max_sessions {
            eprintln!("[s11] skipping {sessions}-session level (cap {max_sessions})");
            continue;
        }
        let server = start_service(parallelism, rows, vec![TenantConfig::new("default").weight(1)]);
        let per_session = 8;
        let mut r =
            closed_loop(server.addr(), "default", sessions, per_session, seed, light_script);
        let (hits, misses) = server.cache_stats();
        let hit_rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
        table.push(vec![
            "closed-loop".into(),
            sessions.to_string(),
            r.requests.to_string(),
            r.ok.to_string(),
            r.shed.to_string(),
            format!("{:.1}", 100.0 * r.shed as f64 / r.requests.max(1) as f64),
            format!("{:.0}", r.throughput()),
            format!("{:.2}", r.percentile_ms(0.50)),
            format!("{:.2}", r.percentile_ms(0.99)),
            format!("{hit_rate:.1}"),
        ]);
    }

    // --- fairness: light tenant vs rate-heavy tenant -----------------------
    let light_sessions = 4.min(max_sessions.max(1));
    let heavy_sessions = 12.min(max_sessions.max(1));
    let per_session = 12;
    let heavy_per_session = 3 * per_session; // keep the flood going while light is measured
    let tenants =
        || vec![TenantConfig::new("light").weight(8), TenantConfig::new("heavy").weight(1)];

    // isolated baseline: light tenant alone on an idle server
    let server = start_service(parallelism, rows, tenants());
    let mut isolated =
        closed_loop(server.addr(), "light", light_sessions, per_session, seed, light_script);
    let isolated_p99 = isolated.percentile_ms(0.99);
    table.push(vec![
        "light-isolated".into(),
        light_sessions.to_string(),
        isolated.requests.to_string(),
        isolated.ok.to_string(),
        isolated.shed.to_string(),
        format!("{:.1}", 100.0 * isolated.shed as f64 / isolated.requests.max(1) as f64),
        format!("{:.0}", isolated.throughput()),
        format!("{:.2}", isolated.percentile_ms(0.50)),
        format!("{isolated_p99:.2}"),
        "-".into(),
    ]);
    drop(server);

    // mixed: the heavy tenant saturates while the light tenant keeps going
    let server = start_service(parallelism, rows, tenants());
    let addr = server.addr();
    let heavy_handle = std::thread::spawn(move || {
        closed_loop(addr, "heavy", heavy_sessions, heavy_per_session, seed ^ 0xDEAD, heavy_script)
    });
    // let the heavy load build up before measuring the light tenant
    std::thread::sleep(Duration::from_millis(200));
    let mut light_mixed =
        closed_loop(addr, "light", light_sessions, per_session, seed, light_script);
    let mut heavy_mixed = heavy_handle.join().unwrap_or_default();
    let light_p99 = light_mixed.percentile_ms(0.99);
    for (name, sessions, r) in [
        ("light-mixed", light_sessions, &mut light_mixed),
        ("heavy-mixed", heavy_sessions, &mut heavy_mixed),
    ] {
        let (p50, p99) = (r.percentile_ms(0.50), r.percentile_ms(0.99));
        table.push(vec![
            name.into(),
            sessions.to_string(),
            r.requests.to_string(),
            r.ok.to_string(),
            r.shed.to_string(),
            format!("{:.1}", 100.0 * r.shed as f64 / r.requests.max(1) as f64),
            format!("{:.0}", r.throughput()),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            "-".into(),
        ]);
    }
    let slowdown = light_p99 / isolated_p99.max(0.001);
    table.push(vec![
        "light-p99-ratio".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{slowdown:.2}x"),
        "-".into(),
    ]);
    eprintln!(
        "[s11] light tenant p99 {light_p99:.2}ms mixed vs {isolated_p99:.2}ms isolated ({slowdown:.2}x)"
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_sane() {
        let mut r = LoadResult {
            latencies_us: (1..=100).map(|v| v * 1000).collect(),
            ..LoadResult::default()
        };
        assert!((r.percentile_ms(0.50) - 50.0).abs() <= 1.0);
        assert!((r.percentile_ms(0.99) - 99.0).abs() <= 1.0);
    }

    /// A miniature end-to-end run: one level, few sessions, real TCP.
    #[test]
    fn small_closed_loop_run_completes() {
        let server = start_service(2, 500, vec![TenantConfig::new("default")]);
        let r = closed_loop(server.addr(), "default", 4, 3, 7, light_script);
        assert_eq!(r.requests, 12);
        assert_eq!(r.ok + r.shed + r.other_errors, 12);
        assert!(r.ok > 0, "some requests must succeed: {r:?}");
        assert_eq!(r.other_errors, 0, "no untyped failures: {r:?}");
    }
}
