//! The experiments of the paper's evaluation (and of the `spatialbm`
//! micro benchmark suite it points to), each regenerating one table or
//! figure. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

use crate::table::{secs, timed, Table};
use crate::workloads::{self, Payload};
use stark::cluster::{dbscan, dbscan_local, DbscanParams};
use stark::{
    balance_stats, BspPartitioner, GridPartitioner, IndexedSpatialRdd, JoinConfig, STPredicate,
    SpatialPartitioner, SpatialRddExt,
};
use stark_baselines::{
    broadcast_join, geospark_join, spatialspark_join, GeoSparkConfig, RegionScheme,
};
use stark_engine::{
    Context, EngineConfig, FaultInjector, FaultPolicy, FaultScope, ObjectStore, TaskError,
};
use stark_geo::{Coord, DistanceFn};
use std::sync::Arc;

/// F4 — Figure 4: self-join execution time per system, without
/// partitioning and with each system's best partitioner (GeoSpark:
/// Voronoi, SpatialSpark: Tile, STARK: BSP).
pub fn figure4(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("Figure 4: self-join, {n} points (execution time [s])"),
        &["system", "no partitioning [s]", "best partitioner", "partitioned [s]", "results"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::figure4_points(ctx, n, parts).cache();
    data.count(); // materialise input outside the timings
    let pred = STPredicate::Intersects;

    // --- GeoSpark-like: requires spatial partitioning (N/A without) ----
    let sample: Vec<Coord> = data.collect().iter().map(|(o, _)| o.centroid()).collect();
    let voronoi = RegionScheme::voronoi(64, &sample, 11);
    let (gs_count, gs_time) =
        timed(|| geospark_join(&data, &data, &voronoi, pred, GeoSparkConfig::default()).count());
    t.push(vec![
        "GeoSpark-like".into(),
        "N/A".into(),
        "voronoi".into(),
        secs(gs_time),
        gs_count.to_string(),
    ]);

    // --- SpatialSpark-like -------------------------------------------
    // The unpartitioned baseline is a plain all-pairs cartesian+filter —
    // O(n²), so it is only run up to 100k points (at larger scales the
    // cell is marked; the 50k–100k runs already show the quadratic blow-up
    // the paper's "No Partitioning" bar reports).
    let ss_plain = if n <= 100_000 {
        let (count, time) = timed(|| broadcast_join(&data, &data, pred).count());
        Some((count, time))
    } else {
        None
    };
    let tile = RegionScheme::grid(8, &workloads::space());
    let (ss_count, ss_time) = timed(|| spatialspark_join(&data, &data, &tile, pred, 5).count());
    if let Some((c, _)) = ss_plain {
        assert_eq!(c, ss_count, "SpatialSpark-like result mismatch");
    }
    t.push(vec![
        "SpatialSpark-like".into(),
        ss_plain.map(|(_, d)| secs(d)).unwrap_or_else(|| "skipped (O(n^2))".into()),
        "tile".into(),
        secs(ss_time),
        ss_count.to_string(),
    ]);

    // --- STARK ---------------------------------------------------------
    let srdd = data.spatial();
    let (st_plain_count, st_plain_time) =
        timed(|| srdd.self_join(pred, JoinConfig::default()).count());
    let summary = srdd.summarize();
    let bsp = Arc::new(BspPartitioner::build((n / 64).max(16), 4.0, &summary));
    let partitioned = srdd.partition_by(bsp);
    let (st_count, st_time) = timed(|| partitioned.self_join(pred, JoinConfig::default()).count());
    assert_eq!(st_plain_count, st_count, "STARK result mismatch");
    assert_eq!(gs_count, st_count, "GeoSpark-like vs STARK result mismatch");
    t.push(vec![
        "STARK".into(),
        secs(st_plain_time),
        "bsp".into(),
        secs(st_time),
        st_count.to_string(),
    ]);
    t
}

/// T1 — the Section 3 feature comparison, rendered as a matrix. Each
/// "yes" for this reproduction is backed by an API exercised in tests.
pub fn features() -> Table {
    let mut t = Table::new(
        "Feature comparison (paper §3, textual)",
        &["feature", "GeoSpark-like", "SpatialSpark-like", "STARK"],
    );
    let rows: &[(&str, &str, &str, &str)] = &[
        ("spatial filter predicates", "yes", "yes", "yes"),
        ("spatio-TEMPORAL predicates", "no", "no", "yes"),
        ("kNN search", "yes", "no", "yes"),
        ("density-based clustering", "no", "no", "yes (DBSCAN)"),
        ("spatial partitioning", "grid/voronoi", "tile", "grid + cost-based BSP"),
        ("duplicate-free join", "no (dedup shuffle)", "yes (ref-point)", "yes (by design)"),
        ("partition pruning via extents", "no", "no", "yes"),
        ("live indexing", "yes", "yes", "yes"),
        ("persistent indexing", "no", "no", "yes"),
        ("integrated DSL on plain datasets", "no", "no", "yes"),
        ("scripting language (Piglet)", "no", "no", "yes"),
        ("kNN join", "no", "no", "yes"),
        ("co-location mining", "no", "no", "yes"),
        ("temporal partitioning/pruning", "no", "no", "yes (extension)"),
    ];
    for (f, a, b, c) in rows {
        t.push(vec![f.to_string(), a.to_string(), b.to_string(), c.to_string()]);
    }
    t
}

/// S1 — spatialbm range filter: partitioner × index mode.
pub fn filter(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("spatialbm S1: range filter (containedBy), {n} points"),
        &["partitioner", "index", "time [s]", "pruned partitions", "results"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::uniform_points(ctx, n, parts).cache();
    data.count();
    let query = workloads::query_polygon(0.05);
    let pred = STPredicate::ContainedBy;

    let srdd = data.spatial();
    let summary = srdd.summarize();
    let partitioners: Vec<(&str, Option<Arc<dyn SpatialPartitioner>>)> = vec![
        ("none", None),
        ("grid", Some(Arc::new(GridPartitioner::build(8, &summary)))),
        ("bsp", Some(Arc::new(BspPartitioner::build((n / 64).max(16), 10.0, &summary)))),
    ];

    for (pname, partitioner) in partitioners {
        let base = match &partitioner {
            Some(p) => srdd.partition_by(p.clone()),
            None => srdd.clone(),
        };
        // no index
        let before = ctx.metrics();
        let (count, time) = timed(|| base.filter(&query, pred).count());
        let pruned = ctx.metrics().diff(&before).partitions_pruned;
        t.push(vec![
            pname.into(),
            "none".into(),
            secs(time),
            pruned.to_string(),
            count.to_string(),
        ]);
        // live index (build + query, as live indexing does)
        let before = ctx.metrics();
        let (count_idx, time_idx) = timed(|| base.live_index(5).filter(&query, pred).count());
        let pruned_idx = ctx.metrics().diff(&before).partitions_pruned;
        assert_eq!(count, count_idx, "index changed the result");
        t.push(vec![
            pname.into(),
            "live(5)".into(),
            secs(time_idx),
            pruned_idx.to_string(),
            count_idx.to_string(),
        ]);
    }
    t
}

/// S2 — spatialbm distance join across strategies.
pub fn join(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("spatialbm S2: distance join (d=2.0), {n} x {n} points"),
        &["strategy", "time [s]", "results"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let left = workloads::uniform_points(ctx, n, parts).cache();
    let right = workloads::figure4_points(ctx, n, parts).cache();
    left.count();
    right.count();
    let pred = STPredicate::within_distance(2.0);

    let lspat = left.spatial();
    let summary = lspat.summarize();
    let grid: Arc<dyn SpatialPartitioner> = Arc::new(GridPartitioner::build(8, &summary));
    let lpart = lspat.partition_by(grid);

    let (c1, t1) = timed(|| lpart.join(&right.spatial(), pred, JoinConfig::nested_loop()).count());
    t.push(vec!["stark grid + nested loop".into(), secs(t1), c1.to_string()]);

    let (c2, t2) = timed(|| lpart.join(&right.spatial(), pred, JoinConfig::live_index(5)).count());
    t.push(vec!["stark grid + live index".into(), secs(t2), c2.to_string()]);

    let scheme = RegionScheme::grid(8, &workloads::space());
    let (c3, t3) =
        timed(|| geospark_join(&left, &right, &scheme, pred, GeoSparkConfig::default()).count());
    t.push(vec!["geospark-like (replicate+dedup)".into(), secs(t3), c3.to_string()]);

    let (c4, t4) = timed(|| spatialspark_join(&left, &right, &scheme, pred, 5).count());
    t.push(vec!["spatialspark-like (tile+refpoint)".into(), secs(t4), c4.to_string()]);

    assert_eq!(c1, c2);
    assert_eq!(c1, c3);
    assert_eq!(c1, c4);
    t
}

/// S3 — spatialbm kNN for k ∈ {1, 10, 100}: plain vs live-indexed.
pub fn knn(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("spatialbm S3: k nearest neighbours, {n} points"),
        &["k", "plain [s]", "live index [s]", "agreement"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::uniform_points(ctx, n, parts).cache();
    data.count();
    let srdd = data.spatial();
    let indexed = srdd.live_index(8);
    indexed.count(); // materialise trees before timing queries
    let q = stark::STObject::point(500.0, 500.0);

    for k in [1usize, 10, 100] {
        let (plain, tp) = timed(|| srdd.knn(&q, k, DistanceFn::Euclidean));
        let (idx, ti) = timed(|| indexed.knn(&q, k, DistanceFn::Euclidean));
        let agree = plain.len() == idx.len()
            && plain.iter().zip(&idx).all(|(a, b)| (a.0 - b.0).abs() < 1e-9);
        t.push(vec![
            k.to_string(),
            secs(tp),
            secs(ti),
            if agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// S4 — spatialbm DBSCAN scaling on the skewed world workload.
pub fn dbscan_scaling(ctx: &Context, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "spatialbm S4: DBSCAN (eps=1.0, minPts=8), skewed world events",
        &["n", "distributed [s]", "single-thread [s]", "clusters", "noise"],
    );
    for &n in sizes {
        let parts = (ctx.parallelism() * 2).max(8);
        let data = workloads::world_points(ctx, n, parts).cache();
        data.count();
        let params = DbscanParams::new(1.0, 8);

        let srdd = data.spatial();
        let (result, td) = timed(|| dbscan(&srdd, params).collect());
        let clusters = result
            .iter()
            .filter_map(|(_, _, c)| *c)
            .collect::<std::collections::BTreeSet<u64>>()
            .len();
        let noise = result.iter().filter(|(_, _, c)| c.is_none()).count();

        let local_data = data.collect();
        let ((), tl) = timed(|| {
            let _ = dbscan_local(&local_data, &params);
        });
        t.push(vec![n.to_string(), secs(td), secs(tl), clusters.to_string(), noise.to_string()]);
    }
    t
}

/// A1 — ablation: partition pruning on/off across query selectivities.
pub fn pruning(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("A1: partition pruning ablation, {n} points, grid(8)"),
        &["query area", "pruning", "time [s]", "tasks", "pruned", "results"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::uniform_points(ctx, n, parts);
    let srdd = data.spatial();
    let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
    part.count(); // materialise the shuffle

    for fraction in [0.01, 0.05, 0.25, 1.0] {
        let query = workloads::query_polygon(fraction);
        // pruning ON: the STARK filter path
        let before = ctx.metrics();
        let (count_on, time_on) = timed(|| part.filter(&query, STPredicate::ContainedBy).count());
        let d = ctx.metrics().diff(&before);
        t.push(vec![
            format!("{:.0}%", fraction * 100.0),
            "on".into(),
            secs(time_on),
            d.tasks_launched.to_string(),
            d.partitions_pruned.to_string(),
            count_on.to_string(),
        ]);
        // pruning OFF: same partitioned data, plain filter on every task
        let q2 = query.clone();
        let before = ctx.metrics();
        let (count_off, time_off) = timed(|| {
            part.rdd().filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &q2)).count()
        });
        let d = ctx.metrics().diff(&before);
        assert_eq!(count_on, count_off, "pruning changed the result");
        t.push(vec![
            format!("{:.0}%", fraction * 100.0),
            "off".into(),
            secs(time_off),
            d.tasks_launched.to_string(),
            d.partitions_pruned.to_string(),
            count_off.to_string(),
        ]);
    }
    t
}

/// A2 — ablation: grid vs BSP load balance under the land/sea skew.
pub fn balance(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("A2: partitioner balance under skew, {n} world events"),
        &["partitioner", "partitions", "non-empty", "max", "std dev", "filter time [s]"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::world_points(ctx, n, parts);
    let srdd = data.spatial();
    let summary = srdd.summarize();

    let bsp = BspPartitioner::build((n / 64).max(8), 1.0, &summary);
    let target_parts = bsp.num_partitions();
    let grid_dims = (target_parts as f64).sqrt().ceil() as usize;
    let partitioners: Vec<(&str, Arc<dyn SpatialPartitioner>)> = vec![
        ("grid", Arc::new(GridPartitioner::build(grid_dims, &summary))),
        ("bsp", Arc::new(bsp)),
    ];

    // a European query window, inside the dense region
    let query = stark::STObject::from_wkt_interval(
        "POLYGON((0 40, 20 40, 20 55, 0 55, 0 40))",
        0,
        1_000_000,
    )
    .unwrap();

    for (name, p) in partitioners {
        let partitioned = srdd.partition_by(p);
        let counts = partitioned.rdd().count_per_partition();
        let stats = balance_stats(&counts);
        let (_, time) = timed(|| partitioned.filter(&query, STPredicate::ContainedBy).count());
        t.push(vec![
            name.into(),
            stats.partitions.to_string(),
            stats.non_empty.to_string(),
            stats.max.to_string(),
            format!("{:.1}", stats.std_dev),
            secs(time),
        ]);
    }
    t
}

/// A3 — ablation: index modes — none vs live vs persistent (amortised
/// over repeated queries, the scenario persistent indexing targets).
pub fn index_modes(ctx: &Context, n: usize, queries: usize) -> Table {
    let mut t = Table::new(
        format!("A3: index modes, {n} points, {queries} repeated queries"),
        &["mode", "build/load [s]", "total query time [s]"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::uniform_points(ctx, n, parts).cache();
    data.count();
    let srdd = data.spatial();
    let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
    part.count();
    let query = workloads::query_polygon(0.02);
    let pred = STPredicate::ContainedBy;

    // no index: every query scans
    let (_, tq) = timed(|| {
        for _ in 0..queries {
            part.filter(&query, pred).count();
        }
    });
    t.push(vec!["none".into(), "0.000".into(), secs(tq)]);

    // live: build once (cached trees), query repeatedly
    let (indexed, tb) = timed(|| {
        let idx = part.live_index(5);
        idx.count(); // force tree construction
        idx
    });
    let (_, tq) = timed(|| {
        for _ in 0..queries {
            indexed.filter(&query, pred).count();
        }
    });
    t.push(vec!["live(5)".into(), secs(tb), secs(tq)]);

    // persistent: persist once, then (as another program would) load+query
    let dir = std::env::temp_dir().join(format!("stark-bench-idx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ObjectStore::open(&dir).expect("object store");
    indexed.persist(&store, "bench-index").expect("persist");
    let (loaded, tl) =
        timed(|| IndexedSpatialRdd::<Payload>::load(ctx, &store, "bench-index").expect("load"));
    let (_, tq) = timed(|| {
        for _ in 0..queries {
            loaded.filter(&query, pred).count();
        }
    });
    t.push(vec!["persistent(load)".into(), secs(tl), secs(tq)]);
    let _ = std::fs::remove_dir_all(&dir);
    t
}

/// S5 — spatialbm: scaling of the core partitioned operations with the
/// dataset size (partitioning itself, selective filter, self-join).
pub fn scaling(ctx: &Context, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "spatialbm S5: STARK scaling with dataset size (BSP partitioning)",
        &["n", "partition [s]", "filter 5% [s]", "self-join [s]", "join results"],
    );
    for &n in sizes {
        let parts = (ctx.parallelism() * 2).max(8);
        let data = workloads::figure4_points(ctx, n, parts).cache();
        data.count();
        let srdd = data.spatial();
        let summary = srdd.summarize();
        let bsp: Arc<dyn SpatialPartitioner> =
            Arc::new(BspPartitioner::build((n / 64).max(16), 4.0, &summary));
        let (partitioned, tp) = timed(|| {
            let p = srdd.partition_by(bsp.clone());
            p.count();
            p
        });
        let query = workloads::query_polygon(0.05);
        let (_, tf) = timed(|| partitioned.filter(&query, STPredicate::ContainedBy).count());
        let (join_results, tj) =
            timed(|| partitioned.self_join(STPredicate::Intersects, JoinConfig::default()).count());
        t.push(vec![n.to_string(), secs(tp), secs(tf), secs(tj), join_results.to_string()]);
    }
    t
}

/// A4 — extension ablation: temporal partitioning and pruning. The paper
/// notes STARK "only considers the spatial component for partitioning";
/// this measures what the temporal extension buys for time-selective
/// queries over spatially uniform data.
pub fn temporal(ctx: &Context, n: usize) -> Table {
    let mut t = Table::new(
        format!("A4: temporal partitioning ablation, {n} events, time-selective query"),
        &["partitioner", "time [s]", "tasks", "pruned", "results"],
    );
    let parts = (ctx.parallelism() * 2).max(8);
    let data = workloads::uniform_points(ctx, n, parts).cache();
    data.count();
    let srdd = data.spatial();

    // whole-space window covering 5% of the time axis
    let s = workloads::space();
    let query = stark::STObject::from_wkt_interval(
        &format!(
            "POLYGON(({} {}, {} {}, {} {}, {} {}, {} {}))",
            s.min_x() - 1.0,
            s.min_y() - 1.0,
            s.max_x() + 1.0,
            s.min_y() - 1.0,
            s.max_x() + 1.0,
            s.max_y() + 1.0,
            s.min_x() - 1.0,
            s.max_y() + 1.0,
            s.min_x() - 1.0,
            s.min_y() - 1.0
        ),
        0,
        50_000,
    )
    .expect("query");

    // spatial partitioning: no help for an all-space query
    let grid = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
    grid.count();
    let before = ctx.metrics();
    let (count_g, time_g) = timed(|| grid.filter(&query, STPredicate::ContainedBy).count());
    let d = ctx.metrics().diff(&before);
    t.push(vec![
        "grid(8) (spatial only)".into(),
        secs(time_g),
        d.tasks_launched.to_string(),
        d.partitions_pruned.to_string(),
        count_g.to_string(),
    ]);

    // temporal partitioning: prunes the time slices outside the window
    let times: Vec<Option<stark::Temporal>> =
        srdd.rdd().collect().iter().map(|(o, _)| o.time().copied()).collect();
    let temporal = srdd.partition_by(Arc::new(stark::TemporalPartitioner::build(64, &times)));
    temporal.count();
    let before = ctx.metrics();
    let (count_t, time_t) = timed(|| temporal.filter(&query, STPredicate::ContainedBy).count());
    let d = ctx.metrics().diff(&before);
    assert_eq!(count_g, count_t, "partitioning changed the result");
    t.push(vec![
        "temporal(64)".into(),
        secs(time_t),
        d.tasks_launched.to_string(),
        d.partitions_pruned.to_string(),
        count_t.to_string(),
    ]);
    t
}

/// S6 — streaming throughput/latency: a micro-batch stream of regional
/// event bursts (a hotspot drifting across the space) with event-time
/// windows and three standing queries (range filter, withinDistance,
/// kNN monitor), across batch sizes and with the continuous-query state
/// either incrementally indexed or linear-scanned. The localised batches
/// are where incremental maintenance pays: each batch rebuilds only the
/// partition trees under the hotspot.
pub fn stream(ctx: &Context, batch_sizes: &[usize], batches: usize) -> Table {
    use stark_stream::{
        ContinuousQueryEngine, GeneratorSource, LatePolicy, StandingQuery, StreamConfig,
        StreamContext, StreamJob, WindowSpec,
    };

    let mut t = Table::new(
        format!("S6: streaming, {batches} micro-batches per run, indexed vs scan"),
        &[
            "batch size",
            "query state",
            "records",
            "mean batch [ms]",
            "max batch [ms]",
            "events/sec",
            "rebuilt parts (total)",
            "late dropped",
        ],
    );

    let space = workloads::space();
    let summary = vec![
        (
            stark_geo::Envelope::from_point(Coord::new(space.min_x(), space.min_y())),
            Coord::new(space.min_x(), space.min_y()),
        ),
        (
            stark_geo::Envelope::from_point(Coord::new(space.max_x(), space.max_y())),
            Coord::new(space.max_x(), space.max_y()),
        ),
    ];
    let partitioner: Arc<dyn SpatialPartitioner> = Arc::new(GridPartitioner::build(6, &summary));
    let region = workloads::query_polygon(0.15);
    let center = Coord::new(space.center().x, space.center().y);

    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    for &batch_size in batch_sizes {
        for indexed in [true, false] {
            let engine = if indexed {
                ContinuousQueryEngine::indexed(partitioner.clone(), 16)
            } else {
                ContinuousQueryEngine::unindexed()
            }
            .with_query(StandingQuery::filter("region", region.clone(), STPredicate::Intersects))
            .with_query(StandingQuery::within_distance(
                "near-center",
                stark::STObject::point(center.x, center.y),
                space.width() * 0.05,
            ))
            .with_query(StandingQuery::knn(
                "monitor",
                stark::STObject::point(center.x * 0.5, center.y * 0.5),
                20,
            ));
            let sc = StreamContext::with_config(
                ctx.clone(),
                StreamConfig {
                    batch_records: batch_size,
                    channel_capacity: 4,
                    parallelism: ctx.parallelism().max(1),
                    ..Default::default()
                },
            );
            let source =
                GeneratorSource::new(42, space, batches, 1_000, 250).with_drifting_hotspot(0.25);
            let job = StreamJob::new()
                .with_windows(WindowSpec::tumbling(2_000), 100, LatePolicy::Drop)
                .with_grid_aggregation(10, space)
                .with_queries(engine);
            let report = sc.run(source, job);
            let rebuilt: usize = report.batches.iter().map(|b| b.partitions_rebuilt).sum();
            t.push(vec![
                batch_size.to_string(),
                if indexed { "incremental index" } else { "linear scan" }.into(),
                report.total_records().to_string(),
                ms(report.mean_latency()),
                ms(report.max_latency()),
                format!("{:.0}", report.events_per_sec()),
                rebuilt.to_string(),
                report.late_dropped().to_string(),
            ]);
        }
    }
    t
}

/// The compact record S7's chain runs over: the Figure-4 points
/// projected to `(x, y, id)`, so the measurement isolates per-operator
/// `Vec` materialisation rather than payload deep-cloning (the `String`
/// payload clones identically in both modes and would mask the effect).
pub type S7Record = (f64, f64, u64);

/// The narrow transformation chain S7 measures: the per-record
/// normalise → filter → tag steps that precede the Figure-4 self-join,
/// expressed as element-wise operators so the engine can fuse them.
pub fn s7_chain(data: &stark_engine::Rdd<S7Record>) -> stark_engine::Rdd<S7Record> {
    let space = workloads::space();
    data.map(|(x, y, id)| (x, y, id.wrapping_mul(31)))
        .filter(|(_, _, id)| id % 7 != 0)
        .map(|(x, y, id)| (x, y, id ^ ((x.abs() as u64) << 8)))
        .filter(move |&(x, y, _)| space.contains_coord(&Coord::new(x, y)))
        .flat_map(|p| [p])
        .map(|(x, y, id)| (x, y, id | 1))
        .map(|(x, y, id)| (y, x, id.rotate_left(3)))
        .filter(|&(_, _, id)| id != 0)
}

/// Projects the Figure-4 workload into [`S7Record`] form.
pub fn s7_points(ctx: &Context, n: usize, partitions: usize) -> stark_engine::Rdd<S7Record> {
    workloads::figure4_points(ctx, n, partitions).map(|(o, (id, _))| {
        let c = o.centroid();
        (c.x, c.y, id)
    })
}

/// S7 — ablation: zero-copy partitions + narrow-operator fusion on the
/// Figure-4 workload. The same six-operator narrow chain runs with
/// fusion off (one materialised `Vec` per operator, the pre-fusion
/// engine) and on (one fused per-partition pass), `repeats` passes over
/// a cached dataset each. Also reports the engine's clone accounting:
/// records deep-cloned out of shared storage and shallow bytes served
/// by Arc-sharing instead of copying.
pub fn fusion(parallelism: usize, n: usize, repeats: usize) -> Table {
    let mut t = Table::new(
        format!("S7: narrow-operator fusion, figure-4 workload, {n} points x {repeats} passes"),
        &[
            "fusion",
            "lineage head",
            "time [s]",
            "records/s",
            "records cloned",
            "share bytes avoided",
            "speedup",
        ],
    );
    let mut measured: Vec<(std::time::Duration, usize)> = Vec::new();
    for fused in [false, true] {
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            default_partitions: parallelism,
            fusion_enabled: fused,
            ..EngineConfig::default()
        });
        let parts = (parallelism * 2).max(8);
        let data = s7_points(&ctx, n, parts).cache();
        data.count(); // materialise the cache outside the timings
        let chain = s7_chain(&data);
        let head = chain.explain().lines().next().unwrap_or_default().trim().to_string();
        chain.count(); // warm-up pass
        let before = ctx.metrics();
        let (total, time) = timed(|| {
            let mut c = 0usize;
            for _ in 0..repeats {
                c += chain.count();
            }
            c
        });
        let d = ctx.metrics().diff(&before);
        let throughput = total as f64 / time.as_secs_f64().max(1e-9);
        let speedup = match measured.first() {
            None => "1.00x (baseline)".to_string(),
            Some((base, base_total)) => {
                assert_eq!(*base_total, total, "fusion changed the result count");
                format!("{:.2}x", base.as_secs_f64() / time.as_secs_f64().max(1e-9))
            }
        };
        measured.push((time, total));
        t.push(vec![
            if fused { "on" } else { "off" }.into(),
            head,
            secs(time),
            format!("{throughput:.0}"),
            d.records_cloned.to_string(),
            d.clone_bytes_avoided.to_string(),
            speedup,
        ]);
    }
    t
}

/// S12 — ablation: columnar partition batches + selection-bitmap filter
/// kernels on the hot filter shapes of the evaluation — S1 (spatial
/// range filter, containedBy on an exact-rectangle query), S2 (temporal
/// window over the whole space) and S5 (Haversine withinDistance on
/// lon/lat points). Each workload runs `repeats` timed passes over a
/// cached dataset with the columnar path off (row-at-a-time predicate
/// evaluation) and on (shared [`ColumnarBatch`](stark::ColumnarBatch)
/// per partition, bitmap kernels, row fallback only for undecided
/// lanes); results must be byte-identical. The columnar metrics
/// (batches built, rows scanned columnar) cover the warm-up pass too,
/// which is where each partition's batch is built once and cached.
pub fn columnar(parallelism: usize, n: usize, repeats: usize) -> Table {
    let mut t = Table::new(
        format!("S12: columnar filter kernels, {n} points x {repeats} passes"),
        &[
            "workload",
            "columnar",
            "time [s]",
            "records/s",
            "batches built",
            "rows scanned columnar",
            "results",
            "speedup",
        ],
    );
    let s = workloads::space();
    let s2_query = stark::STObject::from_wkt_interval(
        &format!(
            "POLYGON(({} {}, {} {}, {} {}, {} {}, {} {}))",
            s.min_x() - 1.0,
            s.min_y() - 1.0,
            s.max_x() + 1.0,
            s.min_y() - 1.0,
            s.max_x() + 1.0,
            s.max_y() + 1.0,
            s.min_x() - 1.0,
            s.max_y() + 1.0,
            s.min_x() - 1.0,
            s.min_y() - 1.0
        ),
        0,
        50_000,
    )
    .expect("S2 query");
    let cases: Vec<(&str, bool, stark::STObject, STPredicate)> = vec![
        ("S1 containedBy", false, workloads::query_polygon(0.05), STPredicate::ContainedBy),
        ("S2 temporal window", false, s2_query, STPredicate::ContainedBy),
        (
            "S5 withinDistance (haversine)",
            true,
            stark::STObject::point(10.0, 50.0),
            STPredicate::WithinDistance { max_dist: 500_000.0, dist_fn: DistanceFn::Haversine },
        ),
    ];

    for (name, world, query, pred) in cases {
        let mut baseline: Option<(std::time::Duration, usize)> = None;
        for enabled in [false, true] {
            let ctx = Context::with_config(EngineConfig {
                parallelism,
                default_partitions: parallelism,
                columnar_enabled: enabled,
                ..EngineConfig::default()
            });
            let parts = (parallelism * 2).max(8);
            let data = if world {
                workloads::world_points(&ctx, n, parts).cache()
            } else {
                workloads::uniform_points(&ctx, n, parts).cache()
            };
            data.count(); // materialise the cache outside the timings
            let srdd = data.spatial();
            let before = ctx.metrics();
            srdd.filter(&query, pred).count(); // warm-up: builds + caches the batches
            let (count, time) = timed(|| {
                let mut c = 0usize;
                for _ in 0..repeats {
                    c += srdd.filter(&query, pred).count();
                }
                c
            });
            let d = ctx.metrics().diff(&before);
            let throughput = (n * repeats) as f64 / time.as_secs_f64().max(1e-9);
            let speedup = match baseline {
                None => "1.00x (baseline)".to_string(),
                Some((base, base_count)) => {
                    assert_eq!(base_count, count, "columnar path changed the result on {name}");
                    format!("{:.2}x", base.as_secs_f64() / time.as_secs_f64().max(1e-9))
                }
            };
            if baseline.is_none() {
                baseline = Some((time, count));
            }
            t.push(vec![
                name.into(),
                if enabled { "on" } else { "off" }.into(),
                secs(time),
                format!("{throughput:.0}"),
                d.columnar_batches_built.to_string(),
                d.rows_scanned_columnar.to_string(),
                (count / repeats).to_string(),
                speedup,
            ]);
        }
    }
    t
}

/// S8 — chaos ablation: the A1 pruning pipeline (grid(8) partitioning +
/// containedBy filter) under a seeded 10% transient task-fault rate,
/// with fault tolerance progressively enabled — clean baseline, faults
/// with retry disabled, lineage-based retry, and retry plus a
/// mid-pipeline checkpoint. Reports injected-fault and retry counts and
/// wall-clock overhead against the clean baseline.
pub fn chaos(parallelism: usize, n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("S8: chaos ablation, {n} points, grid(8), 10% transient faults (seed {seed})"),
        &[
            "config",
            "completed",
            "results",
            "time [s]",
            "injected",
            "retried",
            "failed perm",
            "recomputed",
            "ckpt bytes",
            "overhead",
        ],
    );
    let store_dir = std::env::temp_dir().join(format!("stark-s8-{}", std::process::id()));
    let store = ObjectStore::open(store_dir.join("store")).expect("open S8 object store");

    // The whole pipeline runs under catch_unwind so the retry-off
    // configuration reports its permanent failure as a table row instead
    // of crashing the harness.
    let run_pipeline = |ctx: &Context, ck: Option<&ObjectStore>| -> Result<usize, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let parts = (ctx.parallelism() * 2).max(8);
            let data = workloads::uniform_points(ctx, n, parts);
            let srdd = data.spatial();
            let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
            let query = workloads::query_polygon(0.25);
            let base = match ck {
                Some(store) => part.rdd().checkpoint(store, "s8-mid").expect("S8 checkpoint"),
                None => part.rdd().clone(),
            };
            base.filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &query))
                .try_collect()
                .map(|v| v.len())
                .map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "pipeline panicked".into());
            Err(msg)
        })
    };

    struct Config {
        name: &'static str,
        faults: bool,
        retries: u32,
        checkpoint: bool,
    }
    let configs = [
        Config { name: "clean baseline", faults: false, retries: 3, checkpoint: false },
        Config { name: "faults, retry off", faults: true, retries: 0, checkpoint: false },
        Config { name: "faults, retry", faults: true, retries: 3, checkpoint: false },
        Config { name: "faults, retry + checkpoint", faults: true, retries: 3, checkpoint: true },
    ];
    // Warm-up pass outside the timings so the clean baseline doesn't
    // absorb allocator/page-fault costs the later rows skip.
    let warmup = Context::with_config(EngineConfig { parallelism, ..EngineConfig::default() });
    run_pipeline(&warmup, None).expect("warm-up run must succeed");

    // The retry-off configuration fails by design; keep its expected
    // panic from spraying a backtrace across the table.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut baseline: Option<std::time::Duration> = None;
    for c in configs {
        let injector = c.faults.then(|| Arc::new(FaultInjector::transient(seed, 0.10)));
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            max_task_retries: c.retries,
            fault_injector: injector.clone(),
            ..EngineConfig::default()
        });
        let (outcome, time) = timed(|| run_pipeline(&ctx, c.checkpoint.then_some(&store)));
        let m = ctx.metrics();
        let completed = outcome.is_ok();
        if completed && baseline.is_none() {
            baseline = Some(time);
        }
        let overhead = match (&baseline, completed) {
            (Some(base), true) => {
                format!("{:.2}x", time.as_secs_f64() / base.as_secs_f64().max(1e-9))
            }
            _ => "-".into(),
        };
        t.push(vec![
            c.name.into(),
            if completed { "yes" } else { "NO" }.into(),
            outcome.map(|r| r.to_string()).unwrap_or_else(|_| "-".into()),
            secs(time),
            injector.map(|i| i.injected()).unwrap_or(0).to_string(),
            m.tasks_retried.to_string(),
            m.tasks_failed_permanently.to_string(),
            m.partitions_recomputed.to_string(),
            m.checkpoint_bytes.to_string(),
            overhead,
        ]);
    }
    std::panic::set_hook(default_hook);
    let _ = std::fs::remove_dir_all(&store_dir);
    t
}

/// S9 — straggler ablation: the A1 pruning pipeline (grid(8)
/// partitioning + containedBy filter) under a seeded 15% *delay* fault
/// rate — first task attempts stall, modelling a slow node rather than
/// a crashed one — with the straggler defences toggled: clean baseline,
/// stalls waited out, speculative duplicates racing the stragglers, and
/// a job-deadline sweep (one deadline tighter than the stall, one
/// generous). Reports speculation/cancellation counters and wall-clock
/// against the defenceless run.
pub fn stragglers(parallelism: usize, n: usize, seed: u64) -> Table {
    // Speculation needs idle workers to scout for stragglers (the
    // single-worker sweep never races duplicates), so the ablation runs
    // at 4 workers minimum even on small machines — the stalls are
    // sleeps, not compute, so oversubscription doesn't distort the rows.
    let parallelism = parallelism.max(4);
    let stall = std::time::Duration::from_millis(120);
    let mut t = Table::new(
        format!(
            "S9: straggler ablation, {n} points, grid(8), 15% delay faults x120ms (seed {seed})"
        ),
        &[
            "config",
            "completed",
            "results",
            "time [s]",
            "injected",
            "speculated",
            "spec wins",
            "cancelled",
            "deadline jobs",
            "vs no-defence",
        ],
    );

    // Under catch_unwind so the too-tight-deadline configuration reports
    // its typed failure as a table row instead of crashing the harness.
    // Infallible actions surface cancellation as a `TaskError` panic
    // payload, so that downcast comes first.
    let run_pipeline = |ctx: &Context| -> Result<usize, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let parts = (ctx.parallelism() * 4).max(16);
            let data = workloads::uniform_points(ctx, n, parts);
            let srdd = data.spatial();
            let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
            let query = workloads::query_polygon(0.25);
            part.rdd()
                .filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &query))
                .try_collect()
                .map(|v| v.len())
                .map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<TaskError>()
                .map(|e| e.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "pipeline panicked".into());
            Err(msg)
        })
    };

    struct Config {
        name: &'static str,
        faults: bool,
        speculation: bool,
        deadline: Option<std::time::Duration>,
    }
    let configs = [
        Config { name: "clean baseline", faults: false, speculation: false, deadline: None },
        Config {
            name: "delay faults, no defence",
            faults: true,
            speculation: false,
            deadline: None,
        },
        Config {
            name: "delay faults, speculation",
            faults: true,
            speculation: true,
            deadline: None,
        },
        Config {
            name: "delay faults, 30ms deadline",
            faults: true,
            speculation: false,
            deadline: Some(std::time::Duration::from_millis(30)),
        },
        Config {
            name: "delay faults, 10s deadline",
            faults: true,
            speculation: false,
            deadline: Some(std::time::Duration::from_secs(10)),
        },
    ];
    // Warm-up pass outside the timings so the clean baseline doesn't
    // absorb allocator/page-fault costs the later rows skip.
    let warmup = Context::with_config(EngineConfig { parallelism, ..EngineConfig::default() });
    run_pipeline(&warmup).expect("warm-up run must succeed");

    // The tight-deadline configuration fails by design; keep its
    // expected panic from spraying a backtrace across the table.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut no_defence: Option<std::time::Duration> = None;
    for c in configs {
        let injector = c.faults.then(|| {
            Arc::new(FaultInjector::new(
                seed,
                FaultScope::Probability(0.15),
                FaultPolicy::Delay(stall),
            ))
        });
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            fault_injector: injector.clone(),
            speculation: c.speculation,
            speculation_quantile: 0.5,
            speculation_multiplier: 1.5,
            job_deadline: c.deadline,
            ..EngineConfig::default()
        });
        let (outcome, time) = timed(|| run_pipeline(&ctx));
        let m = ctx.metrics();
        let completed = outcome.is_ok();
        if completed && c.faults && !c.speculation && c.deadline.is_none() && no_defence.is_none() {
            no_defence = Some(time);
        }
        let vs = match (&no_defence, completed && c.faults) {
            (Some(base), true) => {
                format!("{:.2}x", time.as_secs_f64() / base.as_secs_f64().max(1e-9))
            }
            _ => "-".into(),
        };
        t.push(vec![
            c.name.into(),
            if completed { "yes" } else { "NO" }.into(),
            outcome.map(|r| r.to_string()).unwrap_or_else(|_| "-".into()),
            secs(time),
            injector.map(|i| i.injected()).unwrap_or(0).to_string(),
            m.tasks_speculated.to_string(),
            m.speculative_wins.to_string(),
            m.tasks_cancelled.to_string(),
            m.deadline_exceeded_jobs.to_string(),
            vs,
        ]);
    }
    std::panic::set_hook(default_hook);
    t
}

/// S10 — memory-governance ablation: a shuffle-and-cache pipeline
/// (grid(8) partitioning, cached layout, two pruning queries) run
/// unbounded to measure its reserved-bytes peak, then re-run under a
/// budget of a quarter of that peak — shuffle buckets spill to the
/// object store and cached partitions evict LRU-first — and finally
/// under [`FaultPolicy::MemoryPressure`] chaos strikes that shrink the
/// effective budget mid-job. Output must be identical in every row.
pub fn memory(parallelism: usize, n: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("S10: memory ablation, {n} points, grid(8), budget = peak/4 (seed {seed})"),
        &[
            "config",
            "results",
            "checksum",
            "time [s]",
            "peak bytes",
            "spilled bytes",
            "spill blobs",
            "evicted",
            "injected",
        ],
    );

    // Shuffle (spill pressure) feeding a cache reused by two queries
    // (eviction pressure); the checksum folds ids in collect order, so
    // "identical" below means order-identical, not just same multiset.
    let run_pipeline = |ctx: &Context| -> (usize, u64) {
        let parts = (ctx.parallelism() * 2).max(8);
        let data = workloads::uniform_points(ctx, n, parts);
        let srdd = data.spatial();
        let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
        let cached = part.rdd().cache();
        let inner = workloads::query_polygon(0.25);
        let outer = workloads::query_polygon(0.60);
        let r1 = cached.filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &inner)).collect();
        let r2 = cached.filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &outer)).collect();
        let checksum = r1
            .iter()
            .chain(r2.iter())
            .map(|(_, (id, _))| *id)
            .fold(0u64, |acc, id| acc.wrapping_mul(0x100_0000_01b3).wrapping_add(id));
        (r1.len() + r2.len(), checksum)
    };

    // Warm-up pass outside the timings so the unbounded baseline doesn't
    // absorb allocator/page-fault costs the later rows skip.
    let warmup = Context::with_config(EngineConfig { parallelism, ..EngineConfig::default() });
    run_pipeline(&warmup);

    struct Config {
        name: &'static str,
        budget: Option<u64>,
        pressure: bool,
    }
    // The unbounded row must run first: it measures the peak the
    // budgeted rows are derived from.
    let configs = [
        Config { name: "unbounded", budget: None, pressure: false },
        Config { name: "budget = peak/4 (spill)", budget: Some(0), pressure: false },
        Config { name: "memory-pressure chaos", budget: None, pressure: true },
    ];
    let mut peak: u64 = 0;
    for c in configs {
        let budget = c.budget.map(|_| (peak / 4).max(1));
        let injector =
            c.pressure.then(|| Arc::new(FaultInjector::memory_pressure(seed, 0.10, peak / 4)));
        let ctx = Context::with_config(EngineConfig {
            parallelism,
            fault_injector: injector.clone(),
            memory_budget: budget,
            ..EngineConfig::default()
        });
        let ((results, checksum), time) = timed(|| run_pipeline(&ctx));
        let m = ctx.metrics();
        if peak == 0 {
            peak = m.bytes_reserved_peak;
        }
        t.push(vec![
            c.name.into(),
            results.to_string(),
            format!("{checksum:016x}"),
            secs(time),
            m.bytes_reserved_peak.to_string(),
            m.bytes_spilled.to_string(),
            m.spill_blobs_written.to_string(),
            m.partitions_evicted_for_pressure.to_string(),
            injector.map(|i| i.injected()).unwrap_or(0).to_string(),
        ]);
    }
    t
}

/// S13 — IVM ablation: a standing withinDistance join over the S6
/// drifting-hotspot stream at 10× the S6 event rate, run once with the
/// recompute pipeline (every batch rebuilds the probe index and re-joins
/// the full accumulated sides) and once with delta-based incremental
/// view maintenance (only the batch delta probes the opposite side's
/// maintained per-partition STR-trees). Both runs consume the identical
/// seeded stream; the accumulated standing join result must be
/// identical, and the interesting number is the tail: p99 per-batch
/// latency, which for recompute grows with the accumulated state while
/// the incremental path stays O(batch).
pub fn ivm(ctx: &Context, batches: usize, batch_records: usize) -> Table {
    use stark_stream::{
        EventPayload, GeneratorSource, JoinEmission, JoinSpec, MemorySink, PipelineMode,
        StreamConfig, StreamContext, StreamJob, StreamReport,
    };

    let mut t = Table::new(
        format!("S13: standing withinDistance join, {batches} batches x {batch_records} events"),
        &[
            "mode",
            "records",
            "mean batch [ms]",
            "p99 batch [ms]",
            "max batch [ms]",
            "standing pairs",
            "retractions",
            "p99 speedup",
        ],
    );

    let space = workloads::space();
    let summary = vec![
        (
            stark_geo::Envelope::from_point(Coord::new(space.min_x(), space.min_y())),
            Coord::new(space.min_x(), space.min_y()),
        ),
        (
            stark_geo::Envelope::from_point(Coord::new(space.max_x(), space.max_y())),
            Coord::new(space.max_x(), space.max_y()),
        ),
    ];
    let partitioner: Arc<dyn SpatialPartitioner> = Arc::new(GridPartitioner::build(6, &summary));
    let dist = space.width() * 0.001;

    let percentile = |report: &StreamReport, q: f64| -> f64 {
        let mut ms: Vec<f64> =
            report.batches.iter().map(|b| b.latency.as_secs_f64() * 1e3).collect();
        if ms.is_empty() {
            return 0.0;
        }
        ms.sort_by(f64::total_cmp);
        ms[(((ms.len() as f64) * q).ceil() as usize).clamp(1, ms.len()) - 1]
    };

    let mut base_p99: Option<f64> = None;
    let mut base_pairs: Option<Vec<(u64, u64)>> = None;
    for mode in [PipelineMode::Recompute, PipelineMode::Incremental] {
        let sc = StreamContext::with_config(
            ctx.clone(),
            StreamConfig {
                batch_records,
                channel_capacity: 4,
                parallelism: ctx.parallelism().max(1),
                ..Default::default()
            },
        );
        let source =
            GeneratorSource::new(42, space, batches, 1_000, 250).with_drifting_hotspot(0.25);
        let sink = MemorySink::new();
        let join = JoinSpec::new(
            "s13-near",
            Arc::new(|_: &stark::STObject, v: &EventPayload| v.0.is_multiple_of(2)),
            Arc::new(|_: &stark::STObject, v: &EventPayload| !v.0.is_multiple_of(2)),
            STPredicate::within_distance(dist),
            partitioner.clone(),
            16,
        );
        let job = StreamJob::new().with_mode(mode).with_join(join).with_sink(sink.clone());
        let report = sc.run(source, job);

        // accumulate the standing result from whatever the mode emitted:
        // full re-emissions replace it, deltas apply to it
        let mut standing: Vec<(u64, u64)> = Vec::new();
        for (_, emission) in &sink.state().joins {
            match emission {
                JoinEmission::Full(pairs) => {
                    standing = pairs.iter().map(|((_, l), (_, r))| (l.0, r.0)).collect();
                }
                JoinEmission::Delta { inserts, retracts } => {
                    for ((_, l), (_, r)) in retracts {
                        let key = (l.0, r.0);
                        let i = standing
                            .iter()
                            .position(|k| *k == key)
                            .expect("S13: retraction of a pair that was never asserted");
                        standing.swap_remove(i);
                    }
                    standing.extend(inserts.iter().map(|((_, l), (_, r))| (l.0, r.0)));
                }
            }
        }
        standing.sort_unstable();
        match &base_pairs {
            None => base_pairs = Some(standing.clone()),
            Some(base) => {
                assert_eq!(base, &standing, "S13: incremental join diverged from recompute")
            }
        }

        let p99 = percentile(&report, 0.99);
        let speedup = match base_p99 {
            None => {
                base_p99 = Some(p99);
                "1.00x (baseline)".to_string()
            }
            Some(base) => format!("{:.2}x", base / p99.max(1e-9)),
        };
        let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
        t.push(vec![
            match mode {
                PipelineMode::Recompute => "recompute".into(),
                PipelineMode::Incremental => "incremental".into(),
            },
            report.total_records().to_string(),
            ms(report.mean_latency()),
            format!("{p99:.2}"),
            ms(report.max_latency()),
            standing.len().to_string(),
            report.retractions_emitted().to_string(),
            speedup,
        ]);
    }
    t
}

/// S14 — supervised multi-process ablation: the A1 pruning filter, the
/// F4 self-join, and the A2 partitioner comparison executed by a
/// [`WorkerPool`] of real forked `stark-worker` processes over TCP
/// (grid/BSP shuffle stage, then a per-partition filter or self-join
/// stage reading the shuffled buckets), against the same plans run
/// in-process. Each distributed pipeline is then repeated with a
/// one-shot `KillWorker` transport fault: the table pins that the
/// recovered run's results stay byte-identical and that exactly one
/// reassignment pays for the injected loss.
pub fn distributed(n: usize, workers: usize) -> Table {
    use stark::distributed::{to_arg, EventRow, SelfJoinArg, StFilterArg};
    use stark_engine::plan::{
        decode_rows, encode_rows, PlanFragment, PlanInput, PlanOp, PlanSink, TaskOutput,
    };
    use stark_engine::supervisor::{bucket_keys_for_partition, find_worker_bin, DistTask};
    use stark_engine::{TransportChaos, TransportPolicy, WorkerPool, WorkerPoolConfig};

    let mut t = Table::new(
        format!("S14: multi-process execution, {n} points, {workers} workers, grid(4) shuffle"),
        &["pipeline", "mode", "results", "time [s]", "injected", "reassigned", "lost", "identical"],
    );
    let worker_bin = find_worker_bin("stark-worker")
        .expect("stark-worker binary not found; build the workspace or set STARK_WORKER_BIN");

    // The F4 dataset, materialised driver-side: plan fragments ship rows.
    let gen = Context::with_parallelism(workers.max(1));
    let data: Vec<EventRow> = workloads::figure4_points(&gen, n, workers.max(1)).collect();
    let summary: stark::DataSummary =
        data.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect();
    let grid = GridPartitioner::build(4, &summary);
    let parts = grid.num_partitions();
    let chunk = n.div_ceil((workers * 2).max(1)).max(1);
    let chunks: Vec<&[EventRow]> = data.chunks(chunk).collect();

    let query = workloads::query_polygon(0.25);
    let filter_op = PlanOp::Filter {
        op: "st_filter".into(),
        arg: to_arg(&StFilterArg { query: query.clone(), predicate: STPredicate::ContainedBy }),
    };
    // F4 on point events: exact intersection of instants almost never
    // fires, so the self-join uses the paper's withinDistance predicate.
    let join_pred = STPredicate::within_distance(5.0);
    let join_sink = PlanSink::CollectWith {
        op: "self_join_pairs".into(),
        arg: to_arg(&SelfJoinArg { predicate: join_pred }),
    };

    // Local references, computed once with plain iterators.
    let (local_ids, filter_time) = timed(|| {
        let mut ids: Vec<u64> = data
            .iter()
            .filter(|(o, _)| STPredicate::ContainedBy.eval(o, &query))
            .map(|(_, (id, _))| *id)
            .collect();
        ids.sort_unstable();
        ids
    });
    let (local_pairs, join_time) = timed(|| {
        let mut by_part: Vec<Vec<EventRow>> = vec![Vec::new(); parts];
        for row in &data {
            by_part[grid.partition_of(&row.0)].push(row.clone());
        }
        let mut pairs: Vec<(u64, u64)> = by_part
            .iter()
            .flat_map(|rows| stark::distributed::self_join_pairs(rows, join_pred))
            .collect();
        pairs.sort_unstable();
        pairs
    });

    // One distributed pipeline run: shuffle stage (grid routing inside
    // the workers), then a per-partition stage over the written buckets.
    let run =
        |ops: Vec<PlanOp>,
         sink: PlanSink,
         chaos: Option<Arc<TransportChaos>>|
         -> (Vec<stark_engine::TaskResult>, std::time::Duration, stark_engine::PoolStats) {
            let mut cfg = WorkerPoolConfig::new(&worker_bin);
            cfg.workers = workers;
            cfg.chaos = chaos;
            let mut pool = WorkerPool::spawn(cfg).expect("spawn S14 worker pool");
            let (results, time) = timed(|| {
                let map_tasks: Vec<DistTask> = chunks
                    .iter()
                    .enumerate()
                    .map(|(task, rows)| {
                        DistTask::with_rows(
                            PlanFragment {
                                schema: "event".into(),
                                input: PlanInput::Inline,
                                ops: Vec::new(),
                                sink: PlanSink::ShuffleWrite {
                                    partitioner: "grid".into(),
                                    arg: to_arg(&grid),
                                    num_partitions: parts,
                                    prefix: "s14/s0".into(),
                                    task,
                                },
                            },
                            encode_rows(rows).expect("encode S14 chunk"),
                        )
                    })
                    .collect();
                let counts: Vec<Vec<u64>> = pool
                    .execute(&map_tasks)
                    .expect("S14 shuffle stage")
                    .iter()
                    .map(|r| match &r.output {
                        TaskOutput::BucketCounts(c) => c.clone(),
                        other => panic!("S14: expected bucket counts, got {other:?}"),
                    })
                    .collect();
                let reduce_tasks: Vec<DistTask> = (0..parts)
                    .map(|p| {
                        DistTask::new(PlanFragment {
                            schema: "event".into(),
                            input: PlanInput::Store {
                                keys: bucket_keys_for_partition("s14/s0", &counts, p),
                            },
                            ops: ops.clone(),
                            sink: sink.clone(),
                        })
                    })
                    .collect();
                pool.execute(&reduce_tasks).expect("S14 reduce stage")
            });
            let stats = pool.stats();
            pool.shutdown();
            (results, time, stats)
        };

    let collected_ids = |results: &[stark_engine::TaskResult]| -> Vec<u64> {
        let mut ids: Vec<u64> = results
            .iter()
            .flat_map(|r| {
                decode_rows::<EventRow>(r.payload.as_deref().expect("collect payload"))
                    .expect("decode S14 rows")
            })
            .map(|(_, (id, _))| id)
            .collect();
        ids.sort_unstable();
        ids
    };
    let collected_pairs = |results: &[stark_engine::TaskResult]| -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = results
            .iter()
            .flat_map(|r| match &r.output {
                TaskOutput::Json(v) => {
                    let pairs: Vec<(u64, u64)> =
                        serde::Deserialize::from_value(v).expect("decode S14 pairs");
                    pairs
                }
                other => panic!("S14: expected JSON pairs, got {other:?}"),
            })
            .collect();
        pairs.sort_unstable();
        pairs
    };

    let mut push = |pipeline: &str,
                    mode: &str,
                    results: String,
                    time: std::time::Duration,
                    stats: Option<stark_engine::PoolStats>,
                    injected: u64,
                    identical: &str| {
        let (reassigned, lost) = stats.map_or((0, 0), |s| (s.tasks_reassigned, s.workers_lost));
        t.push(vec![
            pipeline.into(),
            mode.into(),
            results,
            secs(time),
            injected.to_string(),
            reassigned.to_string(),
            lost.to_string(),
            identical.into(),
        ]);
    };

    // A1: containedBy filter.
    push("A1 filter", "local", local_ids.len().to_string(), filter_time, None, 0, "-");
    let (res, time, stats) = run(vec![filter_op.clone()], PlanSink::Collect, None);
    let clean = collected_ids(&res);
    assert_eq!(clean, local_ids, "S14: distributed A1 diverged from local");
    push("A1 filter", "distributed", clean.len().to_string(), time, Some(stats), 0, "yes");
    let chaos = Arc::new(TransportChaos::once(TransportPolicy::KillWorker));
    let (res, time, stats) = run(vec![filter_op], PlanSink::Collect, Some(chaos.clone()));
    let killed = collected_ids(&res);
    assert_eq!(killed, local_ids, "S14: A1 after worker kill diverged");
    assert_eq!(stats.tasks_reassigned, chaos.injected(), "S14: A1 reassignment count");
    push(
        "A1 filter",
        "distributed + kill",
        killed.len().to_string(),
        time,
        Some(stats),
        chaos.injected(),
        "yes",
    );

    // F4: per-partition self-join.
    push("F4 self-join", "local", local_pairs.len().to_string(), join_time, None, 0, "-");
    let (res, time, stats) = run(Vec::new(), join_sink.clone(), None);
    let clean = collected_pairs(&res);
    assert_eq!(clean, local_pairs, "S14: distributed F4 diverged from local");
    push("F4 self-join", "distributed", clean.len().to_string(), time, Some(stats), 0, "yes");
    let chaos = Arc::new(TransportChaos::once(TransportPolicy::KillWorker));
    let (res, time, stats) = run(Vec::new(), join_sink, Some(chaos.clone()));
    let killed = collected_pairs(&res);
    assert_eq!(killed, local_pairs, "S14: F4 after worker kill diverged");
    assert_eq!(stats.tasks_reassigned, chaos.injected(), "S14: F4 reassignment count");
    push(
        "F4 self-join",
        "distributed + kill",
        killed.len().to_string(),
        time,
        Some(stats),
        chaos.injected(),
        "yes",
    );

    // A2: shuffle balance, grid vs BSP, routed inside the workers.
    let bsp = BspPartitioner::build((n / 64).max(16), 4.0, &summary);
    for (name, arg, num) in
        [("grid", to_arg(&grid), parts), ("bsp", to_arg(&bsp), bsp.num_partitions())]
    {
        let mut cfg = WorkerPoolConfig::new(&worker_bin);
        cfg.workers = workers;
        let mut pool = WorkerPool::spawn(cfg).expect("spawn S14 A2 pool");
        let (totals, time) = timed(|| {
            let tasks: Vec<DistTask> = chunks
                .iter()
                .enumerate()
                .map(|(task, rows)| {
                    DistTask::with_rows(
                        PlanFragment {
                            schema: "event".into(),
                            input: PlanInput::Inline,
                            ops: Vec::new(),
                            sink: PlanSink::ShuffleWrite {
                                partitioner: name.into(),
                                arg: arg.clone(),
                                num_partitions: num,
                                prefix: format!("s14/a2-{name}"),
                                task,
                            },
                        },
                        encode_rows(rows).expect("encode S14 chunk"),
                    )
                })
                .collect();
            let mut totals = vec![0u64; num];
            for r in pool.execute(&tasks).expect("S14 A2 shuffle") {
                if let TaskOutput::BucketCounts(c) = r.output {
                    for (b, count) in c.iter().enumerate() {
                        totals[b] += count;
                    }
                }
            }
            totals
        });
        let stats = pool.stats();
        pool.shutdown();
        let max = totals.iter().copied().max().unwrap_or(0);
        let mean = totals.iter().sum::<u64>() as f64 / totals.len().max(1) as f64;
        push(
            "A2 shuffle balance",
            &format!("distributed {name}({num})"),
            format!("imbalance {:.2}x", max as f64 / mean.max(1e-9)),
            time,
            Some(stats),
            0,
            "-",
        );
    }
    t
}

/// S15 — remote-shuffle ablation: the A1 pruning filter and the F4
/// self-join run through [`WorkerPool::run_shuffle`] with peer-served
/// buckets (`ShuffleMode::Remote`) against the shared-store path
/// (`ShuffleMode::SharedStore`), plus a kill-mid-shuffle round where the
/// worker serving task-0's buckets dies on the first fetch and its
/// outputs are regenerated via lineage. The table pins byte-identity
/// across all three modes and `map_outputs_regenerated ==
/// map_outputs_lost` for the kill rounds.
pub fn remote_shuffle(n: usize, workers: usize) -> Table {
    use stark::distributed::{to_arg, EventRow, SelfJoinArg, StFilterArg};
    use stark_engine::plan::{encode_rows, PlanFragment, PlanInput, PlanOp, PlanSink};
    use stark_engine::supervisor::{find_worker_bin, DistTask};
    use stark_engine::{
        FetchChaos, FetchPolicy, ShuffleMode, ShuffleSpec, WorkerPool, WorkerPoolConfig,
    };

    let mut t = Table::new(
        format!("S15: remote shuffle, {n} points, {workers} workers, grid(4) routing"),
        &[
            "pipeline",
            "shuffle",
            "results",
            "time [s]",
            "fetched [KiB]",
            "retries",
            "lost",
            "regenerated",
            "identical",
        ],
    );
    let worker_bin = find_worker_bin("stark-worker")
        .expect("stark-worker binary not found; build the workspace or set STARK_WORKER_BIN");

    let gen = Context::with_parallelism(workers.max(1));
    let data: Vec<EventRow> = workloads::figure4_points(&gen, n, workers.max(1)).collect();
    let summary: stark::DataSummary =
        data.iter().map(|(o, _)| (o.envelope(), o.centroid())).collect();
    let grid = GridPartitioner::build(4, &summary);
    let parts = grid.num_partitions();
    let chunk = n.div_ceil((workers * 2).max(1)).max(1);
    let map_tasks: Vec<DistTask> = data
        .chunks(chunk)
        .map(|rows| {
            DistTask::with_rows(
                PlanFragment {
                    schema: "event".into(),
                    input: PlanInput::Inline,
                    ops: Vec::new(),
                    sink: PlanSink::Collect, // replaced by run_shuffle
                },
                encode_rows(rows).expect("encode S15 chunk"),
            )
        })
        .collect();

    let query = workloads::query_polygon(0.25);
    let filter_op = PlanOp::Filter {
        op: "st_filter".into(),
        arg: to_arg(&StFilterArg { query: query.clone(), predicate: STPredicate::ContainedBy }),
    };
    let join_sink = PlanSink::CollectWith {
        op: "self_join_pairs".into(),
        arg: to_arg(&SelfJoinArg { predicate: STPredicate::within_distance(5.0) }),
    };

    let run =
        |mode: ShuffleMode,
         prefix: &str,
         ops: Vec<PlanOp>,
         sink: PlanSink,
         chaos: Option<FetchChaos>|
         -> (Vec<stark_engine::TaskResult>, std::time::Duration, stark_engine::PoolStats) {
            let mut cfg = WorkerPoolConfig::new(&worker_bin);
            cfg.workers = workers;
            cfg.fetch_chaos = chaos;
            cfg.respawn_backoff = std::time::Duration::from_millis(10);
            let mut pool = WorkerPool::spawn(cfg).expect("spawn S15 worker pool");
            let spec = ShuffleSpec {
                mode,
                partitioner: "grid".into(),
                partitioner_arg: to_arg(&grid),
                num_partitions: parts,
                prefix: prefix.into(),
                reduce_ops: ops,
                reduce_sink: sink,
            };
            let (results, time) =
                timed(|| pool.run_shuffle(&map_tasks, &spec).expect("S15 shuffle"));
            let stats = pool.stats();
            pool.shutdown();
            (results, time, stats)
        };

    // The kill strikes the first fetch of a task-0 bucket; regenerated
    // outputs land at epoch 1, above the chaos max_epoch, so recovery
    // traffic is never struck again.
    let kill_chaos =
        || FetchChaos::once(FetchPolicy::KillServingWorker).with_key_filter("task-00000/");

    let mut push = |pipeline: &str,
                    shuffle: &str,
                    results: usize,
                    time: std::time::Duration,
                    stats: &stark_engine::PoolStats,
                    identical: &str| {
        t.push(vec![
            pipeline.into(),
            shuffle.into(),
            results.to_string(),
            secs(time),
            format!("{:.1}", stats.shuffle_bytes_fetched_remote as f64 / 1024.0),
            stats.fetch_retries.to_string(),
            stats.map_outputs_lost.to_string(),
            stats.map_outputs_regenerated.to_string(),
            identical.into(),
        ]);
    };

    for (pipeline, ops, sink) in [
        ("A1 filter", vec![filter_op.clone()], PlanSink::Collect),
        ("F4 self-join", Vec::new(), join_sink.clone()),
    ] {
        let tag = if pipeline.starts_with("A1") { "a1" } else { "f4" };
        let (shared, time, stats) = run(
            ShuffleMode::SharedStore,
            &format!("s15/{tag}-shared"),
            ops.clone(),
            sink.clone(),
            None,
        );
        push(pipeline, "shared-store", shared.len(), time, &stats, "-");

        let (remote, time, stats) =
            run(ShuffleMode::Remote, &format!("s15/{tag}-remote"), ops.clone(), sink.clone(), None);
        for (p, (s, r)) in shared.iter().zip(&remote).enumerate() {
            assert_eq!(s.output, r.output, "S15 {pipeline}: partition {p} output diverged");
            assert_eq!(s.payload, r.payload, "S15 {pipeline}: partition {p} payload diverged");
        }
        push(pipeline, "remote", remote.len(), time, &stats, "yes");

        let (killed, time, stats) =
            run(ShuffleMode::Remote, &format!("s15/{tag}-kill"), ops, sink, Some(kill_chaos()));
        for (p, (s, r)) in shared.iter().zip(&killed).enumerate() {
            assert_eq!(s.output, r.output, "S15 {pipeline}: kill partition {p} output diverged");
            assert_eq!(s.payload, r.payload, "S15 {pipeline}: kill partition {p} payload diverged");
        }
        assert!(stats.map_outputs_lost >= 1, "S15 {pipeline}: the kill must lose outputs");
        assert_eq!(
            stats.map_outputs_regenerated, stats.map_outputs_lost,
            "S15 {pipeline}: lineage must regenerate exactly the lost outputs"
        );
        push(pipeline, "remote + kill", killed.len(), time, &stats, "yes");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::with_parallelism(4)
    }

    #[test]
    fn chaos_ablation_rows_tell_the_recovery_story() {
        let t = chaos(4, 4000, 0xC4A05);
        assert_eq!(t.rows.len(), 4);
        // clean baseline completes without any injections or retries
        assert_eq!(t.rows[0][1], "yes");
        assert_eq!(t.rows[0][4], "0");
        assert_eq!(t.rows[0][5], "0");
        // both retry configurations absorb every injected fault
        for row in [&t.rows[2], &t.rows[3]] {
            assert_eq!(row[1], "yes", "retry row must complete: {row:?}");
            assert_eq!(row[2], t.rows[0][2], "results must match the clean run");
            assert_eq!(row[6], "0", "nothing may fail permanently with retries on");
            let injected: u64 = row[4].parse().unwrap();
            let retried: u64 = row[5].parse().unwrap();
            assert!(injected > 0, "seeded 10% rate must inject at this scale");
            assert_eq!(retried, injected);
        }
        // the checkpoint row actually wrote blobs
        let ck_bytes: u64 = t.rows[3][8].parse().unwrap();
        assert!(ck_bytes > 0);
        assert_eq!(t.rows[2][8], "0");
    }

    #[test]
    fn straggler_ablation_speculation_beats_the_stall() {
        let t = stragglers(4, 4000, 0xC4A05);
        assert_eq!(t.rows.len(), 5);
        // clean baseline: no injections, no speculation, no cancellations
        assert_eq!(t.rows[0][1], "yes");
        assert_eq!(t.rows[0][4], "0");
        assert_eq!(t.rows[0][5], "0");
        // stalls strike and are waited out without defences
        assert_eq!(t.rows[1][1], "yes");
        let injected: u64 = t.rows[1][4].parse().unwrap();
        assert!(injected > 0, "seeded 15% delay rate must inject at this scale");
        assert_eq!(t.rows[1][2], t.rows[0][2], "stalls must not change results");
        // speculation completes strictly faster, with identical results
        assert_eq!(t.rows[2][1], "yes");
        assert_eq!(t.rows[2][2], t.rows[0][2], "speculation must not change results");
        assert!(t.rows[2][5].parse::<u64>().unwrap() >= 1, "duplicates must launch: {t:?}");
        assert!(t.rows[2][6].parse::<u64>().unwrap() >= 1, "a duplicate must win: {t:?}");
        let off: f64 = t.rows[1][3].parse().unwrap();
        let on: f64 = t.rows[2][3].parse().unwrap();
        assert!(on < off, "speculation must beat waiting out the stall: on={on}s off={off}s");
        // a deadline tighter than the stall fails typed (recorded in the
        // engine metric), never hangs...
        assert_eq!(t.rows[3][1], "NO");
        assert!(t.rows[3][8].parse::<u64>().unwrap() >= 1, "deadline job must be counted: {t:?}");
        // ...and a generous deadline completes the very same pipeline
        assert_eq!(t.rows[4][1], "yes");
        assert_eq!(t.rows[4][2], t.rows[0][2], "deadline must not change results");
        assert_eq!(t.rows[4][8], "0");
    }

    #[test]
    fn memory_ablation_spills_evicts_and_stays_identical() {
        let t = memory(4, 4000, 0xC4A05);
        assert_eq!(t.rows.len(), 3);
        // output is identical — count and order-sensitive checksum —
        // across unbounded, spilling, and pressure-chaos rows
        for row in &t.rows[1..] {
            assert_eq!(row[1], t.rows[0][1], "result count diverged: {row:?}");
            assert_eq!(row[2], t.rows[0][2], "checksum diverged: {row:?}");
        }
        // the unbounded row accounts its peak but never spills or evicts
        assert!(t.rows[0][4].parse::<u64>().unwrap() > 0);
        assert_eq!(t.rows[0][5], "0");
        assert_eq!(t.rows[0][7], "0");
        // a quarter of the peak forces the shuffle to spill (the pinned
        // shuffle output leaves no headroom for the cache, so the cache
        // degrades to recompute rather than evicting)
        assert!(t.rows[1][5].parse::<u64>().unwrap() > 0, "tight budget must spill: {t:?}");
        assert!(t.rows[1][6].parse::<u64>().unwrap() > 0);
        // the chaos row actually strikes, and its mid-job budget shrink
        // claws back already-cached partitions
        assert!(t.rows[2][8].parse::<u64>().unwrap() > 0, "pressure chaos must inject: {t:?}");
        assert!(t.rows[2][7].parse::<u64>().unwrap() > 0, "pressure strikes must evict: {t:?}");
    }

    #[test]
    fn scaling_experiment_runs() {
        let t = scaling(&ctx(), &[500, 1000]);
        assert_eq!(t.rows.len(), 2);
        // self-join results scale with n (identity pairs at minimum)
        let r0: usize = t.rows[0][4].parse().unwrap();
        let r1: usize = t.rows[1][4].parse().unwrap();
        assert!(r0 >= 500 && r1 >= 1000);
    }

    #[test]
    fn temporal_ablation_prunes_time_slices() {
        let t = temporal(&ctx(), 4000);
        assert_eq!(t.rows.len(), 2);
        let grid_pruned: u64 = t.rows[0][3].parse().unwrap();
        let temporal_pruned: u64 = t.rows[1][3].parse().unwrap();
        // spatial partitions cannot prune an all-space query (beyond the
        // odd empty cell); the temporal partitioner prunes nearly all
        // time slices
        assert!(grid_pruned < 8, "grid pruned {grid_pruned}");
        assert!(temporal_pruned >= 40, "expected most time slices pruned: {temporal_pruned}");
        assert!(temporal_pruned > grid_pruned);
        assert_eq!(t.rows[0][4], t.rows[1][4], "results must agree");
    }

    #[test]
    fn figure4_small_scale_shape() {
        let t = figure4(&ctx(), 2000);
        assert_eq!(t.rows.len(), 3);
        // all three systems agree on the result count
        let counts: std::collections::BTreeSet<&String> = t.rows.iter().map(|r| &r[4]).collect();
        assert_eq!(counts.len(), 1, "result counts differ: {t:?}");
        assert_eq!(t.rows[0][1], "N/A");
    }

    #[test]
    fn features_table_is_complete() {
        let t = features();
        assert!(t.rows.len() >= 10);
        assert!(t.render().contains("persistent indexing"));
    }

    #[test]
    fn filter_experiment_consistency() {
        let t = filter(&ctx(), 3000);
        assert_eq!(t.rows.len(), 6);
        let counts: std::collections::BTreeSet<&String> = t.rows.iter().map(|r| &r[4]).collect();
        assert_eq!(counts.len(), 1, "result counts differ across modes");
        // partitioned runs prune
        let pruned: u64 = t.rows[2][3].parse().unwrap();
        assert!(pruned > 0);
    }

    #[test]
    fn join_experiment_consistency() {
        // result-count equality is asserted inside
        let t = join(&ctx(), 800);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn knn_experiment_agrees() {
        let t = knn(&ctx(), 2000);
        assert!(t.rows.iter().all(|r| r[3] == "yes"), "{t:?}");
    }

    #[test]
    fn dbscan_experiment_runs() {
        let t = dbscan_scaling(&ctx(), &[1500]);
        assert_eq!(t.rows.len(), 1);
        let clusters: usize = t.rows[0][3].parse().unwrap();
        assert!(clusters >= 1);
    }

    #[test]
    fn pruning_ablation_prunes() {
        let t = pruning(&ctx(), 3000);
        assert_eq!(t.rows.len(), 8);
        // the most selective query prunes the most
        let pruned_1pct: u64 = t.rows[0][4].parse().unwrap();
        let pruned_100pct: u64 = t.rows[6][4].parse().unwrap();
        assert!(pruned_1pct > pruned_100pct);
        // off rows never prune
        assert!(t.rows.iter().filter(|r| r[1] == "off").all(|r| r[4] == "0"));
    }

    #[test]
    fn balance_ablation_bsp_beats_grid() {
        let t = balance(&ctx(), 4000);
        let grid_max: usize = t.rows[0][3].parse().unwrap();
        let bsp_max: usize = t.rows[1][3].parse().unwrap();
        assert!(bsp_max < grid_max, "bsp {bsp_max} vs grid {grid_max}");
    }

    #[test]
    fn index_modes_runs() {
        let t = index_modes(&ctx(), 2000, 3);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn fusion_ablation_shape_and_agreement() {
        let t = fusion(4, 20_000, 3);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "off");
        assert_eq!(t.rows[1][0], "on");
        // with fusion on, the whole chain collapses into one lineage node
        assert!(t.rows[1][1].starts_with("Fused["), "{t:?}");
        assert!(!t.rows[0][1].starts_with("Fused["), "{t:?}");
        // every pass reads the cache via Arc-sharing in both modes
        assert!(t.rows[0][5].parse::<u64>().unwrap() > 0);
        assert!(t.rows[1][5].parse::<u64>().unwrap() > 0);
        // fused must not be slower than unfused beyond noise
        let off: f64 = t.rows[0][2].parse().unwrap();
        let on: f64 = t.rows[1][2].parse().unwrap();
        assert!(on <= off * 1.25, "fusion slower than unfused: on={on}s off={off}s");
    }

    #[test]
    fn ivm_ablation_joins_agree_and_incremental_is_not_slower() {
        // standing-pair equality across modes is asserted inside ivm()
        let t = ivm(&ctx(), 6, 1_500);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "recompute");
        assert_eq!(t.rows[1][0], "incremental");
        // the identical seeded stream reaches both modes whole
        assert_eq!(t.rows[0][1], t.rows[1][1]);
        assert!(t.rows[0][5].parse::<usize>().unwrap() > 0, "the join must produce pairs: {t:?}");
        // an insert-only stream never emits retractions in either mode
        assert_eq!(t.rows[0][6], "0");
        assert_eq!(t.rows[1][6], "0");
        // the tail must not be worse incrementally even at test scale
        // (the ≥3x headroom is measured at repro scale in EXPERIMENTS.md)
        let rec_p99: f64 = t.rows[0][3].parse().unwrap();
        let inc_p99: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            inc_p99 <= rec_p99 * 1.10,
            "incremental p99 ({inc_p99}ms) worse than recompute ({rec_p99}ms)"
        );
    }

    #[test]
    fn stream_covers_sizes_and_both_modes() {
        let t = stream(&ctx(), &[100, 200, 400], 3);
        assert_eq!(t.rows.len(), 6); // 3 batch sizes × {indexed, scan}
                                     // the indexed runs rebuild partitions; the scans never do
        for pair in t.rows.chunks(2) {
            assert_eq!(pair[0][1], "incremental index");
            assert!(pair[0][6].parse::<usize>().unwrap() > 0);
            assert_eq!(pair[1][6], "0");
            // both modes process every record
            assert_eq!(pair[0][2], pair[1][2]);
        }
    }
}
