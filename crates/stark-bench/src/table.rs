//! Plain-text result tables, printed by the `repro` binary and recorded
//! in `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "| {c:w$} ", w = w);
            }
            s.push('|');
            s
        };
        let header = line(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a duration in seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Runs `f` and returns its result together with the wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long-name | 22    |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(d.as_millis() >= 10);
        assert!(!secs(d).is_empty());
    }
}
