//! Criterion micro-scale tracking of Figure 4: self-join execution time
//! per system and partitioner. The paper-scale regeneration is
//! `cargo run --release -p stark-bench --bin repro -- figure4 1000000`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stark::{BspPartitioner, JoinConfig, STPredicate, SpatialRddExt};
use stark_baselines::{
    broadcast_join, geospark_join, spatialspark_join, GeoSparkConfig, RegionScheme,
};
use stark_bench::workloads;
use stark_engine::Context;
use stark_geo::Coord;
use std::sync::Arc;

const N: usize = 5_000;

fn bench_figure4(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::figure4_points(&ctx, N, 8).cache();
    data.count();
    let pred = STPredicate::Intersects;

    let mut group = c.benchmark_group("figure4_selfjoin");
    group.sample_size(10);

    // GeoSpark-like with its best partitioner (Voronoi)
    let sample: Vec<Coord> = data.collect().iter().map(|(o, _)| o.centroid()).collect();
    let voronoi = RegionScheme::voronoi(16, &sample, 11);
    group.bench_function(BenchmarkId::new("geospark", "voronoi"), |b| {
        b.iter(|| geospark_join(&data, &data, &voronoi, pred, GeoSparkConfig::default()).count())
    });

    // SpatialSpark-like: no partitioning (broadcast) and tile
    group.bench_function(BenchmarkId::new("spatialspark", "nopart"), |b| {
        b.iter(|| broadcast_join(&data, &data, pred).count())
    });
    let tile = RegionScheme::grid(4, &workloads::space());
    group.bench_function(BenchmarkId::new("spatialspark", "tile"), |b| {
        b.iter(|| spatialspark_join(&data, &data, &tile, pred, 5).count())
    });

    // STARK: no partitioning and BSP
    let srdd = data.spatial();
    group.bench_function(BenchmarkId::new("stark", "nopart"), |b| {
        b.iter(|| srdd.self_join(pred, JoinConfig::default()).count())
    });
    let bsp = Arc::new(BspPartitioner::build((N / 16).max(16), 4.0, &srdd.summarize()));
    let partitioned = srdd.partition_by(bsp);
    group.bench_function(BenchmarkId::new("stark", "bsp"), |b| {
        b.iter(|| partitioned.self_join(pred, JoinConfig::default()).count())
    });

    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
