//! Criterion micro-scale tracking of S7: the Figure-4 narrow
//! transformation chain with operator fusion on vs off, plus cached
//! re-reads under the zero-copy partition path. The table-scale run is
//! `cargo run --release -p stark-bench --bin repro -- fusion 200000`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stark_bench::experiments::{s7_chain, s7_points};
use stark_engine::{Context, EngineConfig};

const N: usize = 20_000;

fn context(fusion_enabled: bool) -> Context {
    Context::with_config(EngineConfig {
        parallelism: 4,
        default_partitions: 4,
        fusion_enabled,
        ..EngineConfig::default()
    })
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("s7_fusion");
    group.sample_size(10);

    for fused in [false, true] {
        let ctx = context(fused);
        let data = s7_points(&ctx, N, 8).cache();
        data.count();
        let pipeline = s7_chain(&data);
        let label = if fused { "fused" } else { "unfused" };
        group.bench_function(BenchmarkId::new("narrow_chain", label), |b| {
            b.iter(|| pipeline.count())
        });
    }

    // cached re-reads: every access Arc-shares the partitions instead of
    // deep-cloning them (count() never touches element storage)
    let ctx = context(true);
    let cached = s7_points(&ctx, N, 8).cache();
    cached.count();
    group.bench_function(BenchmarkId::new("cache_reread", "count"), |b| b.iter(|| cached.count()));

    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
