//! Criterion micro benchmarks for the spatialbm suite (S1–S4) and the
//! ablations (A1 pruning, A3 index modes). Paper-scale numbers come from
//! the `repro` binary; these track relative costs in CI-sized runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stark::cluster::{dbscan, DbscanParams};
use stark::{GridPartitioner, JoinConfig, STPredicate, SpatialRddExt};
use stark_bench::workloads;
use stark_engine::Context;
use stark_geo::DistanceFn;
use std::sync::Arc;

fn bench_filter(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::uniform_points(&ctx, 20_000, 8).cache();
    data.count();
    let srdd = data.spatial();
    let part = srdd.partition_by(Arc::new(GridPartitioner::build(6, &srdd.summarize())));
    part.count();
    let indexed = part.live_index(5);
    indexed.count();
    let query = workloads::query_polygon(0.05);
    let pred = STPredicate::ContainedBy;

    let mut group = c.benchmark_group("s1_filter");
    group.sample_size(20);
    group.bench_function("nopart_noindex", |b| b.iter(|| srdd.filter(&query, pred).count()));
    group.bench_function("grid_noindex", |b| b.iter(|| part.filter(&query, pred).count()));
    group.bench_function("grid_liveindex", |b| b.iter(|| indexed.filter(&query, pred).count()));
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let ctx = Context::new();
    let left = workloads::uniform_points(&ctx, 3_000, 8);
    let right = workloads::figure4_points(&ctx, 3_000, 8);
    let lspat = left.spatial();
    let lpart = lspat.partition_by(Arc::new(GridPartitioner::build(6, &lspat.summarize())));
    lpart.count();
    let rspat = right.spatial();
    let pred = STPredicate::within_distance(2.0);

    let mut group = c.benchmark_group("s2_join");
    group.sample_size(10);
    group.bench_function("nested_loop", |b| {
        b.iter(|| lpart.join(&rspat, pred, JoinConfig::nested_loop()).count())
    });
    group.bench_function("live_index", |b| {
        b.iter(|| lpart.join(&rspat, pred, JoinConfig::live_index(5)).count())
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::uniform_points(&ctx, 50_000, 8).cache();
    data.count();
    let srdd = data.spatial();
    let indexed = srdd.live_index(8);
    indexed.count();
    let q = stark::STObject::point(500.0, 500.0);

    let mut group = c.benchmark_group("s3_knn");
    group.sample_size(20);
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("plain", k), &k, |b, &k| {
            b.iter(|| srdd.knn(&q, k, DistanceFn::Euclidean))
        });
        group.bench_with_input(BenchmarkId::new("live_index", k), &k, |b, &k| {
            b.iter(|| indexed.knn(&q, k, DistanceFn::Euclidean))
        });
    }
    group.finish();
}

fn bench_dbscan(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::world_points(&ctx, 5_000, 8).cache();
    data.count();
    let srdd = data.spatial();

    let mut group = c.benchmark_group("s4_dbscan");
    group.sample_size(10);
    group.bench_function("distributed", |b| {
        b.iter(|| dbscan(&srdd, DbscanParams::new(1.0, 8)).count())
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::uniform_points(&ctx, 50_000, 8);
    let srdd = data.spatial();
    let part = srdd.partition_by(Arc::new(GridPartitioner::build(8, &srdd.summarize())));
    part.count();
    let query = workloads::query_polygon(0.01);

    let mut group = c.benchmark_group("a1_pruning");
    group.sample_size(20);
    group
        .bench_function("on", |b| b.iter(|| part.filter(&query, STPredicate::ContainedBy).count()));
    let q2 = query.clone();
    group.bench_function("off", |b| {
        b.iter(|| {
            let q = q2.clone();
            part.rdd().filter(move |(o, _)| STPredicate::ContainedBy.eval(o, &q)).count()
        })
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let ctx = Context::new();
    let data = workloads::uniform_points(&ctx, 20_000, 8).cache();
    data.count();
    let srdd = data.spatial();

    let mut group = c.benchmark_group("a3_index_build");
    group.sample_size(10);
    for order in [3usize, 5, 10, 30] {
        group.bench_with_input(BenchmarkId::new("live_index", order), &order, |b, &o| {
            b.iter(|| srdd.live_index(o).count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filter,
    bench_join,
    bench_knn,
    bench_dbscan,
    bench_pruning,
    bench_index_build
);
criterion_main!(benches);
