//! Criterion benchmark for the S6 streaming experiment: micro-batch
//! throughput with continuous queries, incremental index vs linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stark::{GridPartitioner, STObject, STPredicate, SpatialPartitioner};
use stark_bench::workloads;
use stark_engine::Context;
use stark_geo::{Coord, Envelope};
use stark_stream::{
    ContinuousQueryEngine, GeneratorSource, LatePolicy, StandingQuery, StreamConfig, StreamContext,
    StreamJob, WindowSpec,
};
use std::sync::Arc;

fn partitioner(space: &Envelope) -> Arc<dyn SpatialPartitioner> {
    let summary = vec![
        (
            Envelope::from_point(Coord::new(space.min_x(), space.min_y())),
            Coord::new(space.min_x(), space.min_y()),
        ),
        (
            Envelope::from_point(Coord::new(space.max_x(), space.max_y())),
            Coord::new(space.max_x(), space.max_y()),
        ),
    ];
    Arc::new(GridPartitioner::build(6, &summary))
}

fn run_stream(ctx: &Context, batch_records: usize, indexed: bool) -> u64 {
    let space = workloads::space();
    let center = space.center();
    let engine = if indexed {
        ContinuousQueryEngine::indexed(partitioner(&space), 16)
    } else {
        ContinuousQueryEngine::unindexed()
    }
    .with_query(StandingQuery::filter(
        "region",
        workloads::query_polygon(0.1),
        STPredicate::Intersects,
    ))
    .with_query(StandingQuery::knn("monitor", STObject::point(center.x, center.y), 10));
    let sc = StreamContext::with_config(
        ctx.clone(),
        StreamConfig { batch_records, parallelism: ctx.parallelism().max(1), ..Default::default() },
    );
    let source = GeneratorSource::new(7, space, 6, 1_000, 200);
    let job = StreamJob::new()
        .with_windows(WindowSpec::tumbling(2_000), 100, LatePolicy::Drop)
        .with_queries(engine);
    sc.run(source, job).total_records()
}

fn bench_streaming(c: &mut Criterion) {
    let ctx = Context::new();
    let mut group = c.benchmark_group("s6_streaming");
    group.sample_size(10);
    for batch_records in [500usize, 1_000, 2_000] {
        group.bench_with_input(
            BenchmarkId::new("indexed", batch_records),
            &batch_records,
            |b, &n| b.iter(|| run_stream(&ctx, n, true)),
        );
        group.bench_with_input(BenchmarkId::new("scan", batch_records), &batch_records, |b, &n| {
            b.iter(|| run_stream(&ctx, n, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
