//! End-to-end tests of the query service over real TCP connections:
//! plan-cache reuse, typed errors for every shed/abort path, and tenant
//! isolation under budget pressure.

use stark_engine::{Context, EngineConfig};
use stark_piglet::Value;
use stark_server::{Client, QueryServer, Response, ServerConfig, TenantConfig};

/// An event dataset with `rows` points spread over a 100x100 plane.
fn dataset(ctx: &Context, rows: i64) -> stark_server::SharedDataset {
    let tuples: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 97),
                Value::Str(format!("POINT({} {})", i % 100, (i * 7) % 100)),
            ]
        })
        .collect();
    let schema = std::sync::Arc::new(vec!["id".into(), "t".into(), "wkt".into()]);
    ("ev".to_string(), schema, ctx.parallelize(tuples, 4))
}

fn start_server(config: ServerConfig, rows: i64) -> stark_server::ServerHandle {
    start_server_with_budget(config, rows, None)
}

fn start_server_with_budget(
    config: ServerConfig,
    rows: i64,
    memory_budget: Option<u64>,
) -> stark_server::ServerHandle {
    let ctx = Context::with_config(EngineConfig {
        parallelism: 2,
        default_partitions: 4,
        memory_budget,
        ..EngineConfig::default()
    });
    let ds = dataset(&ctx, rows);
    QueryServer::start(ctx, vec![ds], config).expect("server starts")
}

#[test]
fn round_trip_and_stats() {
    let server = start_server(ServerConfig::default(), 100);
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("default", "f = FILTER ev BY id < 5;\nDUMP f;", None).unwrap() {
        Response::Ok { outputs, cache_hit, .. } => {
            assert!(!cache_hit, "first submission must miss the plan cache");
            assert_eq!(outputs.len(), 1);
        }
        other => panic!("expected Ok, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.queries_ok, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn repeated_scripts_hit_the_plan_cache() {
    let server = start_server(ServerConfig::default(), 100);
    let mut client = Client::connect(server.addr()).unwrap();
    // same shape, different literals and alias names — one plan
    let scripts = [
        "f = FILTER ev BY id < 10;\nDUMP f;",
        "g = FILTER ev BY id < 77;\nDUMP g;",
        "result = FILTER ev BY id < 3;  -- comment\nDUMP result;",
    ];
    let mut hits = Vec::new();
    for script in scripts {
        match client.query("default", script, None).unwrap() {
            Response::Ok { cache_hit, .. } => hits.push(cache_hit),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    assert_eq!(hits, vec![false, true, true], "only the first shape submission plans");
    assert_eq!(server.cache_stats(), (2, 1));

    // literals still bind per-request: different thresholds, different rows
    let count = |resp: Response| match resp {
        Response::Ok { outputs, .. } => match outputs.into_iter().next().unwrap() {
            stark_piglet::Output::Dump { lines, .. } => lines.len(),
            other => panic!("expected Dump, got {other:?}"),
        },
        other => panic!("expected Ok, got {other:?}"),
    };
    let a = count(client.query("default", "f = FILTER ev BY id < 10;\nDUMP f;", None).unwrap());
    let b = count(client.query("default", "f = FILTER ev BY id < 20;\nDUMP f;", None).unwrap());
    assert_eq!((a, b), (10, 20), "cached template must re-bind each request's literals");
}

#[test]
fn parse_errors_carry_position_and_token() {
    let server = start_server(ServerConfig::default(), 10);
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.query("default", "f = FILTER ev BY id < 5;\ng = FILTRE f;", None).unwrap();
    match resp {
        Response::ParseError { line, column, token, message } => {
            assert_eq!(line, 2, "error is on the second line");
            assert!(column > 1, "column is 1-based and past the alias");
            assert!(!token.is_empty(), "offending token is named");
            assert!(!message.is_empty());
        }
        other => panic!("expected ParseError, got {other:?}"),
    }
    // the session survives the error
    assert!(matches!(client.query("default", "DUMP ev;", None).unwrap(), Response::Ok { .. }));
}

#[test]
fn unknown_tenant_is_typed() {
    let server = start_server(ServerConfig::default(), 10);
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("ghost", "DUMP ev;", None).unwrap() {
        Response::UnknownTenant { tenant } => assert_eq!(tenant, "ghost"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
}

#[test]
fn admission_pressure_sheds_with_typed_overloaded() {
    // No workers: nothing drains, so queue slots fill deterministically.
    let config = ServerConfig {
        workers: 0,
        max_queue_depth: 2,
        tenants: vec![TenantConfig::new("t")],
        ..ServerConfig::default()
    };
    let server = start_server(config, 10);
    // each query blocks awaiting its (never-scheduled) worker, so fill
    // the queue from threads and probe from a fresh connection
    let addr = server.addr();
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // never completes; the connection drops with the test
                let _ = c.query("t", "DUMP ev;", Some(60_000));
            })
        })
        .collect();
    // wait until both fillers occupy their queue slots, so the probe
    // deterministically finds the queue full
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.queue_depth("t") != Some(2) {
        assert!(std::time::Instant::now() < deadline, "fillers never queued");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut probe = Client::connect(addr).unwrap();
    let shed = match probe.query("t", "DUMP ev;", Some(60_000)) {
        Ok(Response::Overloaded { message }) => message,
        other => panic!("expected Overloaded, got {other:?}"),
    };
    assert!(shed.contains("queue full"), "message names the cause: {shed}");
    drop(server); // shuts down; filler connections unblock
    for f in fillers {
        let _ = f.join();
    }
}

#[test]
fn tight_deadline_is_typed_deadline_exceeded() {
    let server = start_server(ServerConfig::default(), 200_000);
    let mut client = Client::connect(server.addr()).unwrap();
    // an ORDER over 200k rows cannot finish in 1ms
    let resp = client
        .query("default", "o = ORDER ev BY t;\nf = FILTER o BY id < 5;\nDUMP f;", Some(1))
        .unwrap();
    match resp {
        Response::DeadlineExceeded { message } => assert!(!message.is_empty()),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // same query with a generous deadline succeeds on the same session
    let resp = client
        .query("default", "o = ORDER ev BY t;\nf = FILTER o BY id < 5;\nDUMP f;", Some(60_000))
        .unwrap();
    assert!(matches!(resp, Response::Ok { .. }), "session recovers after a deadline abort");
}

#[test]
fn budget_exhaustion_degrades_only_the_starved_tenant() {
    let script = "f = FILTER ev BY id < 50;\nDUMP f;";

    // isolated run: the well-provisioned tenant alone
    let isolated_outputs = {
        let config = ServerConfig {
            tenants: vec![TenantConfig::new("roomy").weight(1)],
            ..ServerConfig::default()
        };
        let server = start_server(config, 1000);
        let mut client = Client::connect(server.addr()).unwrap();
        match client.query("roomy", script, None).unwrap() {
            Response::Ok { outputs, .. } => serde_json::to_vec(&outputs).unwrap(),
            other => panic!("expected Ok, got {other:?}"),
        }
    };

    // mixed run: a tenant with an 8-byte budget shares the server
    let config = ServerConfig {
        tenants: vec![
            TenantConfig::new("roomy").weight(1),
            TenantConfig::new("starved").weight(1).memory_cap(8),
        ],
        ..ServerConfig::default()
    };
    let server = start_server(config, 1000);
    let mut starved = Client::connect(server.addr()).unwrap();
    match starved.query("starved", script, None).unwrap() {
        Response::BudgetExceeded { message } => {
            assert!(message.contains("starved"), "error names the tenant: {message}");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    let mut roomy = Client::connect(server.addr()).unwrap();
    match roomy.query("roomy", script, None).unwrap() {
        Response::Ok { outputs, .. } => {
            let mixed = serde_json::to_vec(&outputs).unwrap();
            assert_eq!(
                mixed, isolated_outputs,
                "the healthy tenant's results are byte-identical to an isolated run"
            );
        }
        other => panic!("expected Ok for the healthy tenant, got {other:?}"),
    }
    let stats = roomy.stats().unwrap();
    assert_eq!(stats.budget_exceeded, 1);
    assert_eq!(stats.queries_ok, 1);
}

#[test]
fn concurrent_sessions_share_the_cache() {
    let config = ServerConfig { workers: 4, ..ServerConfig::default() };
    let server = start_server(config, 500);
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let script = format!("f = FILTER ev BY id < {};\nDUMP f;", 10 + i);
                for _ in 0..5 {
                    match c.query("default", &script, Some(30_000)).unwrap() {
                        Response::Ok { .. } => {}
                        other => panic!("expected Ok, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let (hits, misses) = server.cache_stats();
    assert_eq!(hits + misses, 40);
    assert!(misses <= 8, "at most one miss per distinct shape race, got {misses}");
    assert!(hits >= 32, "all repeats hit, got {hits}");
}
