//! Plan cache keyed on normalized scripts.
//!
//! The service's parse → normalize → plan pipeline only pays for the
//! plan stage on a cache miss: scripts that differ in literals,
//! whitespace, comments or alias names share one entry (see
//! [`stark_piglet::normalize`]). Entries are evicted least-recently-used
//! once the cache exceeds its capacity — plan templates are small, so
//! capacity is a count, not bytes.

use stark_piglet::ast::Statement;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A cached plan template, shared by all requests that hit it.
type Template = Arc<Vec<Statement>>;

struct Entry {
    template: Template,
    /// Logical clock of the last hit — the LRU eviction key.
    last_use: u64,
}

/// A bounded, thread-safe LRU cache of normalized plan templates.
pub struct PlanCache {
    entries: Mutex<HashMap<String, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, returning the shared template on a hit.
    pub fn get(&self, key: &str) -> Option<Template> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap();
        match entries.get_mut(key) {
            Some(e) => {
                e.last_use = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.template))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly planned template, evicting the LRU entry when
    /// over capacity. Returns the shared handle (an existing entry wins
    /// a race — both requests then share one template).
    pub fn insert(&self, key: String, template: Vec<Statement>) -> Template {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.get_mut(&key) {
            e.last_use = now;
            return Arc::clone(&e.template);
        }
        if entries.len() >= self.capacity {
            if let Some(victim) =
                entries.iter().min_by_key(|(_, e)| e.last_use).map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let template: Template = Arc::new(template);
        entries.insert(key, Entry { template: Arc::clone(&template), last_use: now });
        template
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(input: &str) -> Vec<Statement> {
        vec![Statement::Dump { input: input.into() }]
    }

    #[test]
    fn hit_after_insert() {
        let cache = PlanCache::new(4);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), stmt("a"));
        let got = cache.get("k").expect("hit");
        assert_eq!(*got, stmt("a"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), stmt("a"));
        cache.insert("b".into(), stmt("b"));
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), stmt("c"));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("b").is_none(), "b was LRU and must be gone");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn racing_insert_shares_one_template() {
        let cache = PlanCache::new(4);
        let first = cache.insert("k".into(), stmt("a"));
        let second = cache.insert("k".into(), stmt("ignored"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }
}
