//! Wire protocol for the query service.
//!
//! Messages are length-prefixed binary frames reusing the engine's STK1
//! framing (magic + CRC32, the same integrity envelope the shuffle and
//! checkpoint files use):
//!
//! ```text
//! u32 LE payload length | b"STK1" | u32 LE crc32(payload) | payload
//! ```
//!
//! The payload is a JSON-encoded [`Request`] or [`Response`]. JSON keeps
//! the protocol debuggable with a line of netcat while the frame header
//! catches truncation and corruption before serde sees the bytes.

use stark_engine::MetricsSnapshot;
use stark_piglet::Output;
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload; a corrupt length prefix must
/// not make the server allocate gigabytes. Shared with the engine's
/// worker transport, which owns the framing implementation.
pub use stark_engine::transport::MAX_FRAME_LEN;

/// A client request.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Request {
    /// Execute a Piglet script on behalf of `tenant`.
    Query {
        tenant: String,
        script: String,
        /// Per-request deadline; `None` means the server default.
        deadline_ms: Option<u64>,
    },
    /// Fetch service-level counters.
    Stats,
}

/// A server response. Every failure mode a client can trigger has a
/// typed variant so callers can branch without parsing prose.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Response {
    /// Successful query execution.
    Ok {
        outputs: Vec<Output>,
        /// Whether the plan came from the cache.
        cache_hit: bool,
        /// Engine counter deltas attributable to this request (boxed:
        /// the snapshot dwarfs every other variant).
        engine: Box<MetricsSnapshot>,
        /// Wall-clock service time in microseconds.
        micros: u64,
    },
    /// The script failed to parse; positions are 1-based.
    ParseError { line: u32, column: u32, token: String, message: String },
    /// Admission control shed the request (tenant queue full). Back off
    /// and retry.
    Overloaded { message: String },
    /// The request exceeded its deadline.
    DeadlineExceeded { message: String },
    /// The tenant's memory budget could not fit the result.
    BudgetExceeded { message: String },
    /// The script parsed but failed during execution.
    ExecError { message: String },
    /// Unknown tenant name.
    UnknownTenant { tenant: String },
    /// Service-level counters (for `Request::Stats`).
    Stats(ServiceStats),
}

/// Service-level counters reported by `Request::Stats`.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    pub queries_ok: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub parse_errors: u64,
    pub shed_overload: u64,
    pub deadline_exceeded: u64,
    pub budget_exceeded: u64,
    pub exec_errors: u64,
    /// Per-tenant bytes currently reserved against each child budget,
    /// as `(tenant, bytes)` pairs.
    pub tenant_reserved: Vec<(String, u64)>,
}

/// Writes one frame: length prefix, STK1 header, payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    stark_engine::transport::write_frame(w, payload)
}

/// Reads one frame, verifying magic and checksum. Returns `Ok(None)` on
/// a clean EOF at a frame boundary (client hung up).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    stark_engine::transport::read_frame(r)
}

/// Serializes and writes a message as one frame.
pub fn send<T: serde::Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    stark_engine::transport::send_msg(w, msg)
}

/// Reads and deserializes one message; `Ok(None)` on clean EOF.
pub fn recv<T: serde::de::DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<T>> {
    stark_engine::transport::recv_msg(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stark_engine::storage::FRAME_MAGIC;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_request() {
        let req = Request::Query {
            tenant: "acme".into(),
            script: "DUMP ev;".into(),
            deadline_ms: Some(250),
        };
        let mut buf = Vec::new();
        send(&mut buf, &req).unwrap();
        let got: Request = recv(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(got, req);
    }

    #[test]
    fn round_trips_responses() {
        for resp in [
            Response::Overloaded { message: "queue full".into() },
            Response::ParseError { line: 2, column: 7, token: "'BYE'".into(), message: "x".into() },
            Response::Stats(ServiceStats { queries_ok: 3, ..Default::default() }),
        ] {
            let mut buf = Vec::new();
            send(&mut buf, &resp).unwrap();
            let got: Response = recv(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let got: Option<Request> = recv(&mut Cursor::new(&[])).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let err = recv::<Request>(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(FRAME_MAGIC);
        buf.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds max"), "{err}");
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(recv::<Request>(&mut Cursor::new(&buf)).is_err());
    }
}
