//! A blocking client for the query service, used by the load generator
//! and integration tests (and small enough to crib for real callers).

use crate::protocol::{recv, send, Request, Response, ServiceStats};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One session: a TCP connection multiplexing sequential requests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        send(&mut self.writer, req)?;
        self.writer.flush()?;
        recv(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Runs `script` as `tenant`; `deadline_ms: None` uses the server
    /// default.
    pub fn query(
        &mut self,
        tenant: &str,
        script: &str,
        deadline_ms: Option<u64>,
    ) -> io::Result<Response> {
        self.round_trip(&Request::Query {
            tenant: tenant.into(),
            script: script.into(),
            deadline_ms,
        })
    }

    /// Fetches service-level counters.
    pub fn stats(&mut self) -> io::Result<ServiceStats> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => {
                Err(io::Error::new(io::ErrorKind::InvalidData, format!("unexpected {other:?}")))
            }
        }
    }
}
