//! Weighted fair scheduling across tenants.
//!
//! A single FIFO across thousands of sessions lets one heavy tenant
//! starve everyone behind it. Instead each tenant gets its own bounded
//! queue, and worker threads drain queues in weighted round-robin: a
//! tenant with weight *w* may run up to *w* jobs per scheduler visit
//! before the cursor moves on, so a light tenant's requests wait behind
//! at most one full rotation, not the heavy tenant's whole backlog.
//!
//! Admission control is the queue bound: when a tenant's queue is at
//! capacity, [`FairScheduler::submit`] returns [`SubmitError::QueueFull`]
//! immediately — the service maps that to a typed `Overloaded` response
//! so clients back off instead of piling onto a growing queue (the same
//! shed-don't-buffer stance as the streaming load shedder).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: runs on a scheduler worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Typed admission failure from [`FairScheduler::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's queue is at capacity — shed the request.
    QueueFull { tenant: String, depth: usize },
    /// The tenant was never registered.
    UnknownTenant { tenant: String },
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant:?} queue full at depth {depth}")
            }
            SubmitError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            SubmitError::ShuttingDown => write!(f, "scheduler shutting down"),
        }
    }
}

struct TenantQueue {
    name: String,
    weight: u32,
    jobs: VecDeque<Job>,
}

struct State {
    /// Tenant queues in registration order — the round-robin ring.
    queues: Vec<TenantQueue>,
    /// Ring position of the tenant currently being served.
    cursor: usize,
    /// Jobs the cursor tenant may still run this visit (starts at its
    /// weight, decremented per job taken).
    remaining_in_visit: u32,
}

struct Shared {
    state: Mutex<State>,
    available: Condvar,
    shutdown: AtomicBool,
    max_depth: usize,
}

/// Weighted round-robin scheduler over per-tenant bounded queues.
pub struct FairScheduler {
    shared: Arc<Shared>,
    /// tenant name → ring index
    index: HashMap<String, usize>,
    workers: Vec<JoinHandle<()>>,
}

impl FairScheduler {
    /// Builds a scheduler for the given `(tenant, weight)` set.
    /// `workers == 0` is allowed: jobs queue but never run, which makes
    /// admission-control behavior deterministic in tests.
    pub fn new(tenants: &[(String, u32)], workers: usize, max_depth: usize) -> FairScheduler {
        let queues = tenants
            .iter()
            .map(|(name, weight)| TenantQueue {
                name: name.clone(),
                weight: (*weight).max(1),
                jobs: VecDeque::new(),
            })
            .collect::<Vec<_>>();
        let index =
            queues.iter().enumerate().map(|(i, q)| (q.name.clone(), i)).collect::<HashMap<_, _>>();
        let remaining = queues.first().map(|q| q.weight).unwrap_or(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queues, cursor: 0, remaining_in_visit: remaining }),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            max_depth: max_depth.max(1),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stark-sched-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        FairScheduler { shared, index, workers }
    }

    /// Enqueues a job for `tenant`, failing fast when its queue is full.
    pub fn submit(&self, tenant: &str, job: Job) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let Some(&i) = self.index.get(tenant) else {
            return Err(SubmitError::UnknownTenant { tenant: tenant.into() });
        };
        {
            let mut state = self.shared.state.lock().unwrap();
            let q = &mut state.queues[i];
            if q.jobs.len() >= self.shared.max_depth {
                return Err(SubmitError::QueueFull { tenant: tenant.into(), depth: q.jobs.len() });
            }
            q.jobs.push_back(job);
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Current queue depth for `tenant` (None if unknown).
    pub fn depth(&self, tenant: &str) -> Option<usize> {
        let i = *self.index.get(tenant)?;
        Some(self.shared.state.lock().unwrap().queues[i].jobs.len())
    }

    /// Stops accepting work and *drops* every queued job. Dropping a
    /// job drops its response channel, so callers blocked on a result
    /// observe a disconnect instead of waiting for a worker that will
    /// never come.
    pub fn shutdown_now(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let mut state = self.shared.state.lock().unwrap();
        for q in &mut state.queues {
            q.jobs.clear();
        }
        drop(state);
        self.shared.available.notify_all();
    }
}

impl Drop for FairScheduler {
    fn drop(&mut self) {
        self.shutdown_now();
        let me = std::thread::current().id();
        for h in self.workers.drain(..) {
            // guard against being dropped from one of our own workers
            // (self-join deadlocks); that worker exits on the shutdown
            // flag right after this drop completes
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = next_job(&mut state) {
                    break job;
                }
                state = shared.available.wait(state).unwrap();
            }
        };
        job();
    }
}

/// Takes the next job under the weighted round-robin policy: serve the
/// cursor tenant until its per-visit quantum (= weight) is spent or its
/// queue empties, then advance. One full rotation with no work returns
/// `None`.
fn next_job(state: &mut State) -> Option<Job> {
    let n = state.queues.len();
    if n == 0 {
        return None;
    }
    // n+1 attempts: the first may be spent retiring an exhausted
    // quantum (advance + reset without popping), the rest visit every
    // queue once.
    for _ in 0..=n {
        if state.remaining_in_visit > 0 {
            if let Some(job) = state.queues[state.cursor].jobs.pop_front() {
                state.remaining_in_visit -= 1;
                return Some(job);
            }
        }
        state.cursor = (state.cursor + 1) % n;
        state.remaining_in_visit = state.queues[state.cursor].weight;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn tenants(spec: &[(&str, u32)]) -> Vec<(String, u32)> {
        spec.iter().map(|&(n, w)| (n.to_string(), w)).collect()
    }

    #[test]
    fn runs_submitted_jobs() {
        let sched = FairScheduler::new(&tenants(&[("a", 1)]), 2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            sched.submit("a", Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        let mut got: Vec<i32> =
            (0..8).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn queue_full_is_typed_and_immediate() {
        // no workers: nothing drains, so the bound is exact
        let sched = FairScheduler::new(&tenants(&[("a", 1)]), 0, 2);
        sched.submit("a", Box::new(|| {})).unwrap();
        sched.submit("a", Box::new(|| {})).unwrap();
        match sched.submit("a", Box::new(|| {})) {
            Err(SubmitError::QueueFull { tenant, depth }) => {
                assert_eq!(tenant, "a");
                assert_eq!(depth, 2);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let sched = FairScheduler::new(&tenants(&[("a", 1)]), 0, 2);
        assert!(matches!(
            sched.submit("ghost", Box::new(|| {})),
            Err(SubmitError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn weighted_round_robin_interleaves_by_weight() {
        // Build the schedule with no workers, then inspect dequeue order
        // directly: weight 3 vs 1 must yield aaab aaab ...
        let sched = FairScheduler::new(&tenants(&[("a", 3), ("b", 1)]), 0, 64);
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let tx = tx.clone();
            sched.submit("a", Box::new(move || tx.send('a').unwrap())).unwrap();
        }
        for _ in 0..2 {
            let tx = tx.clone();
            sched.submit("b", Box::new(move || tx.send('b').unwrap())).unwrap();
        }
        let mut order = String::new();
        {
            let mut state = sched.shared.state.lock().unwrap();
            while let Some(job) = next_job(&mut state) {
                job();
                order.push(rx.try_recv().unwrap());
            }
        }
        assert_eq!(order, "aaabaaab");
    }

    #[test]
    fn empty_queues_do_not_stall_the_rotation() {
        let sched = FairScheduler::new(&tenants(&[("idle", 5), ("busy", 1)]), 1, 16);
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            sched.submit("busy", Box::new(move || tx.send(()).unwrap())).unwrap();
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).expect("idle tenant must not block busy one");
        }
    }

    #[test]
    fn drop_joins_workers() {
        let sched = FairScheduler::new(&tenants(&[("a", 1)]), 4, 16);
        let (tx, rx) = mpsc::channel();
        sched.submit("a", Box::new(move || tx.send(()).unwrap())).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(sched); // must not hang
    }
}
