//! The multi-tenant query service.
//!
//! A [`QueryServer`] owns one engine [`Context`] and serves Piglet
//! scripts to many concurrent TCP sessions. Each request runs a staged
//! pipeline:
//!
//! 1. **parse + normalize** — [`stark_piglet::normalize_script`] turns
//!    the script into a canonical template plus extracted literals;
//! 2. **plan** — the template is looked up in the [`PlanCache`]; only a
//!    miss pays for caching a new plan;
//! 3. **admission** — the request is submitted to the
//!    [`FairScheduler`]; a full tenant queue sheds it with a typed
//!    `Overloaded` response;
//! 4. **execute** — a scheduler worker instantiates the template,
//!    installs the request deadline as an engine cancel scope, runs the
//!    statements, and accounts the serialized response bytes against
//!    the tenant's [`ChildBudget`].
//!
//! Every failure mode is a typed [`Response`] variant; the connection
//! stays usable after any of them.

use crate::cache::PlanCache;
use crate::protocol::{recv, send, write_frame, Request, Response, ServiceStats};
use crate::scheduler::{FairScheduler, SubmitError};
use stark_engine::{ChildBudget, ChildReservation, Context, Rdd, TaskError};
use stark_piglet::value::Tuple;
use stark_piglet::{instantiate, normalize_script, Executor};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tenant's service contract.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    pub name: String,
    /// Fair-share weight: jobs this tenant may run per scheduler visit.
    pub weight: u32,
    /// Memory cap in bytes carved out of the engine budget; `None`
    /// bounds the tenant only by the shared parent budget.
    pub memory_cap: Option<u64>,
}

impl TenantConfig {
    pub fn new(name: &str) -> TenantConfig {
        TenantConfig { name: name.into(), weight: 1, memory_cap: None }
    }

    pub fn weight(mut self, weight: u32) -> TenantConfig {
        self.weight = weight;
        self
    }

    pub fn memory_cap(mut self, cap: u64) -> TenantConfig {
        self.memory_cap = Some(cap);
        self
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Scheduler worker threads — the number of concurrently executing
    /// queries (each query still parallelizes internally).
    pub workers: usize,
    /// Per-tenant queue bound; submissions beyond it are shed.
    pub max_queue_depth: usize,
    /// Deadline applied when a request does not carry one.
    pub default_deadline_ms: u64,
    /// Plan cache capacity (entries).
    pub plan_cache_capacity: usize,
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_queue_depth: 64,
            default_deadline_ms: 10_000,
            plan_cache_capacity: 256,
            tenants: vec![TenantConfig::new("default")],
        }
    }
}

struct Tenant {
    budget: Arc<ChildBudget>,
}

/// A dataset shared by all sessions: registered once, handed to each
/// per-request executor as a cheap handle clone.
pub type SharedDataset = (String, Arc<Vec<String>>, Rdd<Tuple>);

struct Counters {
    queries_ok: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    parse_errors: AtomicU64,
    shed_overload: AtomicU64,
    deadline_exceeded: AtomicU64,
    budget_exceeded: AtomicU64,
    exec_errors: AtomicU64,
}

/// Execution state captured by scheduler jobs. Kept in its own `Arc`,
/// separate from the scheduler: a job closure may be the last owner of
/// its captures, and dropping the scheduler from one of its own worker
/// threads would self-join. `Exec` owns nothing that joins threads.
struct Exec {
    ctx: Context,
    datasets: Vec<SharedDataset>,
    tenants: HashMap<String, Tenant>,
    cache: PlanCache,
    default_deadline: Duration,
    counters: Counters,
}

struct Inner {
    exec: Arc<Exec>,
    scheduler: FairScheduler,
    shutdown: AtomicBool,
}

/// Handle to a running server; shuts down (joining all threads) on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

/// The query service. See the module docs for the request pipeline.
pub struct QueryServer;

impl QueryServer {
    /// Binds and starts serving. `datasets` are registered under their
    /// alias for every session.
    pub fn start(
        ctx: Context,
        datasets: Vec<SharedDataset>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let tenant_weights: Vec<(String, u32)> =
            config.tenants.iter().map(|t| (t.name.clone(), t.weight)).collect();
        let tenants = config
            .tenants
            .iter()
            .map(|t| (t.name.clone(), Tenant { budget: ctx.memory().child(t.memory_cap) }))
            .collect();
        let scheduler = FairScheduler::new(&tenant_weights, config.workers, config.max_queue_depth);
        let exec = Arc::new(Exec {
            ctx,
            datasets,
            tenants,
            cache: PlanCache::new(config.plan_cache_capacity),
            default_deadline: Duration::from_millis(config.default_deadline_ms.max(1)),
            counters: Counters {
                queries_ok: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                parse_errors: AtomicU64::new(0),
                shed_overload: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                budget_exceeded: AtomicU64::new(0),
                exec_errors: AtomicU64::new(0),
            },
        });
        let inner = Arc::new(Inner { exec, scheduler, shutdown: AtomicBool::new(false) });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("stark-accept".into())
                .spawn(move || accept_loop(listener, &inner))
                .expect("spawn accept thread")
        };
        Ok(ServerHandle { addr, inner, accept: Some(accept) })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Plan-cache hit/miss counters, for tests and diagnostics.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.inner.exec.cache.hits(), self.inner.exec.cache.misses())
    }

    /// Scheduler queue depth for `tenant` (None if unknown) — lets
    /// tests await admission-control states deterministically.
    pub fn queue_depth(&self, tenant: &str) -> Option<usize> {
        self.inner.scheduler.depth(tenant)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // drop queued jobs so sessions blocked on results unblock
        self.inner.scheduler.shutdown_now();
        // wake the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: &Arc<Inner>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = Arc::clone(inner);
        if let Ok(h) = std::thread::Builder::new()
            .name("stark-session".into())
            .spawn(move || serve_connection(stream, &inner))
        {
            sessions.push(h);
        }
        // reap finished sessions so the handle list stays bounded
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) {
    // Poll the shutdown flag between frames so sessions drain promptly
    // when the server stops.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let req: Request = match recv(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return, // client hung up
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // corrupt frame or mid-frame disconnect
        };
        let result = match req {
            Request::Stats => send(&mut writer, &Response::Stats(service_stats(inner)))
                .and_then(|()| writer.flush()),
            Request::Query { tenant, script, deadline_ms } => {
                let (payload, reservation) = handle_query(inner, &tenant, &script, deadline_ms);
                let out = write_frame(&mut writer, &payload).and_then(|()| writer.flush());
                drop(reservation); // response is on the wire; release the budget
                out
            }
        };
        if result.is_err() {
            return;
        }
    }
}

fn service_stats(inner: &Inner) -> ServiceStats {
    let c = &inner.exec.counters;
    let mut tenant_reserved: Vec<(String, u64)> =
        inner.exec.tenants.iter().map(|(name, t)| (name.clone(), t.budget.reserved())).collect();
    tenant_reserved.sort();
    ServiceStats {
        queries_ok: c.queries_ok.load(Ordering::Relaxed),
        cache_hits: c.cache_hits.load(Ordering::Relaxed),
        cache_misses: c.cache_misses.load(Ordering::Relaxed),
        parse_errors: c.parse_errors.load(Ordering::Relaxed),
        shed_overload: c.shed_overload.load(Ordering::Relaxed),
        deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
        budget_exceeded: c.budget_exceeded.load(Ordering::Relaxed),
        exec_errors: c.exec_errors.load(Ordering::Relaxed),
        tenant_reserved,
    }
}

/// Runs one query through the pipeline. Returns the serialized response
/// frame payload plus the tenant budget reservation covering it, held
/// until the bytes are written.
fn handle_query(
    inner: &Arc<Inner>,
    tenant: &str,
    script: &str,
    deadline_ms: Option<u64>,
) -> (Vec<u8>, Option<ChildReservation>) {
    let response = match run_query(inner, tenant, script, deadline_ms) {
        Ok(done) => return done,
        Err(resp) => *resp,
    };
    // error path: responses are small; no budget accounting
    let payload = serde_json::to_vec(&response).expect("response serializes");
    (payload, None)
}

fn run_query(
    inner: &Arc<Inner>,
    tenant: &str,
    script: &str,
    deadline_ms: Option<u64>,
) -> Result<(Vec<u8>, Option<ChildReservation>), Box<Response>> {
    let exec = &inner.exec;
    let c = &exec.counters;
    let Some(t) = exec.tenants.get(tenant) else {
        return Err(Box::new(Response::UnknownTenant { tenant: tenant.into() }));
    };

    // parse + normalize
    let normalized = normalize_script(script).map_err(|e| {
        c.parse_errors.fetch_add(1, Ordering::Relaxed);
        Box::new(Response::ParseError {
            line: e.line,
            column: e.column,
            token: e.token,
            message: e.message,
        })
    })?;

    // plan: cache lookup keyed on the normalized template
    let (template, cache_hit) = match exec.cache.get(&normalized.key) {
        Some(tpl) => {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
            (tpl, true)
        }
        None => {
            c.cache_misses.fetch_add(1, Ordering::Relaxed);
            (exec.cache.insert(normalized.key.clone(), normalized.template.clone()), false)
        }
    };

    // admission + execute on a scheduler worker
    let deadline = deadline_ms.map(Duration::from_millis).unwrap_or(exec.default_deadline);
    let enqueued = Instant::now();
    let (tx, rx) = mpsc::channel();
    // the job captures only Exec — never the scheduler (see Exec docs)
    let job_exec = Arc::clone(exec);
    let job_tenant = tenant.to_string();
    let params = normalized.params;
    let budget = Arc::clone(&t.budget);
    let submitted = inner.scheduler.submit(
        tenant,
        Box::new(move || {
            let result = execute_job(
                &job_exec,
                &job_tenant,
                &template,
                &params,
                &budget,
                cache_hit,
                deadline.saturating_sub(enqueued.elapsed()),
            );
            let _ = tx.send(result);
        }),
    );
    match submitted {
        Ok(()) => {}
        Err(e @ SubmitError::QueueFull { .. }) => {
            c.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(Box::new(Response::Overloaded { message: e.to_string() }));
        }
        Err(e) => return Err(Box::new(Response::ExecError { message: e.to_string() })),
    }
    match rx.recv() {
        Ok(result) => result,
        Err(_) => {
            Err(Box::new(Response::ExecError { message: "worker dropped the request".into() }))
        }
    }
}

/// The execute stage, on a scheduler worker thread.
fn execute_job(
    exec: &Arc<Exec>,
    tenant: &str,
    template: &[stark_piglet::ast::Statement],
    params: &[stark_piglet::ParamValue],
    budget: &Arc<ChildBudget>,
    cache_hit: bool,
    remaining: Duration,
) -> Result<(Vec<u8>, Option<ChildReservation>), Box<Response>> {
    let c = &exec.counters;
    if remaining.is_zero() {
        c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        return Err(Box::new(Response::DeadlineExceeded {
            message: "deadline elapsed while queued".into(),
        }));
    }
    let statements = instantiate(template, params).map_err(|e| {
        Box::new(Response::ExecError { message: format!("plan instantiation failed: {e}") })
    })?;

    let start = Instant::now();
    let before = exec.ctx.metrics();
    let mut executor = Executor::new(exec.ctx.clone());
    for (alias, schema, rdd) in &exec.datasets {
        executor.register_shared(alias, Arc::clone(schema), rdd.clone());
    }
    // The deadline covers execution; time spent queued was already
    // subtracted. Engine tasks observe it cooperatively and unwind with
    // a typed TaskError, caught here instead of killing the worker.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _scope = exec.ctx.deadline_scope(remaining);
        executor.run_statements(statements)
    }));
    let engine = exec.ctx.metrics().diff(&before);
    let micros = start.elapsed().as_micros() as u64;

    let outputs = match outcome {
        Ok(Ok(outputs)) => outputs,
        Ok(Err(e)) => {
            c.exec_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Box::new(Response::ExecError { message: e.to_string() }));
        }
        Err(panic) => {
            return Err(Box::new(classify_panic(panic, c)));
        }
    };

    let response = Response::Ok { outputs, cache_hit, engine: Box::new(engine), micros };
    let payload = serde_json::to_vec(&response).expect("response serializes");
    // account the result bytes against the tenant's budget: a tenant
    // whose results exceed its carve-out fails alone, without touching
    // the engine-wide budget other tenants run under
    match budget.try_reserve(payload.len() as u64) {
        Some(reservation) => {
            c.queries_ok.fetch_add(1, Ordering::Relaxed);
            Ok((payload, Some(reservation)))
        }
        None => {
            c.budget_exceeded.fetch_add(1, Ordering::Relaxed);
            Err(Box::new(Response::BudgetExceeded {
                message: format!(
                    "tenant {tenant:?}: result of {} bytes exceeds remaining budget (cap {:?}, reserved {})",
                    payload.len(),
                    budget.cap(),
                    budget.reserved(),
                ),
            }))
        }
    }
}

/// Maps a panic unwound out of the engine to a typed response. Engine
/// cancellation panics carry a [`TaskError`] payload; anything else is
/// an execution bug surfaced as `ExecError`.
fn classify_panic(panic: Box<dyn std::any::Any + Send>, c: &Counters) -> Response {
    match panic.downcast::<TaskError>() {
        Ok(task_err) if task_err.kind.is_cancellation() => {
            c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            Response::DeadlineExceeded { message: task_err.to_string() }
        }
        Ok(task_err) => {
            c.exec_errors.fetch_add(1, Ordering::Relaxed);
            Response::ExecError { message: task_err.to_string() }
        }
        Err(other) => {
            c.exec_errors.fetch_add(1, Ordering::Relaxed);
            let message = other
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| other.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "task panicked".into());
            Response::ExecError { message }
        }
    }
}
