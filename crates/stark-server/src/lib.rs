//! # stark-server — a multi-tenant query service for STARK
//!
//! The paper's demo pairs STARK with a web front end that submits
//! Piglet scripts for execution; this crate grows that idea into a
//! long-running service: one engine [`Context`](stark_engine::Context)
//! shared by thousands of TCP sessions, with the isolation machinery a
//! shared deployment needs:
//!
//! * a **plan cache** ([`cache::PlanCache`]) keyed on normalized
//!   scripts, so re-submitted query shapes skip re-planning;
//! * **weighted fair scheduling** ([`scheduler::FairScheduler`]) across
//!   tenants with bounded queues and typed admission shedding;
//! * **hierarchical memory budgets** — each tenant gets a
//!   [`ChildBudget`](stark_engine::ChildBudget) carved out of the
//!   engine budget, so one tenant's oversized results fail alone;
//! * **per-request deadlines** riding the engine's cooperative
//!   cancellation, covering queue wait as well as execution.
//!
//! The wire protocol ([`protocol`]) is length-prefixed JSON in the
//! engine's STK1 integrity envelope. See `README.md` for a quickstart
//! and `DESIGN.md` for the architecture notes.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use cache::PlanCache;
pub use client::Client;
pub use protocol::{Request, Response, ServiceStats};
pub use scheduler::{FairScheduler, SubmitError};
pub use server::{QueryServer, ServerConfig, ServerHandle, SharedDataset, TenantConfig};
