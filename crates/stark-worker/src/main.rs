//! The full STARK worker process.
//!
//! Forked by a driver's [`stark_engine::WorkerPool`]; connects back over
//! TCP, heartbeats, and executes plan fragments for every schema the
//! workspace knows: the engine's built-in `i64` schema (used by the
//! supervision tests) and the spatial `event` schema (grid/BSP routing,
//! spatio-temporal filters, per-partition self-joins).
//!
//! Usage (normally constructed by the supervisor, not typed by hand):
//!
//! ```text
//! stark-worker --addr 127.0.0.1:PORT --id SEAT [--heartbeat-ms N] [--store DIR]
//! ```

use stark::distributed::event_registry;
use stark_engine::plan::int_registry;
use stark_engine::worker::{run_from_args, WorkerRuntime};

fn main() {
    let mut rt = WorkerRuntime::new();
    rt.register(Box::new(int_registry()));
    rt.register(Box::new(event_registry()));
    if let Err(e) = run_from_args(&rt, std::env::args().skip(1)) {
        eprintln!("stark-worker: {e}");
        std::process::exit(1);
    }
}
