//! The event record schema used throughout the paper's examples:
//! `(id: Int, category: String, time: Long, wkt: String)`.

use serde::{Deserialize, Serialize};
use stark::{STObject, Temporal};
use stark_geo::{GeoError, Geometry};

/// One extracted event: identifier, category tag, occurrence time and
/// location geometry — the structured output of the text-extraction
/// pipeline the paper's demonstration is embedded in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub id: u64,
    pub category: String,
    pub time: i64,
    pub geometry: Geometry,
}

impl Event {
    pub fn new(id: u64, category: impl Into<String>, time: i64, geometry: Geometry) -> Self {
        Event { id, category: category.into(), time, geometry }
    }

    /// The paper's mapping step: `(id, ctgry, time, wkt)` →
    /// `(STObject(wkt, time), (id, ctgry))`.
    pub fn to_pair(&self) -> (STObject, (u64, String)) {
        (
            STObject::with_time(self.geometry.clone(), Temporal::instant(self.time)),
            (self.id, self.category.clone()),
        )
    }

    /// Serialises to a CSV line: `id,category,time,"WKT"`.
    pub fn to_csv_line(&self) -> String {
        format!("{},{},{},\"{}\"", self.id, self.category, self.time, self.geometry.to_wkt())
    }

    /// Parses a CSV line produced by [`Event::to_csv_line`].
    pub fn from_csv_line(line: &str) -> Result<Event, EventParseError> {
        let mut parts = line.splitn(4, ',');
        let id = parts
            .next()
            .ok_or_else(|| EventParseError::new(line, "missing id"))?
            .trim()
            .parse::<u64>()
            .map_err(|e| EventParseError::new(line, &format!("bad id: {e}")))?;
        let category = parts
            .next()
            .ok_or_else(|| EventParseError::new(line, "missing category"))?
            .trim()
            .to_string();
        let time = parts
            .next()
            .ok_or_else(|| EventParseError::new(line, "missing time"))?
            .trim()
            .parse::<i64>()
            .map_err(|e| EventParseError::new(line, &format!("bad time: {e}")))?;
        let wkt_raw = parts.next().ok_or_else(|| EventParseError::new(line, "missing wkt"))?;
        let wkt = wkt_raw.trim().trim_matches('"');
        let geometry = Geometry::from_wkt(wkt)
            .map_err(|e: GeoError| EventParseError::new(line, &e.to_string()))?;
        Ok(Event { id, category, time, geometry })
    }
}

/// Error when parsing an event CSV line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError {
    pub line: String,
    pub message: String,
}

impl EventParseError {
    fn new(line: &str, message: &str) -> Self {
        EventParseError { line: line.chars().take(80).collect(), message: message.to_string() }
    }
}

impl std::fmt::Display for EventParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot parse event line {:?}: {}", self.line, self.message)
    }
}

impl std::error::Error for EventParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let e = Event::new(7, "earthquake", 1234, Geometry::point(13.4, 52.5));
        let line = e.to_csv_line();
        assert_eq!(line, "7,earthquake,1234,\"POINT (13.4 52.5)\"");
        assert_eq!(Event::from_csv_line(&line).unwrap(), e);
    }

    #[test]
    fn wkt_with_commas_survives() {
        let g = Geometry::from_wkt("POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let e = Event::new(1, "region", 5, g);
        let back = Event::from_csv_line(&e.to_csv_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn to_pair_matches_paper_mapping() {
        let e = Event::new(3, "flood", 99, Geometry::point(1.0, 2.0));
        let (st, (id, cat)) = e.to_pair();
        assert_eq!(id, 3);
        assert_eq!(cat, "flood");
        assert_eq!(st.time(), Some(&Temporal::instant(99)));
        assert_eq!(st.centroid(), stark_geo::Coord::new(1.0, 2.0));
    }

    #[test]
    fn parse_errors() {
        assert!(Event::from_csv_line("").is_err());
        assert!(Event::from_csv_line("x,cat,5,\"POINT(0 0)\"").is_err());
        assert!(Event::from_csv_line("1,cat,notatime,\"POINT(0 0)\"").is_err());
        assert!(Event::from_csv_line("1,cat,5,\"NOT WKT\"").is_err());
        let err = Event::from_csv_line("1,cat,5").unwrap_err();
        assert!(err.message.contains("missing wkt"));
    }
}
