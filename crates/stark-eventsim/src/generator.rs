//! Synthetic spatio-temporal workload generators.
//!
//! The paper's demonstration uses real-world event data extracted from
//! Wikipedia; this module is the reproduction's substitute. The
//! generators reproduce the statistical properties the paper's design
//! arguments rest on, in particular the land/sea skew that motivates the
//! cost-based binary space partitioner ("events only occur on land, but
//! not on sea", §2.1).

use crate::event::Event;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stark_geo::{Coord, Envelope, Geometry};

/// Event categories sampled by all generators.
pub const CATEGORIES: &[&str] =
    &["earthquake", "concert", "protest", "election", "flood", "festival", "accident"];

/// Rough rectangular "continents" on a lon/lat world used by the skewed
/// generator. Events are only placed inside these boxes, with weights
/// roughly proportional to population, producing the dense-vs-empty skew
/// the BSP partitioner targets.
pub const CONTINENTS: &[(Envelope, f64)] = &[
    // Europe (dense)
    (Envelope::const_new(-10.0, 36.0, 30.0, 60.0), 30.0),
    // East/South Asia (densest)
    (Envelope::const_new(65.0, 5.0, 125.0, 45.0), 40.0),
    // North America
    (Envelope::const_new(-125.0, 25.0, -70.0, 50.0), 15.0),
    // South America
    (Envelope::const_new(-80.0, -35.0, -40.0, 5.0), 7.0),
    // Africa
    (Envelope::const_new(-15.0, -30.0, 45.0, 35.0), 6.0),
    // Australia
    (Envelope::const_new(115.0, -38.0, 153.0, -12.0), 2.0),
];

/// Deterministic, seeded workload generator.
pub struct EventGenerator {
    rng: StdRng,
    time_range: std::ops::Range<i64>,
    next_id: u64,
}

impl EventGenerator {
    /// Creates a generator with a fixed seed (fully reproducible) and the
    /// default event-time range.
    pub fn new(seed: u64) -> Self {
        EventGenerator { rng: StdRng::seed_from_u64(seed), time_range: 0..1_000_000, next_id: 0 }
    }

    /// Restricts generated event times to `range`.
    pub fn with_time_range(mut self, range: std::ops::Range<i64>) -> Self {
        assert!(range.start < range.end, "empty time range");
        self.time_range = range;
        self
    }

    fn next_event(&mut self, geometry: Geometry) -> Event {
        let id = self.next_id;
        self.next_id += 1;
        let category = CATEGORIES[self.rng.gen_range(0..CATEGORIES.len())];
        let time = self.rng.gen_range(self.time_range.clone());
        Event::new(id, category, time, geometry)
    }

    /// `n` point events uniformly distributed over `space`.
    pub fn uniform_points(&mut self, n: usize, space: &Envelope) -> Vec<Event> {
        (0..n)
            .map(|_| {
                let x = self.rng.gen_range(space.min_x()..=space.max_x());
                let y = self.rng.gen_range(space.min_y()..=space.max_y());
                self.next_event(Geometry::point(x, y))
            })
            .collect()
    }

    /// `n` point events drawn from `k` Gaussian hotspots inside `space`
    /// ("cities"). `sigma` is the hotspot spread.
    pub fn clustered_points(
        &mut self,
        n: usize,
        k: usize,
        sigma: f64,
        space: &Envelope,
    ) -> Vec<Event> {
        let k = k.max(1);
        let centers: Vec<Coord> = (0..k)
            .map(|_| {
                Coord::new(
                    self.rng.gen_range(space.min_x()..=space.max_x()),
                    self.rng.gen_range(space.min_y()..=space.max_y()),
                )
            })
            .collect();
        (0..n)
            .map(|_| {
                let c = centers[self.rng.gen_range(0..k)];
                let x = (c.x + self.gaussian() * sigma).clamp(space.min_x(), space.max_x());
                let y = (c.y + self.gaussian() * sigma).clamp(space.min_y(), space.max_y());
                self.next_event(Geometry::point(x, y))
            })
            .collect()
    }

    /// `n` world events: points only on the [`CONTINENTS`], weighted by
    /// population — the skewed workload of the BSP motivation.
    pub fn world_events(&mut self, n: usize) -> Vec<Event> {
        let weights: Vec<f64> = CONTINENTS.iter().map(|(_, w)| *w).collect();
        let dist = WeightedIndex::new(&weights).expect("static weights are valid");
        (0..n)
            .map(|_| {
                let (land, _) = &CONTINENTS[dist.sample(&mut self.rng)];
                // cluster towards the continent centre for extra skew
                let cx = land.center().x;
                let cy = land.center().y;
                let x =
                    (cx + self.gaussian() * land.width() / 4.0).clamp(land.min_x(), land.max_x());
                let y =
                    (cy + self.gaussian() * land.height() / 4.0).clamp(land.min_y(), land.max_y());
                self.next_event(Geometry::point(x, y))
            })
            .collect()
    }

    /// `n` small rectangular region events (e.g. affected areas) with
    /// sides up to `max_side`, placed uniformly in `space`.
    pub fn rect_regions(&mut self, n: usize, max_side: f64, space: &Envelope) -> Vec<Event> {
        (0..n)
            .map(|_| {
                let w = self.rng.gen_range(0.0..max_side);
                let h = self.rng.gen_range(0.0..max_side);
                let x = self.rng.gen_range(space.min_x()..=(space.max_x() - w).max(space.min_x()));
                let y = self.rng.gen_range(space.min_y()..=(space.max_y() - h).max(space.min_y()));
                self.next_event(Geometry::rect(x, y, x + w.max(1e-6), y + h.max(1e-6)))
            })
            .collect()
    }

    /// `n` short random-walk trajectories of `len` steps each, as
    /// linestring events (e.g. storm tracks or vehicle traces).
    pub fn trajectories(
        &mut self,
        n: usize,
        len: usize,
        step: f64,
        space: &Envelope,
    ) -> Vec<Event> {
        let len = len.max(2);
        (0..n)
            .map(|_| {
                let mut x = self.rng.gen_range(space.min_x()..=space.max_x());
                let mut y = self.rng.gen_range(space.min_y()..=space.max_y());
                let mut coords = Vec::with_capacity(len);
                coords.push(Coord::new(x, y));
                for _ in 1..len {
                    x = (x + self.rng.gen_range(-step..=step)).clamp(space.min_x(), space.max_x());
                    y = (y + self.rng.gen_range(-step..=step)).clamp(space.min_y(), space.max_y());
                    coords.push(Coord::new(x, y));
                }
                let ls = stark_geo::LineString::new(coords).expect("len >= 2");
                self.next_event(Geometry::LineString(ls))
            })
            .collect()
    }

    /// Box–Muller standard normal sample.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// The whole lon/lat world.
pub fn world_bounds() -> Envelope {
    Envelope::from_bounds(-180.0, -90.0, 180.0, 90.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
        let a = EventGenerator::new(42).uniform_points(50, &space);
        let b = EventGenerator::new(42).uniform_points(50, &space);
        assert_eq!(a, b);
        let c = EventGenerator::new(43).uniform_points(50, &space);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_points_stay_in_space() {
        let space = Envelope::from_bounds(-5.0, 10.0, 5.0, 20.0);
        let events = EventGenerator::new(1).uniform_points(200, &space);
        assert_eq!(events.len(), 200);
        for e in &events {
            assert!(space.contains_envelope(&e.geometry.envelope()));
            assert!(CATEGORIES.contains(&e.category.as_str()));
            assert!((0..1_000_000).contains(&e.time));
        }
        // ids are sequential
        assert!(events.iter().enumerate().all(|(i, e)| e.id == i as u64));
    }

    #[test]
    fn clustered_points_concentrate() {
        let space = Envelope::from_bounds(0.0, 0.0, 1000.0, 1000.0);
        let events = EventGenerator::new(7).clustered_points(500, 3, 2.0, &space);
        // most points lie near one of 3 centres → a coarse grid has many
        // empty cells
        let mut grid = vec![0usize; 100];
        for e in &events {
            let c = e.geometry.centroid();
            let gx = (c.x / 100.0).floor().clamp(0.0, 9.0) as usize;
            let gy = (c.y / 100.0).floor().clamp(0.0, 9.0) as usize;
            grid[gy * 10 + gx] += 1;
        }
        let occupied = grid.iter().filter(|&&c| c > 0).count();
        assert!(occupied <= 12, "clusters too spread out: {occupied} occupied cells");
    }

    #[test]
    fn world_events_stay_on_land() {
        let events = EventGenerator::new(3).world_events(500);
        for e in &events {
            let c = e.geometry.centroid();
            assert!(
                CONTINENTS.iter().any(|(land, _)| land.contains_coord(&c)),
                "event at sea: {c}"
            );
        }
    }

    #[test]
    fn world_events_are_skewed() {
        let events = EventGenerator::new(5).world_events(2000);
        // Asia (weight 40) must hold more events than Australia (weight 2)
        let in_box = |env: &Envelope| {
            events.iter().filter(|e| env.contains_coord(&e.geometry.centroid())).count()
        };
        let asia = in_box(&CONTINENTS[1].0);
        let australia = in_box(&CONTINENTS[5].0);
        assert!(asia > 4 * australia, "asia {asia} vs australia {australia}");
    }

    #[test]
    fn rect_regions_have_positive_area_and_fit() {
        let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
        let events = EventGenerator::new(11).rect_regions(100, 5.0, &space);
        for e in &events {
            let env = e.geometry.envelope();
            assert!(env.area() > 0.0);
            assert!(env.width() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn trajectories_have_requested_length() {
        let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
        let events = EventGenerator::new(13).trajectories(20, 10, 1.0, &space);
        for e in &events {
            match &e.geometry {
                Geometry::LineString(l) => {
                    assert_eq!(l.num_coords(), 10);
                    assert!(space.contains_envelope(&l.envelope()));
                }
                other => panic!("expected linestring, got {other:?}"),
            }
        }
    }

    #[test]
    fn time_range_is_respected() {
        let space = Envelope::from_bounds(0.0, 0.0, 1.0, 1.0);
        let events = EventGenerator::new(2).with_time_range(100..200).uniform_points(100, &space);
        assert!(events.iter().all(|e| (100..200).contains(&e.time)));
    }
}
