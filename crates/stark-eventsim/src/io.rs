//! CSV reading/writing for event datasets — the "load from HDFS" step of
//! the paper's workflow (Figure 2), against the local filesystem.

use crate::event::{Event, EventParseError};
use std::fs;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from dataset IO.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    Parse(EventParseError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<EventParseError> for IoError {
    fn from(e: EventParseError) -> Self {
        IoError::Parse(e)
    }
}

/// Writes events as CSV (one line per event, no header).
pub fn write_events_csv(path: impl AsRef<Path>, events: &[Event]) -> Result<(), IoError> {
    let file = fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for e in events {
        writeln!(w, "{}", e.to_csv_line())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads events from a CSV file written by [`write_events_csv`].
/// Blank lines and `#`-prefixed comment lines are skipped.
pub fn read_events_csv(path: impl AsRef<Path>) -> Result<Vec<Event>, IoError> {
    let file = fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut events = Vec::new();
    let mut line = String::new();
    let mut reader = reader;
    while reader.read_line(&mut line)? != 0 {
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            events.push(Event::from_csv_line(trimmed)?);
        }
        line.clear();
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::EventGenerator;
    use stark_geo::Envelope;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("stark-eventsim-{tag}-{}.csv", std::process::id()))
    }

    #[test]
    fn roundtrip_through_file() {
        let space = Envelope::from_bounds(0.0, 0.0, 10.0, 10.0);
        let mut g = EventGenerator::new(99);
        let mut events = g.uniform_points(50, &space);
        events.extend(g.rect_regions(10, 2.0, &space));
        let path = temp_file("roundtrip");
        write_events_csv(&path, &events).unwrap();
        let back = read_events_csv(&path).unwrap();
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = temp_file("comments");
        std::fs::write(&path, "# header comment\n\n1,concert,5,\"POINT (1 2)\"\n\n# trailing\n")
            .unwrap();
        let events = read_events_csv(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_error_reported() {
        let path = temp_file("bad");
        std::fs::write(&path, "not-a-number,cat,5,\"POINT (1 2)\"\n").unwrap();
        assert!(matches!(read_events_csv(&path), Err(IoError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(read_events_csv("/definitely/not/here.csv"), Err(IoError::Io(_))));
    }
}
