//! A small gazetteer: geocoding and reverse geocoding.
//!
//! The paper's demonstration scenarios include "(reverse) geocoding" (§4)
//! against the Wikipedia-derived event corpus. This module provides the
//! substitute: a built-in table of major cities with an STR-tree index,
//! supporting name → location (geocode) and location → nearest place
//! (reverse geocode) lookups.

use stark_geo::{haversine, Coord, Envelope};
use stark_index::{Entry, StrTree};

/// A named place.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    pub name: &'static str,
    pub country: &'static str,
    /// Longitude/latitude in degrees.
    pub location: Coord,
    pub population: u32,
}

/// Major world cities (coordinates rounded to two decimals).
pub const CITIES: &[(&str, &str, f64, f64, u32)] = &[
    ("Berlin", "DE", 13.40, 52.52, 3_700_000),
    ("Hamburg", "DE", 9.99, 53.55, 1_900_000),
    ("Munich", "DE", 11.58, 48.14, 1_500_000),
    ("Paris", "FR", 2.35, 48.85, 2_100_000),
    ("London", "GB", -0.13, 51.51, 9_000_000),
    ("Madrid", "ES", -3.70, 40.42, 3_300_000),
    ("Rome", "IT", 12.50, 41.90, 2_800_000),
    ("Vienna", "AT", 16.37, 48.21, 1_900_000),
    ("Warsaw", "PL", 21.01, 52.23, 1_800_000),
    ("Moscow", "RU", 37.62, 55.76, 12_500_000),
    ("Istanbul", "TR", 28.98, 41.01, 15_500_000),
    ("Cairo", "EG", 31.24, 30.04, 9_900_000),
    ("Lagos", "NG", 3.38, 6.52, 14_800_000),
    ("Johannesburg", "ZA", 28.05, -26.20, 5_600_000),
    ("New York", "US", -74.01, 40.71, 8_800_000),
    ("Los Angeles", "US", -118.24, 34.05, 3_900_000),
    ("Chicago", "US", -87.63, 41.88, 2_700_000),
    ("Mexico City", "MX", -99.13, 19.43, 9_200_000),
    ("Sao Paulo", "BR", -46.63, -23.55, 12_300_000),
    ("Buenos Aires", "AR", -58.38, -34.60, 3_100_000),
    ("Lima", "PE", -77.04, -12.05, 9_700_000),
    ("Tokyo", "JP", 139.69, 35.68, 14_000_000),
    ("Osaka", "JP", 135.50, 34.69, 2_700_000),
    ("Seoul", "KR", 126.98, 37.57, 9_700_000),
    ("Beijing", "CN", 116.40, 39.90, 21_500_000),
    ("Shanghai", "CN", 121.47, 31.23, 24_900_000),
    ("Mumbai", "IN", 72.88, 19.08, 12_400_000),
    ("Delhi", "IN", 77.10, 28.70, 16_800_000),
    ("Bangkok", "TH", 100.50, 13.76, 8_300_000),
    ("Jakarta", "ID", 106.85, -6.21, 10_600_000),
    ("Sydney", "AU", 151.21, -33.87, 5_300_000),
    ("Melbourne", "AU", 144.96, -37.81, 5_100_000),
];

/// An indexed gazetteer over the built-in city table.
pub struct Gazetteer {
    places: Vec<Place>,
    index: StrTree<usize>,
}

impl Gazetteer {
    /// Builds the gazetteer with its spatial index.
    pub fn new() -> Self {
        let places: Vec<Place> = CITIES
            .iter()
            .map(|&(name, country, lon, lat, population)| Place {
                name,
                country,
                location: Coord::new(lon, lat),
                population,
            })
            .collect();
        let entries = places
            .iter()
            .enumerate()
            .map(|(i, p)| Entry::new(Envelope::from_point(p.location), i))
            .collect();
        Gazetteer { places, index: StrTree::build(8, entries) }
    }

    /// Number of known places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Whether the gazetteer is empty (never, with the built-in table).
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// All places.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Geocoding: case-insensitive exact name lookup.
    pub fn geocode(&self, name: &str) -> Option<&Place> {
        self.places.iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Reverse geocoding: nearest place to the coordinate by great-circle
    /// distance, with the distance in metres.
    ///
    /// Planar envelope distance does not soundly bound great-circle
    /// metres near the poles and the antimeridian, so this is an exact
    /// scan — trivially fast at gazetteer size.
    pub fn reverse_geocode(&self, location: &Coord) -> Option<(&Place, f64)> {
        self.places
            .iter()
            .map(|p| (p, haversine(location, &p.location)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// All places inside a lon/lat window, via the spatial index.
    pub fn places_in_window(&self, window: &Envelope) -> Vec<&Place> {
        self.index.query_vec(window).into_iter().map(|e| &self.places[e.item]).collect()
    }

    /// All places within `radius_m` metres of the coordinate, nearest
    /// first.
    pub fn places_within(&self, location: &Coord, radius_m: f64) -> Vec<(&Place, f64)> {
        let mut out: Vec<(&Place, f64)> = self
            .places
            .iter()
            .map(|p| (p, haversine(location, &p.location)))
            .filter(|(_, d)| *d <= radius_m)
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

impl Default for Gazetteer {
    fn default() -> Self {
        Gazetteer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geocode_known_city() {
        let g = Gazetteer::new();
        let berlin = g.geocode("Berlin").unwrap();
        assert_eq!(berlin.country, "DE");
        assert!(g.geocode("berlin").is_some(), "case-insensitive");
        assert!(g.geocode("Atlantis").is_none());
        assert!(!g.is_empty());
        assert!(g.len() >= 30);
    }

    #[test]
    fn reverse_geocode_near_city() {
        let g = Gazetteer::new();
        // Potsdam is ~27 km from Berlin's centre
        let (place, d) = g.reverse_geocode(&Coord::new(13.06, 52.40)).unwrap();
        assert_eq!(place.name, "Berlin");
        assert!(d > 10_000.0 && d < 50_000.0, "distance {d}");
    }

    #[test]
    fn reverse_geocode_matches_linear_scan() {
        let g = Gazetteer::new();
        for probe in [
            Coord::new(0.0, 0.0),
            Coord::new(100.0, 30.0),
            Coord::new(-80.0, -20.0),
            Coord::new(150.0, -35.0),
            Coord::new(-179.0, 80.0),
        ] {
            let (got, gd) = g.reverse_geocode(&probe).unwrap();
            let (want, wd) = g
                .places()
                .iter()
                .map(|p| (p, haversine(&probe, &p.location)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert_eq!(got.name, want.name, "probe {probe}");
            assert!((gd - wd).abs() < 1.0);
        }
    }

    #[test]
    fn window_query_via_index() {
        let g = Gazetteer::new();
        // central Europe window
        let window = Envelope::from_bounds(5.0, 45.0, 25.0, 55.0);
        let names: Vec<&str> = g.places_in_window(&window).into_iter().map(|p| p.name).collect();
        assert!(names.contains(&"Berlin"));
        assert!(names.contains(&"Vienna"));
        assert!(!names.contains(&"London"));
        assert!(!names.contains(&"Tokyo"));
    }

    #[test]
    fn places_within_radius() {
        let g = Gazetteer::new();
        // 700 km around Berlin: Hamburg (~255 km) yes; Paris (~880 km) no
        let hits = g.places_within(&Coord::new(13.40, 52.52), 700_000.0);
        let names: Vec<&str> = hits.iter().map(|(p, _)| p.name).collect();
        assert!(names.contains(&"Berlin"));
        assert!(names.contains(&"Hamburg"));
        assert!(!names.contains(&"Paris"));
        // ascending distance
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
