//! Generates a synthetic event CSV in the paper's
//! `(id, category, time, wkt)` schema.
//!
//! Usage: gen-events <out.csv> [n] [kind] [seed]
//!   kind ∈ {uniform, clustered, world, regions}   (default: clustered)

use stark_eventsim::{write_events_csv, EventGenerator};
use stark_geo::Envelope;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: gen-events <out.csv> [n] [uniform|clustered|world|regions] [seed]");
        std::process::exit(2);
    };
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let kind = args.get(3).map(String::as_str).unwrap_or("clustered");
    let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2017);

    let space = Envelope::from_bounds(0.0, 0.0, 100.0, 100.0);
    let mut generator = EventGenerator::new(seed).with_time_range(0..1_000_000);
    let events = match kind {
        "uniform" => generator.uniform_points(n, &space),
        "clustered" => generator.clustered_points(n, 8, 2.0, &space),
        "world" => generator.world_events(n),
        "regions" => generator.rect_regions(n, 5.0, &space),
        other => {
            eprintln!("unknown kind {other:?}");
            std::process::exit(2);
        }
    };
    if let Err(e) = write_events_csv(path, &events) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} {kind} events to {path}", events.len());
}
