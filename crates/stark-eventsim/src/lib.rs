//! # stark-eventsim — synthetic spatio-temporal event workloads
//!
//! The STARK paper demonstrates on real-world event data extracted from
//! Wikipedia by spatial/temporal taggers; that corpus is not available,
//! so this crate generates statistically equivalent workloads (see
//! DESIGN.md for the substitution argument): uniform and hotspot-clustered
//! point events, skewed "land only" world events, rectangular region
//! events and trajectory events — plus the `(id, category, time, wkt)`
//! CSV schema from the paper's running example.

pub mod event;
pub mod gazetteer;
pub mod generator;
pub mod io;

pub use event::{Event, EventParseError};
pub use gazetteer::{Gazetteer, Place, CITIES};
pub use generator::{world_bounds, EventGenerator, CATEGORIES, CONTINENTS};
pub use io::{read_events_csv, write_events_csv, IoError};
