//! Piglet REPL — the reproduction's stand-in for the paper's web front
//! end: type Piglet statements, see results rendered in the terminal.
//!
//! Usage:
//!   piglet                # interactive REPL
//!   piglet script.pig     # run a script file
//!
//! Statements are buffered until a terminating `;`, so multi-line input
//! works. `quit;` exits.

use stark_engine::Context;
use stark_piglet::{Executor, Output};
use std::io::{self, BufRead, Write};

fn print_outputs(outputs: &[Output]) {
    for out in outputs {
        match out {
            Output::Dump { alias, lines } => {
                println!("-- DUMP {alias} ({} tuples)", lines.len());
                for line in lines.iter().take(50) {
                    println!("{line}");
                }
                if lines.len() > 50 {
                    println!("... ({} more)", lines.len() - 50);
                }
            }
            Output::Describe { schema, .. } => println!("{schema}"),
            Output::Explained { plan, .. } => println!("{plan}"),
            Output::Stored { alias, path, records } => {
                println!("-- stored {records} tuples of {alias} into {path}")
            }
        }
    }
}

fn main() {
    let ctx = Context::new();
    let mut executor = Executor::new(ctx);
    let args: Vec<String> = std::env::args().collect();

    if args.len() > 1 {
        let script = std::fs::read_to_string(&args[1]).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", args[1]);
            std::process::exit(1);
        });
        match executor.run_script(&script) {
            Ok(outputs) => print_outputs(&outputs),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("piglet — spatio-temporal Pig Latin (type 'quit;' to exit)");
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("piglet> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        buffer.push_str(&line);
        buffer.push('\n');
        if line.trim_end().ends_with(';') {
            let stmt = std::mem::take(&mut buffer);
            if stmt.trim().eq_ignore_ascii_case("quit;") {
                break;
            }
            match executor.run_script(&stmt) {
                Ok(outputs) => print_outputs(&outputs),
                Err(e) => eprintln!("{e}"),
            }
            print!("piglet> ");
        } else {
            print!("      > ");
        }
        io::stdout().flush().ok();
    }
}
