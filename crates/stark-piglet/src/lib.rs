//! # stark-piglet — a Pig Latin dialect for spatio-temporal pipelines
//!
//! The paper pairs STARK with *Piglet* \[4\], a Pig Latin derivative whose
//! extensions expose the spatio-temporal data types and operators in an
//! easy-to-learn scripting language; the demo front end executes Piglet
//! scripts and visualises results. This crate reproduces that layer: a
//! lexer, parser and executor for the dialect, plus a REPL binary
//! (`piglet`) standing in for the web front end.
//!
//! ```
//! use stark_piglet::{Executor, Output, Value};
//! use stark_engine::Context;
//!
//! let mut ex = Executor::new(Context::with_parallelism(2));
//! ex.register(
//!     "ev",
//!     vec!["id".into(), "t".into(), "wkt".into()],
//!     vec![
//!         vec![Value::Int(1), Value::Int(10), Value::Str("POINT(1 1)".into())],
//!         vec![Value::Int(2), Value::Int(20), Value::Str("POINT(9 9)".into())],
//!     ],
//! );
//! let out = ex.run_script(r#"
//!     g = FOREACH ev GENERATE id, ST(wkt, t) AS obj;
//!     s = SPATIAL_FILTER g BY CONTAINEDBY(obj, ST('POLYGON((0 0, 5 0, 5 5, 0 5, 0 0))', 0, 100));
//!     DUMP s;
//! "#).unwrap();
//! match &out[0] {
//!     Output::Dump { lines, .. } => assert_eq!(lines.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod value;

pub use exec::{Executor, Output, PigletError};
pub use normalize::{instantiate, normalize_script, NormalizedScript, ParamValue};
pub use parser::{parse_script, ParseError};
pub use value::{format_tuple, Tuple, Value};
