//! Recursive-descent parser for the Piglet dialect.

use crate::ast::{BinOp, Expr, PartitionerSpec, Projection, SpatialPredicate, Statement};
use crate::lexer::{tokenize_spanned, LexError, Pos, Token};
use stark_geo::DistanceFn;
use std::fmt;

/// A parse error carrying the 1-based source position and the rendered
/// offending token, so front ends (REPL, query service) can report
/// exactly where a script went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    /// 1-based source line of the offending token.
    pub line: u32,
    /// 1-based source column of the offending token.
    pub column: u32,
    /// Rendered offending token; `"end of input"` when the script ended
    /// too early.
    pub token: String,
}

impl ParseError {
    fn at(pos: Pos, token: impl Into<String>, msg: impl Into<String>) -> Self {
        ParseError { message: msg.into(), line: pos.line, column: pos.column, token: token.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {} (near {}): {}",
            self.line, self.column, self.token, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::at(e.pos, "", e.message)
    }
}

/// Parses a whole script into statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = tokenize_spanned(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !p.at_end() {
        statements.push(p.statement()?);
    }
    Ok(statements)
}

struct Parser {
    tokens: Vec<(Token, Pos)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    /// Position and rendering of the token at `idx` (clamped to the end
    /// of input, where the position is just past the last token).
    fn describe(&self, idx: usize) -> (Pos, String) {
        match self.tokens.get(idx) {
            Some((t, p)) => (*p, format!("'{t}'")),
            None => {
                let pos = self.tokens.last().map(|&(_, p)| p).unwrap_or_else(Pos::start);
                (pos, "end of input".to_string())
            }
        }
    }

    /// Error blaming the token at the current (unconsumed) position.
    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let (pos, token) = self.describe(self.pos);
        ParseError::at(pos, token, msg)
    }

    /// Error blaming the token just consumed.
    fn err_prev(&self, msg: impl Into<String>) -> ParseError {
        let (pos, token) = self.describe(self.pos.saturating_sub(1));
        ParseError::at(pos, token, msg)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err_here("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(self.err_prev(format!("expected {t}, got {got}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(self.err_prev(format!("expected identifier, got {other}"))),
        }
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::StrLit(s) => Ok(s),
            other => Err(self.err_prev(format!("expected string literal, got {other}"))),
        }
    }

    fn usize_lit(&mut self) -> Result<usize, ParseError> {
        match self.next()? {
            Token::IntLit(v) if v >= 0 => Ok(v as usize),
            other => Err(self.err_prev(format!("expected non-negative integer, got {other}"))),
        }
    }

    fn f64_lit(&mut self) -> Result<f64, ParseError> {
        match self.next()? {
            Token::DoubleLit(v) => Ok(v),
            Token::IntLit(v) => Ok(v as f64),
            other => Err(self.err_prev(format!("expected number, got {other}"))),
        }
    }

    /// Consumes the next token if it's the given case-insensitive keyword.
    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.try_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected keyword {kw}, got {}",
                self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.try_keyword("DUMP") {
            let input = self.ident()?;
            self.expect(&Token::Semicolon)?;
            return Ok(Statement::Dump { input });
        }
        if self.try_keyword("DESCRIBE") {
            let input = self.ident()?;
            self.expect(&Token::Semicolon)?;
            return Ok(Statement::Describe { input });
        }
        if self.try_keyword("EXPLAIN") {
            let input = self.ident()?;
            self.expect(&Token::Semicolon)?;
            return Ok(Statement::Explain { input });
        }
        if self.try_keyword("STORE") {
            let input = self.ident()?;
            self.expect_keyword("INTO")?;
            let path = self.string_lit()?;
            self.expect(&Token::Semicolon)?;
            return Ok(Statement::Store { input, path });
        }

        // assignment form: alias = OP ...
        let alias = self.ident()?;
        self.expect(&Token::Assign)?;
        let op = self.ident()?;
        let stmt = match op.to_ascii_uppercase().as_str() {
            "LOAD" => self.load_body(alias)?,
            "FILTER" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let expr = self.expr()?;
                Statement::Filter { alias, input, expr }
            }
            "FOREACH" => {
                let input = self.ident()?;
                self.expect_keyword("GENERATE")?;
                let mut projections = vec![self.projection()?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    projections.push(self.projection()?);
                }
                Statement::Foreach { alias, input, projections }
            }
            "SPATIAL_FILTER" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let (pred, field, query) = self.spatial_filter_predicate()?;
                Statement::SpatialFilter { alias, input, pred, field, query }
            }
            "PARTITION" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let spec = self.partitioner_spec()?;
                self.expect_keyword("ON")?;
                let field = self.ident()?;
                Statement::Partition { alias, input, spec, field }
            }
            "INDEX" => {
                let input = self.ident()?;
                self.expect_keyword("ORDER")?;
                let order = self.usize_lit()?;
                Statement::Index { alias, input, order }
            }
            "SPATIAL_JOIN" => {
                let left = self.ident()?;
                self.expect_keyword("BY")?;
                let left_field = self.ident()?;
                self.expect(&Token::Comma)?;
                let right = self.ident()?;
                self.expect_keyword("BY")?;
                let right_field = self.ident()?;
                self.expect_keyword("USING")?;
                let pred = self.join_predicate()?;
                Statement::SpatialJoin { alias, left, left_field, right, right_field, pred }
            }
            "KNN" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let field = self.ident()?;
                self.expect_keyword("QUERY")?;
                let query = self.expr()?;
                self.expect_keyword("K")?;
                let k = self.usize_lit()?;
                Statement::Knn { alias, input, field, query, k }
            }
            "CLUSTER" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                self.expect_keyword("DBSCAN")?;
                self.expect(&Token::LParen)?;
                let eps = self.f64_lit()?;
                self.expect(&Token::Comma)?;
                let min_pts = self.usize_lit()?;
                self.expect(&Token::RParen)?;
                self.expect_keyword("ON")?;
                let field = self.ident()?;
                Statement::Cluster { alias, input, eps, min_pts, field }
            }
            "COLOCATE" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let category_field = self.ident()?;
                self.expect_keyword("ON")?;
                let geo_field = self.ident()?;
                self.expect_keyword("DISTANCE")?;
                let distance = self.f64_lit()?;
                self.expect_keyword("MINPI")?;
                let min_participation = self.f64_lit()?;
                Statement::Colocate {
                    alias,
                    input,
                    category_field,
                    geo_field,
                    distance,
                    min_participation,
                }
            }
            "GROUP" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let field = self.ident()?;
                Statement::GroupCount { alias, input, field }
            }
            "LIMIT" => {
                let input = self.ident()?;
                let n = self.usize_lit()?;
                Statement::Limit { alias, input, n }
            }
            "ORDER" => {
                let input = self.ident()?;
                self.expect_keyword("BY")?;
                let field = self.ident()?;
                let desc = self.try_keyword("DESC");
                if !desc {
                    self.try_keyword("ASC");
                }
                Statement::OrderBy { alias, input, field, desc }
            }
            other => return Err(self.err_prev(format!("unknown operator {other}"))),
        };
        self.expect(&Token::Semicolon)?;
        Ok(stmt)
    }

    fn load_body(&mut self, alias: String) -> Result<Statement, ParseError> {
        let path = self.string_lit()?;
        let mut schema = Vec::new();
        if self.try_keyword("AS") {
            self.expect(&Token::LParen)?;
            loop {
                let name = self.ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.ident()?;
                schema.push((name, ty.to_ascii_lowercase()));
                match self.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return Err(self.err_prev(format!("expected , or ), got {other}"))),
                }
            }
        }
        Ok(Statement::Load { alias, path, schema })
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        let expr = self.expr()?;
        let alias = if self.try_keyword("AS") { Some(self.ident()?) } else { None };
        Ok(Projection { expr, alias })
    }

    fn spatial_predicate_name(&mut self) -> Result<Option<SpatialPredicate>, ParseError> {
        if self.try_keyword("INTERSECTS") {
            Ok(Some(SpatialPredicate::Intersects))
        } else if self.try_keyword("CONTAINS") {
            Ok(Some(SpatialPredicate::Contains))
        } else if self.try_keyword("CONTAINEDBY") {
            Ok(Some(SpatialPredicate::ContainedBy))
        } else {
            Ok(None)
        }
    }

    /// `PRED(field, query)` or `WITHINDISTANCE(field, query, d [, metric])`.
    fn spatial_filter_predicate(&mut self) -> Result<(SpatialPredicate, String, Expr), ParseError> {
        if let Some(pred) = self.spatial_predicate_name()? {
            self.expect(&Token::LParen)?;
            let field = self.ident()?;
            self.expect(&Token::Comma)?;
            let query = self.expr()?;
            self.expect(&Token::RParen)?;
            return Ok((pred, field, query));
        }
        self.expect_keyword("WITHINDISTANCE")?;
        self.expect(&Token::LParen)?;
        let field = self.ident()?;
        self.expect(&Token::Comma)?;
        let query = self.expr()?;
        self.expect(&Token::Comma)?;
        let max_dist = self.f64_lit()?;
        let dist_fn = if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            self.distance_fn()?
        } else {
            DistanceFn::Euclidean
        };
        self.expect(&Token::RParen)?;
        Ok((SpatialPredicate::WithinDistance { max_dist, dist_fn }, field, query))
    }

    /// `INTERSECTS` etc., or `WITHINDISTANCE(d [, metric])`.
    fn join_predicate(&mut self) -> Result<SpatialPredicate, ParseError> {
        if let Some(pred) = self.spatial_predicate_name()? {
            return Ok(pred);
        }
        self.expect_keyword("WITHINDISTANCE")?;
        self.expect(&Token::LParen)?;
        let max_dist = self.f64_lit()?;
        let dist_fn = if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            self.distance_fn()?
        } else {
            DistanceFn::Euclidean
        };
        self.expect(&Token::RParen)?;
        Ok(SpatialPredicate::WithinDistance { max_dist, dist_fn })
    }

    fn distance_fn(&mut self) -> Result<DistanceFn, ParseError> {
        let name = self.string_lit()?;
        match name.to_ascii_lowercase().as_str() {
            "euclidean" => Ok(DistanceFn::Euclidean),
            "haversine" => Ok(DistanceFn::Haversine),
            "manhattan" => Ok(DistanceFn::Manhattan),
            other => Err(self.err_prev(format!("unknown distance function {other:?}"))),
        }
    }

    fn partitioner_spec(&mut self) -> Result<PartitionerSpec, ParseError> {
        if self.try_keyword("GRID") {
            self.expect(&Token::LParen)?;
            let dims = self.usize_lit()?;
            self.expect(&Token::RParen)?;
            return Ok(PartitionerSpec::Grid { dims });
        }
        self.expect_keyword("BSP")?;
        self.expect(&Token::LParen)?;
        let max_cost = self.usize_lit()?;
        self.expect(&Token::Comma)?;
        let side_length = self.f64_lit()?;
        self.expect(&Token::RParen)?;
        Ok(PartitionerSpec::Bsp { max_cost, side_length })
    }

    // -- expressions, precedence climbing ---------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.try_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.try_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.try_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::Neq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Lte) => Some(BinOp::Lte),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Gte) => Some(BinOp::Gte),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Token::IntLit(v) => Ok(Expr::IntLit(v)),
            Token::DoubleLit(v) => Ok(Expr::DoubleLit(v)),
            Token::StrLit(s) => Ok(Expr::StrLit(s)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::BoolLit(true));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::BoolLit(false));
                }
                if self.peek() == Some(&Token::LParen) {
                    // function call
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.peek() == Some(&Token::Comma) {
                            self.pos += 1;
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name.to_ascii_uppercase(), args))
                } else {
                    Ok(Expr::Field(name))
                }
            }
            other => Err(self.err_prev(format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_schema() {
        let s =
            parse_script("ev = LOAD 'x.csv' AS (id:long, cat:chararray, t:long, wkt:chararray);")
                .unwrap();
        match &s[0] {
            Statement::Load { alias, path, schema } => {
                assert_eq!(alias, "ev");
                assert_eq!(path, "x.csv");
                assert_eq!(schema.len(), 4);
                assert_eq!(schema[0], ("id".to_string(), "long".to_string()));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn filter_expression_precedence() {
        let s = parse_script("f = FILTER e BY a + 1 * 2 == 3 AND NOT b > 4 OR c == 'x';").unwrap();
        match &s[0] {
            Statement::Filter { expr, .. } => {
                // top level must be OR
                assert!(matches!(expr, Expr::Bin(BinOp::Or, _, _)));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn foreach_with_aliases() {
        let s = parse_script("g = FOREACH e GENERATE id, STOBJECT(wkt, t) AS obj, x * 2;").unwrap();
        match &s[0] {
            Statement::Foreach { projections, .. } => {
                assert_eq!(projections.len(), 3);
                assert_eq!(projections[1].alias.as_deref(), Some("obj"));
                assert!(matches!(&projections[1].expr, Expr::Call(name, args)
                    if name == "STOBJECT" && args.len() == 2));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn spatial_statements() {
        let script = r#"
            p = PARTITION e BY GRID(4) ON obj;
            q = PARTITION e BY BSP(1000, 0.5) ON obj;
            s = SPATIAL_FILTER p BY CONTAINEDBY(obj, ST('POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))', 0, 100));
            w = SPATIAL_FILTER p BY WITHINDISTANCE(obj, ST('POINT(1 2)'), 5.0, 'manhattan');
            j = SPATIAL_JOIN a BY obja, b BY objb USING INTERSECTS;
            d = SPATIAL_JOIN a BY obja, b BY objb USING WITHINDISTANCE(2.5);
            k = KNN e BY obj QUERY ST('POINT(0 0)') K 10;
            c = CLUSTER e BY DBSCAN(0.5, 4) ON obj;
            i = INDEX p ORDER 5;
            l = LIMIT e 10;
            o = ORDER e BY id DESC;
            DUMP l;
            DESCRIBE o;
            STORE o INTO 'out.csv';
        "#;
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 14);
        assert!(matches!(
            &stmts[1],
            Statement::Partition { spec: PartitionerSpec::Bsp { max_cost: 1000, .. }, .. }
        ));
        assert!(matches!(
            &stmts[3],
            Statement::SpatialFilter {
                pred: SpatialPredicate::WithinDistance { dist_fn: DistanceFn::Manhattan, .. },
                ..
            }
        ));
        assert!(matches!(
            &stmts[5],
            Statement::SpatialJoin { pred: SpatialPredicate::WithinDistance { .. }, .. }
        ));
        assert!(matches!(&stmts[10], Statement::OrderBy { desc: true, .. }));
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = parse_script("f = filter e by x == 1;\ndump f;").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_script("f = FILTER e x == 1;").is_err());
        assert!(parse_script("f = FROBNICATE e;").is_err());
        assert!(parse_script("DUMP;").is_err());
        assert!(parse_script("f = LIMIT e -1;").is_err());
        assert!(parse_script("f = FILTER e BY (a == 1;").is_err());
        assert!(parse_script("f = FILTER e BY a == 1").is_err(), "missing semicolon");
    }

    #[test]
    fn nested_parens_and_negation() {
        let s = parse_script("f = FILTER e BY -(a + 2) < -3;").unwrap();
        assert!(matches!(&s[0], Statement::Filter { expr: Expr::Bin(BinOp::Lt, _, _), .. }));
    }
}
